//! Quickstart: simulate a small fleet, analyze it, print the headline
//! results of the study.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ssfa::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2% replica of the paper's fleet: ~780 systems, ~36,000 disks,
    // 44 months of operation. Fully deterministic for a given seed —
    // including the thread count: the streaming pipeline classifies
    // per-system log shards on 8 workers and merges bit-identically.
    let pipeline = ssfa::Pipeline::new().scale(0.02).seed(42).threads(8);
    let study = pipeline.run()?;

    println!(
        "fleet: {} systems, {} disks ever installed, {:.0} disk-years, {} subsystem failures\n",
        study.input().topology.systems.len(),
        study.input().lifetimes.len(),
        study.input().total_disk_years(),
        study.input().failures.len(),
    );

    // The paper's headline: disks are NOT the dominant contributor.
    println!("AFR by system class and failure type (Figure 4(b), excluding Disk H):\n");
    println!(
        "{:<11} {:>7} {:>13} {:>9} {:>12} {:>7}",
        "class", "disk", "interconnect", "protocol", "performance", "total"
    );
    let by_class = study.afr_by_class(false);
    for class in SystemClass::ALL {
        let b = &by_class[&class];
        println!(
            "{:<11} {:>6.2}% {:>12.2}% {:>8.2}% {:>11.2}% {:>6.2}%",
            class.label(),
            b.afr(FailureType::Disk) * 100.0,
            b.afr(FailureType::PhysicalInterconnect) * 100.0,
            b.afr(FailureType::Protocol) * 100.0,
            b.afr(FailureType::Performance) * 100.0,
            b.total_afr() * 100.0,
        );
    }

    let le = &by_class[&SystemClass::LowEnd];
    let share = le.share(FailureType::Disk).unwrap_or(0.0);
    println!(
        "\nIn low-end systems, disk failures are only {:.0}% of subsystem failures —",
        share * 100.0
    );
    println!("physical interconnects dominate, exactly as the paper found.\n");

    // Re-check all eleven findings against this synthetic dataset.
    let report = FindingsReport::evaluate(&study);
    for finding in &report.findings {
        println!(
            "[{}] Finding {:>2}: {}",
            if finding.pass { "PASS" } else { "FAIL" },
            finding.id,
            finding.title
        );
    }
    println!(
        "\n{}/11 of the paper's findings reproduced at this scale",
        report.findings.iter().filter(|f| f.pass).count()
    );
    Ok(())
}
