//! Multipath trade-off explorer: how much reliability does a redundant FC
//! network actually buy?
//!
//! The paper (§4.3, Figure 7) finds that subsystems configured with two
//! independent interconnects see 50–60% fewer exposed physical-interconnect
//! failures and 30–40% lower overall subsystem AFR. This example sweeps the
//! *fraction of the fleet* configured with dual paths and reports the
//! fleet-wide effect — the view a capacity planner deciding on cabling
//! budgets actually needs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multipath_tradeoff
//! ```

use ssfa::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Sweeping dual-path adoption across the mid-range + high-end fleet...\n");
    println!(
        "{:>10} {:>14} {:>14} {:>16}",
        "dual-path", "interconnect", "subsystem", "failures avoided"
    );
    println!(
        "{:>10} {:>14} {:>14} {:>16}",
        "fraction", "AFR", "AFR", "per 10k disk-yrs"
    );

    let mut baseline_total = None;
    for adoption in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut config = FleetConfig::paper()
            .scaled(0.03)
            .only_classes(&[SystemClass::MidRange, SystemClass::HighEnd]);
        for class in &mut config.classes {
            class.dual_path_fraction = adoption;
        }
        let study = ssfa::Pipeline::new().config(config).seed(7).run()?;

        let by_class = study.afr_by_class(true);
        let mut merged = AfrBreakdown::empty();
        for b in by_class.values() {
            merged.merge(b);
        }
        let total = merged.total_afr();
        let baseline = *baseline_total.get_or_insert(total);
        println!(
            "{:>9.0}% {:>13.2}% {:>13.2}% {:>16.1}",
            adoption * 100.0,
            merged.afr(FailureType::PhysicalInterconnect) * 100.0,
            total * 100.0,
            (baseline - total) * 10_000.0,
        );
    }

    println!();
    println!("The paper's fleets sat at ~1/3 adoption. Full adoption removes roughly");
    println!("half of all interconnect failures from the RAID layer's workload —");
    println!("failures RAID was never designed to tolerate in the first place.");
    Ok(())
}
