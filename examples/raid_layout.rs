//! RAID layout study: should a RAID group span shelves?
//!
//! The paper (§5.1, Findings 9–10) argues that building RAID groups from
//! disks spanning multiple shelf enclosures reduces how bursty the failures
//! hitting one group are — which matters because a RAID4 group dies on the
//! second concurrent failure and a RAID6 group on the third. This example
//! compares the two layout policies on the same fleet and reports
//! burst behaviour *and* the probability of a group seeing 2+ failures in
//! one year (the precursor of data loss).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example raid_layout
//! ```

use ssfa::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Comparing RAID group layouts on an identical fleet (3% scale)...\n");
    println!(
        "{:>13} {:>14} {:>16} {:>18} {:>14}",
        "layout", "RG gaps", "P(gap < 10^4 s)", "P(2+ fails/RG-yr)", "P(2)/P(1)^2/2"
    );

    for layout in [LayoutPolicy::SpanShelves, LayoutPolicy::SameShelf] {
        let study = ssfa::Pipeline::new()
            .scale(0.03)
            .seed(11)
            .layout(layout)
            .run()?;

        let tbf = study.tbf(Scope::RaidGroup);
        let corr = study.correlation(Scope::RaidGroup, SimDuration::from_years(1.0));
        // Aggregate 2+-failure probability across types via the overall
        // interconnect row (the type RAID is most exposed to).
        let ic = corr[FailureType::PhysicalInterconnect.index()];
        println!(
            "{:>13} {:>14} {:>15.1}% {:>17.2}% {:>13}",
            layout.label(),
            tbf.overall().len(),
            tbf.overall().fraction_within(1e4) * 100.0,
            ic.empirical_p2 * 100.0,
            ic.inflation
                .map(|x| format!("x{x:.1}"))
                .unwrap_or_else(|| "-".into()),
        );
    }

    println!();
    println!("Spanning shelves dilutes every shared failure domain (cooling, backplane,");
    println!("driver version) across many RAID groups, so no single group absorbs a");
    println!("whole burst. The paper observed the same: 30% of same-RAID-group failure");
    println!("gaps under 10^4 s for spanning layouts vs 48% at shelf scope.");
    Ok(())
}
