//! Fleet planner: pick components for a new deployment using the study's
//! failure model.
//!
//! The paper's practical upshot (Findings 3, 6, 7) is that component
//! *selection* and *pairing* matter: a disk model that looks fine on its
//! datasheet can pair badly with a shelf enclosure, and skipping the
//! redundant interconnect costs more reliability than a slightly better
//! disk buys. This example evaluates candidate mid-range configurations —
//! disk model × shelf model × path config — on identical simulated demand
//! and ranks them by expected subsystem failures.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fleet_planner
//! ```

use ssfa::prelude::*;
use ssfa_model::config::ClassConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let candidates = [
        ("C-2", ShelfModel::B, 0.0),
        ("C-2", ShelfModel::C, 0.0),
        ("D-2", ShelfModel::B, 0.0),
        ("D-2", ShelfModel::C, 0.0),
        ("D-2", ShelfModel::C, 1.0),
        ("H-1", ShelfModel::C, 1.0),
    ];

    println!("Evaluating mid-range deployment options (400 systems, ~35k disks each):\n");
    println!(
        "{:>6} {:>7} {:>7} | {:>9} {:>13} {:>9} | {:>22}",
        "disk", "shelf", "paths", "disk AFR", "interconnect", "total", "failures per year"
    );
    println!(
        "{:>6} {:>7} {:>7} | {:>9} {:>13} {:>9} | {:>22}",
        "", "", "", "", "AFR", "AFR", "per 10,000 disks"
    );

    let mut results = Vec::new();
    for (disk, shelf, dual_fraction) in candidates {
        let model = DiskModelId::parse(disk).expect("catalog model");
        let base = FleetConfig::paper();
        let template = base
            .class(SystemClass::MidRange)
            .expect("mid-range in paper config");
        let class_config = ClassConfig {
            n_systems: 400,
            dual_path_fraction: dual_fraction,
            mix: vec![(shelf, model, 1.0)],
            ..template.clone()
        };
        let config = FleetConfig {
            classes: vec![class_config],
            ..base
        };
        let study = ssfa::Pipeline::new().config(config).seed(3).run()?;

        let by_class = study.afr_by_class(true);
        let b = &by_class[&SystemClass::MidRange];
        let per_10k = b.total_afr() * 10_000.0;
        println!(
            "{:>6} {:>7} {:>7} | {:>8.2}% {:>12.2}% {:>8.2}% | {:>22.0}",
            disk,
            shelf.letter(),
            if dual_fraction > 0.0 {
                "dual"
            } else {
                "single"
            },
            b.afr(FailureType::Disk) * 100.0,
            b.afr(FailureType::PhysicalInterconnect) * 100.0,
            b.total_afr() * 100.0,
            per_10k,
        );
        results.push((disk, shelf, dual_fraction, per_10k));
    }

    results.sort_by(|a, b| f64::total_cmp(&a.3, &b.3));
    let best = &results[0];
    let worst = results.last().expect("non-empty");
    println!(
        "\nbest option: Disk {} + Shelf {} + {} paths ({:.0} failures/yr per 10k disks)",
        best.0,
        best.1.letter(),
        if best.2 > 0.0 { "dual" } else { "single" },
        best.3
    );
    println!(
        "worst option: Disk {} + Shelf {} ({:.0} failures/yr per 10k disks, {:.1}x the best)",
        worst.0,
        worst.1.letter(),
        worst.3,
        worst.3 / best.3
    );
    println!("\nNote how the dual-path D-2 config beats every single-path option even");
    println!("though its disks are identical — the study's central message.");
    Ok(())
}
