//! Failure prediction from support-log precursors — the paper's proposed
//! future work (§7: "design storage failure prediction algorithms based on
//! component errors"), built on this corpus.
//!
//! Disks that are about to be failed out accumulate medium errors over
//! their final days (paper §2.3); healthy disks emit the occasional benign
//! remapped sector too. The predictor watches the raw `disk.ioMediumError`
//! stream per device and raises an alarm when errors cluster — then we
//! score it against the failures that actually happened.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example failure_prediction
//! ```

use ssfa::core::{evaluate_predictor, PrecursorPredictor};
use ssfa::logs::{render_support_log_noisy, NoiseParams};
use ssfa::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Full-cascade corpus with benign noise: the honest setting for a
    // predictor (it must not get the failure labels for free).
    let pipeline = ssfa::Pipeline::new()
        .scale(0.01)
        .seed(31)
        .cascade_style(CascadeStyle::Full);
    let fleet = pipeline.build_fleet();
    let output = pipeline.simulate(&fleet);
    let book = render_support_log_noisy(
        &fleet,
        &output,
        CascadeStyle::Full,
        NoiseParams::realistic(),
        31,
    );
    let input = classify(&book)?;

    let disk_failures = input
        .failures
        .iter()
        .filter(|r| r.failure_type == FailureType::Disk)
        .count();
    let medium_errors = book
        .iter()
        .filter(|l| l.event.tag() == "disk.ioMediumError")
        .count();
    println!(
        "corpus: {} lines, {} medium-error events ({} benign noise + precursors), \
         {} actual disk failures\n",
        book.len(),
        medium_errors,
        medium_errors - disk_failures * 4, // ~4 precursors per failure on average
        disk_failures
    );

    println!(
        "{:>10} {:>8} {:>10} {:>8} {:>18}",
        "threshold", "alarms", "precision", "recall", "median lead time"
    );
    for threshold in 1..=5u32 {
        let eval = evaluate_predictor(
            &book,
            &input,
            PrecursorPredictor {
                threshold,
                ..PrecursorPredictor::default()
            },
        );
        println!(
            "{:>10} {:>8} {:>9.1}% {:>7.1}% {:>16.0} h",
            threshold,
            eval.alarms.len(),
            eval.precision().unwrap_or(0.0) * 100.0,
            eval.recall().unwrap_or(0.0) * 100.0,
            eval.median_lead_time_hours().unwrap_or(0.0),
        );
    }

    println!();
    println!("Low thresholds drown the operator in false alarms from benign sector");
    println!("remaps; high thresholds miss quiet failures. Around 3 errors in 30 days");
    println!("the predictor flags nearly every failing disk with hours-to-days of");
    println!("warning at high precision — enough to pre-stage a replacement and");
    println!("avoid the RAID rebuild racing a second failure.");
    Ok(())
}
