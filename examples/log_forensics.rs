//! Log forensics: from raw support-log text to classified failures.
//!
//! This example walks the paper's own methodology (§2.5, Figure 3) end to
//! end on a tiny fleet: render the full multi-line event cascades, show a
//! real excerpt, then parse the *text* back and let the classifier
//! re-derive topology, disk lifetimes, and typed failure records — exactly
//! what the study's authors did with NetApp's AutoSupport corpus.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example log_forensics
//! ```

use ssfa::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Tiny fleet with full Figure-3-style cascades.
    let pipeline = ssfa::Pipeline::new()
        .scale(0.001)
        .seed(23)
        .cascade_style(CascadeStyle::Full);
    let fleet = pipeline.build_fleet();
    let output = pipeline.simulate(&fleet);
    let book = pipeline.render(&fleet, &output);
    let text = book.to_text();

    println!(
        "rendered support log: {} lines, {:.1} MiB of text\n",
        book.len(),
        text.len() as f64 / (1024.0 * 1024.0)
    );

    // Show one physical-interconnect cascade, like the paper's Figure 3.
    let missing_line = text
        .lines()
        .position(|l| l.contains("raid.config.filesystem.disk.missing"))
        .expect("some interconnect failure occurred");
    println!("--- excerpt: a physical interconnect failure cascade ---");
    for line in text.lines().skip(missing_line.saturating_sub(5)).take(6) {
        println!("  {line}");
    }
    println!("---------------------------------------------------------\n");

    // The analysis pipeline starts from text, not from simulator state.
    let reparsed = LogBook::from_text(&text)?;
    let input = classify(&reparsed)?;
    println!(
        "classifier recovered: {} systems, {} disk lifetimes, {} failures",
        input.topology.systems.len(),
        input.lifetimes.len(),
        input.failures.len()
    );

    // Verify against ground truth — the classifier must match exactly.
    let truth = output.exposed_records().len();
    assert_eq!(
        input.failures.len(),
        truth,
        "classifier diverged from ground truth"
    );
    println!("ground-truth exposed failures: {truth} -> exact match\n");

    // Tag distribution of the corpus.
    let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
    for line in reparsed.iter() {
        *counts.entry(line.event.tag()).or_default() += 1;
    }
    println!("corpus composition by event tag:");
    for (tag, n) in counts {
        println!("  {n:>6}  {tag}");
    }

    // Finally, the per-type failure breakdown from logs alone.
    let study = Study::new(input);
    let mut merged = AfrBreakdown::empty();
    for b in study.afr_by_class(true).values() {
        merged.merge(b);
    }
    println!("\nfailure-type shares re-derived purely from log text:");
    for ty in FailureType::ALL {
        println!(
            "  {:<32} {:>5.1}%",
            ty.label(),
            merged.share(ty).unwrap_or(0.0) * 100.0
        );
    }

    // Real AutoSupport archives are not this clean. Re-run the same fleet
    // through the degraded-mode pipeline with deliberate corruption — bit
    // flips, truncated and duplicated lines, non-UTF-8 garbage, orphaned
    // device references, dropped shards — and let lenient mode skip, count,
    // and audit instead of dying.
    println!("\n=== degraded mode: same fleet, 0.5% fault injection ===");
    let (degraded, health) = ssfa::Pipeline::new()
        .scale(0.001)
        .seed(23)
        .cascade_style(CascadeStyle::Full)
        .lenient()
        .faults(FaultSpec::uniform(0.005))
        .run_with_health()?;
    println!("{health}");
    println!(
        "injector ledger: {} faults landed ({} bit flips, {} truncations, \
         {} duplicates, {} garbage lines, {} orphaned refs, {} reorders)",
        health.ledger.faults_landed(),
        health.ledger.bit_flips,
        health.ledger.line_truncations,
        health.ledger.lines_duplicated,
        health.ledger.garbage_lines,
        health.ledger.orphaned_refs,
        health.ledger.lines_reordered,
    );
    println!(
        "study still stands: {} failures recovered (clean run had {}), \
         {:.1}% shard coverage",
        degraded.input().failures.len(),
        study.input().failures.len(),
        health.coverage() * 100.0,
    );

    // The audit trail is exact: every line the pipeline saw is either
    // ingested or counted in a skip bucket.
    assert_eq!(
        health.lines_skipped_malformed,
        health.ledger.expect_malformed
    );
    assert_eq!(
        health.lines_skipped_missing_topology,
        health.ledger.expect_missing_topology
    );
    println!("skip counters match the injector's ledger exactly");
    Ok(())
}
