//! `ssfa` — Storage Subsystem Failure Analysis.
//!
//! A Rust reproduction of the FAST'08 study *"Are Disks the Dominant
//! Contributor for Storage Failures? A Comprehensive Study of Storage
//! Subsystem Failure Characteristics"* (Jiang, Hu, Zhou, Kanevsky).
//!
//! The original study analyzed 44 months of NetApp AutoSupport logs from
//! ~39,000 deployed storage systems. That corpus is proprietary, so this
//! workspace substitutes a calibrated synthetic fleet — and keeps the
//! paper's *pipeline* honest: the analysis consumes only rendered support
//! logs, never simulator ground truth.
//!
//! The crates:
//!
//! - [`model`] — failure taxonomy, component catalogs, fleet config/layout.
//! - [`stats`] — distributions, MLE fits, hypothesis tests (from scratch).
//! - [`sim`] — background hazards + correlated shock episodes over a fleet.
//! - [`logs`] — AutoSupport-style log rendering/parsing + the RAID-layer
//!   failure classifier.
//! - [`core`] — the study analysis: AFR breakdowns, burstiness, P(N)
//!   correlation, Findings 1–11.
//!
//! # Quickstart
//!
//! ```
//! use ssfa::prelude::*;
//!
//! // 0.2% scale of the paper's fleet (about 80 systems, ~3,500 disks).
//! let pipeline = ssfa::Pipeline::new().scale(0.002).seed(7);
//! let study = pipeline.run()?;
//!
//! let fig4 = study.afr_by_class(false);
//! for class in SystemClass::ALL {
//!     println!("{}: {:.2}%", class, fig4[&class].total_afr() * 100.0);
//! }
//! # Ok::<(), ssfa::PipelineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ssfa_core as core;
pub use ssfa_logs as logs;
pub use ssfa_model as model;
pub use ssfa_sim as sim;
pub use ssfa_stats as stats;

use ssfa_logs::{classify, render_support_log, CascadeStyle, LogError};
use ssfa_model::{Fleet, FleetConfig, LayoutPolicy};
use ssfa_sim::{Calibration, SimOutput, Simulator};

/// Convenience re-exports for examples and downstream binaries.
pub mod prelude {
    pub use ssfa_core::{AfrBreakdown, FindingsReport, Scope, Study};
    pub use ssfa_logs::{classify, render_support_log, CascadeStyle, LogBook};
    pub use ssfa_model::{
        DiskModelId, FailureType, Fleet, FleetConfig, LayoutPolicy, PathConfig, ShelfModel,
        SimDuration, SimTime, SystemClass,
    };
    pub use ssfa_sim::{Calibration, SimOutput, Simulator};
}

/// Errors from the end-to-end pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// The log corpus failed to classify.
    Log(LogError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Log(e) => write!(f, "log pipeline failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Log(e) => Some(e),
        }
    }
}

impl From<LogError> for PipelineError {
    fn from(e: LogError) -> Self {
        PipelineError::Log(e)
    }
}

/// The end-to-end pipeline: fleet → simulation → support log → classified
/// analysis input → [`ssfa_core::Study`].
///
/// Every stage is deterministic for a given `(scale, seed, calibration)`.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: FleetConfig,
    calibration: Calibration,
    seed: u64,
    style: CascadeStyle,
    threads: usize,
}

impl Pipeline {
    /// A pipeline over the paper's full-scale fleet with the paper
    /// calibration. Use [`Pipeline::scale`] to shrink it.
    pub fn new() -> Pipeline {
        Pipeline {
            config: FleetConfig::paper(),
            calibration: Calibration::paper(),
            seed: 0,
            style: CascadeStyle::RaidOnly,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }

    /// Sets the number of simulation worker threads. Output is
    /// bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Pipeline {
        assert!(threads > 0, "need at least one worker thread");
        self.threads = threads;
        self
    }

    /// Scales the fleet population (1.0 = the paper's ~39,000 systems).
    #[must_use]
    pub fn scale(mut self, factor: f64) -> Pipeline {
        self.config = self.config.scaled(factor);
        self
    }

    /// Sets the run seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Pipeline {
        self.seed = seed;
        self
    }

    /// Replaces the fleet configuration entirely.
    #[must_use]
    pub fn config(mut self, config: FleetConfig) -> Pipeline {
        self.config = config;
        self
    }

    /// Replaces the hazard calibration (e.g. for ablations).
    #[must_use]
    pub fn calibration(mut self, calibration: Calibration) -> Pipeline {
        self.calibration = calibration;
        self
    }

    /// Applies a layout policy fleet-wide (RAID-layout ablation).
    #[must_use]
    pub fn layout(mut self, layout: LayoutPolicy) -> Pipeline {
        self.config = self.config.with_layout(layout);
        self
    }

    /// Chooses how verbose rendered cascades are. [`CascadeStyle::Full`]
    /// renders Figure-3-style multi-line cascades; the default
    /// [`CascadeStyle::RaidOnly`] keeps large corpora compact.
    #[must_use]
    pub fn cascade_style(mut self, style: CascadeStyle) -> Pipeline {
        self.style = style;
        self
    }

    /// The fleet configuration currently in effect.
    pub fn fleet_config(&self) -> &FleetConfig {
        &self.config
    }

    /// Builds the fleet only.
    pub fn build_fleet(&self) -> Fleet {
        Fleet::build(&self.config, self.seed)
    }

    /// Runs the simulation only.
    pub fn simulate(&self, fleet: &Fleet) -> SimOutput {
        Simulator::new(self.calibration.clone()).run_parallel(fleet, self.seed, self.threads)
    }

    /// Renders the support-log corpus for a run.
    pub fn render(&self, fleet: &Fleet, output: &SimOutput) -> ssfa_logs::LogBook {
        render_support_log(fleet, output, self.style)
    }

    /// Runs the full pipeline to a [`ssfa_core::Study`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Log`] if the rendered corpus fails to
    /// classify (which would indicate a bug — rendered corpora are always
    /// classifiable).
    pub fn run(&self) -> Result<ssfa_core::Study, PipelineError> {
        let fleet = self.build_fleet();
        let output = self.simulate(&fleet);
        let book = self.render(&fleet, &output);
        let input = classify(&book)?;
        Ok(ssfa_core::Study::new(input))
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_is_deterministic() {
        let a = Pipeline::new().scale(0.001).seed(5).run().unwrap();
        let b = Pipeline::new().scale(0.001).seed(5).run().unwrap();
        assert_eq!(a.input().failures, b.input().failures);
        assert_eq!(a.input().lifetimes.len(), b.input().lifetimes.len());
    }

    #[test]
    fn builder_methods_compose() {
        let p = Pipeline::new()
            .scale(0.001)
            .seed(9)
            .layout(LayoutPolicy::SameShelf)
            .calibration(Calibration::paper().without_episodes())
            .cascade_style(CascadeStyle::Full);
        let study = p.run().unwrap();
        assert!(!study.input().failures.is_empty());
    }
}
