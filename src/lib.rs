//! `ssfa` — Storage Subsystem Failure Analysis.
//!
//! A Rust reproduction of the FAST'08 study *"Are Disks the Dominant
//! Contributor for Storage Failures? A Comprehensive Study of Storage
//! Subsystem Failure Characteristics"* (Jiang, Hu, Zhou, Kanevsky).
//!
//! The original study analyzed 44 months of NetApp AutoSupport logs from
//! ~39,000 deployed storage systems. That corpus is proprietary, so this
//! workspace substitutes a calibrated synthetic fleet — and keeps the
//! paper's *pipeline* honest: the analysis consumes only rendered support
//! logs, never simulator ground truth.
//!
//! The crates:
//!
//! - [`model`] — failure taxonomy, component catalogs, fleet config/layout.
//! - [`stats`] — distributions, MLE fits, hypothesis tests (from scratch).
//! - [`sim`] — background hazards + correlated shock episodes over a fleet.
//! - [`logs`] — AutoSupport-style log rendering/parsing + the RAID-layer
//!   failure classifier.
//! - [`core`] — the study analysis: AFR breakdowns, burstiness, P(N)
//!   correlation, Findings 1–11.
//! - [`pipeline`] — the staged execution engine behind [`Pipeline`]:
//!   [`Source`](pipeline::Source) → [`Transport`](pipeline::Transport) →
//!   [`Classify`](pipeline::Classify) → [`Reduce`](pipeline::Reduce) →
//!   [`Sink`](pipeline::Sink) seams over one chunked worker pool.
//! - [`daemon`] — `ssfad`, the always-on analysis service: a framed TCP
//!   ingest bus with per-tenant folds and quarantine, session cursors,
//!   bounded backpressure, and reconnect/backoff replay agents
//!   (DESIGN §12).
//!
//! This root crate is a thin facade: everything here is a re-export of
//! [`ssfa-pipeline`](pipeline) (the engine) or the domain crates, kept so
//! existing `ssfa::...` paths compile unchanged.
//!
//! # Quickstart
//!
//! ```
//! use ssfa::prelude::*;
//!
//! // 0.2% scale of the paper's fleet (about 80 systems, ~3,500 disks).
//! let pipeline = ssfa::Pipeline::new().scale(0.002).seed(7);
//! let study = pipeline.run()?;
//!
//! let fig4 = study.afr_by_class(false);
//! for class in SystemClass::ALL {
//!     println!("{}: {:.2}%", class, fig4[&class].total_afr() * 100.0);
//! }
//! # Ok::<(), ssfa::PipelineError>(())
//! ```
//!
//! # Scaling to full fleet size
//!
//! `scale(1.0)` reproduces the paper's complete fleet: ~39,000 systems and
//! ~1.8 M disk instances, whose rendered support log runs to hundreds of
//! MiB of text. [`Pipeline::run`] handles that by streaming: the log is
//! rendered as one self-contained *shard per system*, shards are batched
//! into *chunks* (an automatic policy targets ~256 KiB of rendered text
//! per chunk; [`Pipeline::chunk_systems`] pins an exact batch size), and
//! worker threads pull chunks off a shared queue. One classifier serves a
//! whole chunk — amortizing per-shard setup — but shards are rendered,
//! fed, and dropped one at a time, so each worker holds only one shard of
//! corpus at peak regardless of chunk size. Per-chunk
//! [`ssfa_logs::AnalysisInput`] partials are then merged in fleet order, so
//! the result is bit-identical to classifying the monolithic corpus
//! ([`Pipeline::run_monolithic`], or its multi-threaded twin
//! [`Pipeline::run_monolithic_parallel`]) for any
//! `(fleet, seed, threads, chunking)` tuple —
//! `tests/pipeline_differential.rs` proves this on every push.
//!
//! By default shards travel from render to classify as parsed lines, the
//! same representation the monolithic oracle consumes.
//! [`Pipeline::text_transport`] instead serializes every shard to corpus
//! text and re-parses it — the full on-disk round trip, which stays
//! differentially tested and is what fault-injected runs always use.
//!
//! ```no_run
//! use ssfa::Pipeline;
//!
//! // Full fleet on 8 workers: peak corpus memory stays at one shard
//! // (a few hundred KiB), not the multi-hundred-MiB monolithic text.
//! let study = Pipeline::new().scale(1.0).threads(8).run()?;
//! println!("{} subsystem failures", study.input().failures.len());
//!
//! // Inspect the chunking and memory behavior directly:
//! let (study, stats) = Pipeline::new()
//!     .scale(1.0)
//!     .threads(8)
//!     .run_streaming_with_stats()?;
//! println!(
//!     "{} shards in {} chunks, peak resident shard {} bytes of {} total corpus bytes",
//!     stats.shards, stats.chunks, stats.max_shard_bytes, stats.total_bytes,
//! );
//! # drop(study);
//! # Ok::<(), ssfa::PipelineError>(())
//! ```
//!
//! # Degraded mode
//!
//! Real support corpora are lossy. [`Pipeline::lenient`] switches the
//! classify stage to skip-and-count, isolates every chunk behind a panic
//! boundary (one retry, then quarantine of the whole chunk, with an exact
//! count of the systems and lines lost), and — via
//! [`Pipeline::run_with_health`] — returns a [`RunHealth`] audit report
//! accounting for every skipped line and lost shard. A deterministic
//! fault-injection harness ([`ssfa_logs::faults`], wired in with
//! [`Pipeline::faults`]) exists to prove the accounting exact:
//!
//! ```
//! use ssfa::prelude::*;
//!
//! let (study, health) = ssfa::Pipeline::new()
//!     .scale(0.002)
//!     .seed(7)
//!     .lenient()
//!     .faults(FaultSpec::uniform(1e-3))
//!     .run_with_health()?;
//! assert_eq!(health.lines_skipped_malformed, health.ledger.expect_malformed);
//! println!("{health}");
//! # drop(study);
//! # Ok::<(), ssfa::PipelineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ssfa_core as core;
pub use ssfa_daemon as daemon;
pub use ssfa_logs as logs;
pub use ssfa_model as model;
pub use ssfa_pipeline as pipeline;
pub use ssfa_sim as sim;
pub use ssfa_stats as stats;

// The historical `ssfa::...` pipeline surface, now defined in
// `ssfa-pipeline`. Every pre-refactor public path stays valid.
pub use ssfa_pipeline::workqueue;
pub use ssfa_pipeline::{
    CheckpointSink, ChunkQuarantine, Epoch, FileSource, ManifestSource, MmapSource, Pipeline,
    PipelineError, RunHealth, StreamStats,
};

/// Convenience re-exports for examples and downstream binaries.
pub mod prelude {
    pub use crate::{ChunkQuarantine, RunHealth};
    pub use ssfa_core::{AfrBreakdown, FindingsReport, Scope, Study};
    pub use ssfa_logs::{
        classify, classify_with, render_support_log, CascadeStyle, FaultSpec, LogBook, ShardHealth,
        Strictness,
    };
    pub use ssfa_model::{
        DiskModelId, FailureType, Fleet, FleetConfig, LayoutPolicy, PathConfig, ShelfModel,
        SimDuration, SimTime, SystemClass,
    };
    pub use ssfa_sim::{Calibration, SimOutput, Simulator};
}
