//! `ssfa` — Storage Subsystem Failure Analysis.
//!
//! A Rust reproduction of the FAST'08 study *"Are Disks the Dominant
//! Contributor for Storage Failures? A Comprehensive Study of Storage
//! Subsystem Failure Characteristics"* (Jiang, Hu, Zhou, Kanevsky).
//!
//! The original study analyzed 44 months of NetApp AutoSupport logs from
//! ~39,000 deployed storage systems. That corpus is proprietary, so this
//! workspace substitutes a calibrated synthetic fleet — and keeps the
//! paper's *pipeline* honest: the analysis consumes only rendered support
//! logs, never simulator ground truth.
//!
//! The crates:
//!
//! - [`model`] — failure taxonomy, component catalogs, fleet config/layout.
//! - [`stats`] — distributions, MLE fits, hypothesis tests (from scratch).
//! - [`sim`] — background hazards + correlated shock episodes over a fleet.
//! - [`logs`] — AutoSupport-style log rendering/parsing + the RAID-layer
//!   failure classifier.
//! - [`core`] — the study analysis: AFR breakdowns, burstiness, P(N)
//!   correlation, Findings 1–11.
//!
//! # Quickstart
//!
//! ```
//! use ssfa::prelude::*;
//!
//! // 0.2% scale of the paper's fleet (about 80 systems, ~3,500 disks).
//! let pipeline = ssfa::Pipeline::new().scale(0.002).seed(7);
//! let study = pipeline.run()?;
//!
//! let fig4 = study.afr_by_class(false);
//! for class in SystemClass::ALL {
//!     println!("{}: {:.2}%", class, fig4[&class].total_afr() * 100.0);
//! }
//! # Ok::<(), ssfa::PipelineError>(())
//! ```
//!
//! # Scaling to full fleet size
//!
//! `scale(1.0)` reproduces the paper's complete fleet: ~39,000 systems and
//! ~1.8 M disk instances, whose rendered support log runs to hundreds of
//! MiB of text. [`Pipeline::run`] handles that by streaming: the log is
//! rendered as one self-contained *shard per system*, shards are parsed
//! and classified concurrently on [`Pipeline::threads`] workers, and each
//! worker holds only its current shard's text in memory. Per-shard
//! [`ssfa_logs::AnalysisInput`] partials are then merged in fleet order, so
//! the result is bit-identical to classifying the monolithic corpus
//! ([`Pipeline::run_monolithic`]) for any `(fleet, seed, threads)` triple —
//! `tests/pipeline_differential.rs` proves this on every push.
//!
//! ```no_run
//! use ssfa::Pipeline;
//!
//! // Full fleet on 8 workers: peak corpus memory stays at one shard
//! // (a few hundred KiB), not the multi-hundred-MiB monolithic text.
//! let study = Pipeline::new().scale(1.0).threads(8).run()?;
//! println!("{} subsystem failures", study.input().failures.len());
//!
//! // Inspect the memory behavior directly:
//! let (study, stats) = Pipeline::new()
//!     .scale(1.0)
//!     .threads(8)
//!     .run_streaming_with_stats()?;
//! println!(
//!     "{} shards, peak resident shard {} bytes of {} total corpus bytes",
//!     stats.shards, stats.max_shard_bytes, stats.total_bytes,
//! );
//! # drop(study);
//! # Ok::<(), ssfa::PipelineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ssfa_core as core;
pub use ssfa_logs as logs;
pub use ssfa_model as model;
pub use ssfa_sim as sim;
pub use ssfa_stats as stats;

use ssfa_logs::{
    classify, render_support_log, render_system_log, CascadeStyle, Classifier, LogError,
    NoiseParams, ShardPlan,
};
use ssfa_model::{Fleet, FleetConfig, LayoutPolicy};
use ssfa_sim::{Calibration, SimOutput, Simulator};

/// Convenience re-exports for examples and downstream binaries.
pub mod prelude {
    pub use ssfa_core::{AfrBreakdown, FindingsReport, Scope, Study};
    pub use ssfa_logs::{classify, render_support_log, CascadeStyle, LogBook};
    pub use ssfa_model::{
        DiskModelId, FailureType, Fleet, FleetConfig, LayoutPolicy, PathConfig, ShelfModel,
        SimDuration, SimTime, SystemClass,
    };
    pub use ssfa_sim::{Calibration, SimOutput, Simulator};
}

/// Errors from the end-to-end pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// The log corpus failed to classify.
    Log(LogError),
    /// A pipeline worker thread died (a panic in render/parse/classify).
    Worker {
        /// What the worker was doing.
        what: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Log(e) => write!(f, "log pipeline failed: {e}"),
            PipelineError::Worker { what } => write!(f, "pipeline worker died: {what}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Log(e) => Some(e),
            PipelineError::Worker { .. } => None,
        }
    }
}

impl From<LogError> for PipelineError {
    fn from(e: LogError) -> Self {
        PipelineError::Log(e)
    }
}

/// The end-to-end pipeline: fleet → simulation → support log → classified
/// analysis input → [`ssfa_core::Study`].
///
/// Every stage is deterministic for a given `(scale, seed, calibration)`.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: FleetConfig,
    calibration: Calibration,
    seed: u64,
    style: CascadeStyle,
    threads: usize,
}

impl Pipeline {
    /// A pipeline over the paper's full-scale fleet with the paper
    /// calibration. Use [`Pipeline::scale`] to shrink it.
    pub fn new() -> Pipeline {
        Pipeline {
            config: FleetConfig::paper(),
            calibration: Calibration::paper(),
            seed: 0,
            style: CascadeStyle::RaidOnly,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }

    /// Sets the number of simulation worker threads. Output is
    /// bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Pipeline {
        assert!(threads > 0, "need at least one worker thread");
        self.threads = threads;
        self
    }

    /// Scales the fleet population (1.0 = the paper's ~39,000 systems).
    #[must_use]
    pub fn scale(mut self, factor: f64) -> Pipeline {
        self.config = self.config.scaled(factor);
        self
    }

    /// Sets the run seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Pipeline {
        self.seed = seed;
        self
    }

    /// Replaces the fleet configuration entirely.
    #[must_use]
    pub fn config(mut self, config: FleetConfig) -> Pipeline {
        self.config = config;
        self
    }

    /// Replaces the hazard calibration (e.g. for ablations).
    #[must_use]
    pub fn calibration(mut self, calibration: Calibration) -> Pipeline {
        self.calibration = calibration;
        self
    }

    /// Applies a layout policy fleet-wide (RAID-layout ablation).
    #[must_use]
    pub fn layout(mut self, layout: LayoutPolicy) -> Pipeline {
        self.config = self.config.with_layout(layout);
        self
    }

    /// Chooses how verbose rendered cascades are. [`CascadeStyle::Full`]
    /// renders Figure-3-style multi-line cascades; the default
    /// [`CascadeStyle::RaidOnly`] keeps large corpora compact.
    #[must_use]
    pub fn cascade_style(mut self, style: CascadeStyle) -> Pipeline {
        self.style = style;
        self
    }

    /// The fleet configuration currently in effect.
    pub fn fleet_config(&self) -> &FleetConfig {
        &self.config
    }

    /// Builds the fleet only.
    pub fn build_fleet(&self) -> Fleet {
        Fleet::build(&self.config, self.seed)
    }

    /// Runs the simulation only.
    pub fn simulate(&self, fleet: &Fleet) -> SimOutput {
        Simulator::new(self.calibration.clone()).run_parallel(fleet, self.seed, self.threads)
    }

    /// Renders the support-log corpus for a run.
    pub fn render(&self, fleet: &Fleet, output: &SimOutput) -> ssfa_logs::LogBook {
        render_support_log(fleet, output, self.style)
    }

    /// Runs the full pipeline to a [`ssfa_core::Study`] via the sharded
    /// streaming path: each system's log renders into its own shard,
    /// worker threads parse and classify shards concurrently through
    /// streaming readers, and the per-shard partials merge — in system
    /// order — into one analysis input.
    ///
    /// Memory stays bounded by the largest shard (plus the classified
    /// partials), never the whole rendered corpus; the result is
    /// bit-identical to [`Pipeline::run_monolithic`] for every
    /// `(fleet, seed, threads)` triple.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Log`] if a shard fails to classify (which
    /// would indicate a bug — rendered corpora are always classifiable)
    /// and [`PipelineError::Worker`] if a worker thread panics.
    pub fn run(&self) -> Result<ssfa_core::Study, PipelineError> {
        self.run_streaming_with_stats().map(|(study, _)| study)
    }

    /// The single-buffer reference pipeline: render the whole corpus into
    /// one [`ssfa_logs::LogBook`], classify it in one pass. Peak memory is
    /// proportional to the full corpus — use [`Pipeline::run`] for large
    /// fleets; this path exists as the correctness oracle the streaming
    /// path is differentially tested against.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Log`] if the rendered corpus fails to
    /// classify.
    pub fn run_monolithic(&self) -> Result<ssfa_core::Study, PipelineError> {
        let fleet = self.build_fleet();
        let output = self.simulate(&fleet);
        let book = self.render(&fleet, &output);
        let input = classify(&book)?;
        Ok(ssfa_core::Study::new(input))
    }

    /// [`Pipeline::run`], also reporting how the corpus was sharded and
    /// how much corpus text was resident at peak.
    ///
    /// # Errors
    ///
    /// As for [`Pipeline::run`].
    pub fn run_streaming_with_stats(
        &self,
    ) -> Result<(ssfa_core::Study, StreamStats), PipelineError> {
        let fleet = self.build_fleet();
        let output = self.simulate(&fleet);
        let plan = ShardPlan::new(&fleet, &output);
        let shards = plan.shard_count();
        if shards == 0 {
            return Ok((
                ssfa_core::Study::from_partials([]),
                StreamStats { shards: 0, max_shard_bytes: 0, total_bytes: 0 },
            ));
        }

        // Contiguous shard ranges per worker; partials are collected in
        // system order, so scheduling cannot affect the merge.
        let workers = self.threads.min(shards);
        let chunk = shards.div_ceil(workers);
        let shard_ids: Vec<usize> = (0..shards).collect();
        let mut chunk_results: Vec<Result<ChunkResult, LogError>> = Vec::new();
        std::thread::scope(|scope| -> Result<(), PipelineError> {
            let handles: Vec<_> = shard_ids
                .chunks(chunk)
                .map(|ids| {
                    let fleet = &fleet;
                    let output = &output;
                    let plan = &plan;
                    scope.spawn(move || -> Result<ChunkResult, LogError> {
                        let mut result = ChunkResult::default();
                        for &shard in ids {
                            // One shard's text is the only corpus buffer
                            // this worker ever holds.
                            let text = render_system_log(
                                fleet,
                                output,
                                plan,
                                shard,
                                self.style,
                                NoiseParams::none(),
                                self.seed,
                            )
                            .to_text();
                            result.max_shard_bytes = result.max_shard_bytes.max(text.len());
                            result.total_bytes += text.len();
                            let mut classifier = Classifier::new();
                            classifier.feed_reader(text.as_bytes())?;
                            result.partials.push(classifier.finish()?);
                        }
                        Ok(result)
                    })
                })
                .collect();
            for handle in handles {
                chunk_results.push(handle.join().map_err(|_| PipelineError::Worker {
                    what: "render/parse/classify shard chunk".into(),
                })?);
            }
            Ok(())
        })?;

        let mut stats = StreamStats { shards, max_shard_bytes: 0, total_bytes: 0 };
        let mut partials = Vec::with_capacity(shards);
        for result in chunk_results {
            let result = result?;
            stats.max_shard_bytes = stats.max_shard_bytes.max(result.max_shard_bytes);
            stats.total_bytes += result.total_bytes;
            partials.extend(result.partials);
        }
        Ok((ssfa_core::Study::from_partials(partials), stats))
    }
}

/// How a streaming run sharded its corpus — the evidence behind the
/// bounded-memory claim: `max_shard_bytes` (the largest corpus buffer any
/// worker held) versus `total_bytes` (what the monolithic path would have
/// held at once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Number of shards processed (= systems in the fleet).
    pub shards: usize,
    /// Largest single shard, in corpus-text bytes.
    pub max_shard_bytes: usize,
    /// Total corpus-text bytes across all shards.
    pub total_bytes: usize,
}

/// Per-worker accumulation for the streaming path.
#[derive(Default)]
struct ChunkResult {
    partials: Vec<ssfa_logs::AnalysisInput>,
    max_shard_bytes: usize,
    total_bytes: usize,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_is_deterministic() {
        let a = Pipeline::new().scale(0.001).seed(5).run().unwrap();
        let b = Pipeline::new().scale(0.001).seed(5).run().unwrap();
        assert_eq!(a.input().failures, b.input().failures);
        assert_eq!(a.input().lifetimes.len(), b.input().lifetimes.len());
    }

    #[test]
    fn builder_methods_compose() {
        let p = Pipeline::new()
            .scale(0.001)
            .seed(9)
            .layout(LayoutPolicy::SameShelf)
            .calibration(Calibration::paper().without_episodes())
            .cascade_style(CascadeStyle::Full);
        let study = p.run().unwrap();
        assert!(!study.input().failures.is_empty());
    }
}
