//! `ssfa` — Storage Subsystem Failure Analysis.
//!
//! A Rust reproduction of the FAST'08 study *"Are Disks the Dominant
//! Contributor for Storage Failures? A Comprehensive Study of Storage
//! Subsystem Failure Characteristics"* (Jiang, Hu, Zhou, Kanevsky).
//!
//! The original study analyzed 44 months of NetApp AutoSupport logs from
//! ~39,000 deployed storage systems. That corpus is proprietary, so this
//! workspace substitutes a calibrated synthetic fleet — and keeps the
//! paper's *pipeline* honest: the analysis consumes only rendered support
//! logs, never simulator ground truth.
//!
//! The crates:
//!
//! - [`model`] — failure taxonomy, component catalogs, fleet config/layout.
//! - [`stats`] — distributions, MLE fits, hypothesis tests (from scratch).
//! - [`sim`] — background hazards + correlated shock episodes over a fleet.
//! - [`logs`] — AutoSupport-style log rendering/parsing + the RAID-layer
//!   failure classifier.
//! - [`core`] — the study analysis: AFR breakdowns, burstiness, P(N)
//!   correlation, Findings 1–11.
//!
//! # Quickstart
//!
//! ```
//! use ssfa::prelude::*;
//!
//! // 0.2% scale of the paper's fleet (about 80 systems, ~3,500 disks).
//! let pipeline = ssfa::Pipeline::new().scale(0.002).seed(7);
//! let study = pipeline.run()?;
//!
//! let fig4 = study.afr_by_class(false);
//! for class in SystemClass::ALL {
//!     println!("{}: {:.2}%", class, fig4[&class].total_afr() * 100.0);
//! }
//! # Ok::<(), ssfa::PipelineError>(())
//! ```
//!
//! # Scaling to full fleet size
//!
//! `scale(1.0)` reproduces the paper's complete fleet: ~39,000 systems and
//! ~1.8 M disk instances, whose rendered support log runs to hundreds of
//! MiB of text. [`Pipeline::run`] handles that by streaming: the log is
//! rendered as one self-contained *shard per system*, shards are batched
//! into *chunks* (an automatic policy targets ~256 KiB of rendered text
//! per chunk; [`Pipeline::chunk_systems`] pins an exact batch size), and
//! worker threads pull chunks off a shared queue. One classifier serves a
//! whole chunk — amortizing per-shard setup — but shards are rendered,
//! fed, and dropped one at a time, so each worker holds only one shard of
//! corpus at peak regardless of chunk size. Per-chunk
//! [`ssfa_logs::AnalysisInput`] partials are then merged in fleet order, so
//! the result is bit-identical to classifying the monolithic corpus
//! ([`Pipeline::run_monolithic`], or its multi-threaded twin
//! [`Pipeline::run_monolithic_parallel`]) for any
//! `(fleet, seed, threads, chunking)` tuple —
//! `tests/pipeline_differential.rs` proves this on every push.
//!
//! By default shards travel from render to classify as parsed lines, the
//! same representation the monolithic oracle consumes.
//! [`Pipeline::text_transport`] instead serializes every shard to corpus
//! text and re-parses it — the full on-disk round trip, which stays
//! differentially tested and is what fault-injected runs always use.
//!
//! ```no_run
//! use ssfa::Pipeline;
//!
//! // Full fleet on 8 workers: peak corpus memory stays at one shard
//! // (a few hundred KiB), not the multi-hundred-MiB monolithic text.
//! let study = Pipeline::new().scale(1.0).threads(8).run()?;
//! println!("{} subsystem failures", study.input().failures.len());
//!
//! // Inspect the chunking and memory behavior directly:
//! let (study, stats) = Pipeline::new()
//!     .scale(1.0)
//!     .threads(8)
//!     .run_streaming_with_stats()?;
//! println!(
//!     "{} shards in {} chunks, peak resident shard {} bytes of {} total corpus bytes",
//!     stats.shards, stats.chunks, stats.max_shard_bytes, stats.total_bytes,
//! );
//! # drop(study);
//! # Ok::<(), ssfa::PipelineError>(())
//! ```
//!
//! # Degraded mode
//!
//! Real support corpora are lossy. [`Pipeline::lenient`] switches the
//! classify stage to skip-and-count, isolates every chunk behind a panic
//! boundary (one retry, then quarantine of the whole chunk, with an exact
//! count of the systems and lines lost), and — via
//! [`Pipeline::run_with_health`] — returns a [`RunHealth`] audit report
//! accounting for every skipped line and lost shard. A deterministic
//! fault-injection harness ([`ssfa_logs::faults`], wired in with
//! [`Pipeline::faults`]) exists to prove the accounting exact:
//!
//! ```
//! use ssfa::prelude::*;
//!
//! let (study, health) = ssfa::Pipeline::new()
//!     .scale(0.002)
//!     .seed(7)
//!     .lenient()
//!     .faults(FaultSpec::uniform(1e-3))
//!     .run_with_health()?;
//! assert_eq!(health.lines_skipped_malformed, health.ledger.expect_malformed);
//! println!("{health}");
//! # drop(study);
//! # Ok::<(), ssfa::PipelineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ssfa_core as core;
pub use ssfa_logs as logs;
pub use ssfa_model as model;
pub use ssfa_sim as sim;
pub use ssfa_stats as stats;

use std::panic::{catch_unwind, AssertUnwindSafe};

use ssfa_logs::{
    classify, classify_parallel, render_support_log, render_system_log, CascadeStyle, ChunkPlan,
    Classifier, FaultInjector, FaultLedger, FaultSpec, LogError, NoiseParams, ShardFate,
    ShardHealth, ShardPlan, Strictness, DEFAULT_CHUNK_TARGET_BYTES,
};
use ssfa_model::{Fleet, FleetConfig, LayoutPolicy, SystemId};
use ssfa_sim::{Calibration, SimOutput, Simulator};

pub mod workqueue;

use workqueue::{worker_loop, ChunkStatus, StdChunkQueue};

/// Convenience re-exports for examples and downstream binaries.
pub mod prelude {
    pub use crate::{ChunkQuarantine, RunHealth};
    pub use ssfa_core::{AfrBreakdown, FindingsReport, Scope, Study};
    pub use ssfa_logs::{
        classify, classify_with, render_support_log, CascadeStyle, FaultSpec, LogBook, ShardHealth,
        Strictness,
    };
    pub use ssfa_model::{
        DiskModelId, FailureType, Fleet, FleetConfig, LayoutPolicy, PathConfig, ShelfModel,
        SimDuration, SimTime, SystemClass,
    };
    pub use ssfa_sim::{Calibration, SimOutput, Simulator};
}

/// Errors from the end-to-end pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// The log corpus failed to classify.
    Log(LogError),
    /// A pipeline worker thread died (a panic in render/parse/classify).
    Worker {
        /// What the worker was doing, including the downcast panic message
        /// when the payload was a string (the overwhelmingly common case).
        what: String,
    },
}

/// Best-effort extraction of a panic payload's message: `panic!("...")`
/// payloads are `&str` or `String`; anything else gets a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Log(e) => write!(f, "log pipeline failed: {e}"),
            PipelineError::Worker { what } => write!(f, "pipeline worker died: {what}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Log(e) => Some(e),
            PipelineError::Worker { .. } => None,
        }
    }
}

impl From<LogError> for PipelineError {
    fn from(e: LogError) -> Self {
        PipelineError::Log(e)
    }
}

/// The end-to-end pipeline: fleet → simulation → support log → classified
/// analysis input → [`ssfa_core::Study`].
///
/// Every stage is deterministic for a given `(scale, seed, calibration)`.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: FleetConfig,
    calibration: Calibration,
    seed: u64,
    style: CascadeStyle,
    threads: usize,
    strictness: Strictness,
    faults: FaultSpec,
    chunking: ChunkPolicy,
    transport: Transport,
}

/// How the streaming path batches shards into work units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkPolicy {
    /// Greedy byte-budget batching targeting
    /// [`DEFAULT_CHUNK_TARGET_BYTES`] of rendered text per chunk.
    Auto,
    /// Exactly `n` systems per chunk (the last chunk may be smaller).
    Fixed(usize),
}

/// What representation of a shard travels from render to classify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transport {
    /// Parsed [`ssfa_logs::LogLine`]s are handed to the classifier
    /// directly — the same representation the monolithic oracle consumes.
    Lines,
    /// Each shard is serialized to corpus text and re-parsed, exercising
    /// the full on-disk round trip. Fault injection always uses this.
    Text,
}

impl Pipeline {
    /// A pipeline over the paper's full-scale fleet with the paper
    /// calibration. Use [`Pipeline::scale`] to shrink it.
    pub fn new() -> Pipeline {
        Pipeline {
            config: FleetConfig::paper(),
            calibration: Calibration::paper(),
            seed: 0,
            style: CascadeStyle::RaidOnly,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            strictness: Strictness::Strict,
            faults: FaultSpec::none(),
            chunking: ChunkPolicy::Auto,
            transport: Transport::Lines,
        }
    }

    /// Batches exactly `n` systems per streaming work unit. `1` reproduces
    /// the original one-shard-per-work-unit scheduling; `n >=` fleet size
    /// degenerates to a single chunk. The default is an automatic policy
    /// targeting [`DEFAULT_CHUNK_TARGET_BYTES`] (~256 KiB) of rendered
    /// text per chunk, which amortizes per-shard classifier setup without
    /// raising peak memory: chunk workers still render, feed, and drop one
    /// shard at a time. Results are bit-identical for every chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn chunk_systems(mut self, n: usize) -> Pipeline {
        assert!(n > 0, "chunks must hold at least one system");
        self.chunking = ChunkPolicy::Fixed(n);
        self
    }

    /// Restores the default automatic chunking policy (see
    /// [`Pipeline::chunk_systems`]).
    #[must_use]
    pub fn chunk_auto(mut self) -> Pipeline {
        self.chunking = ChunkPolicy::Auto;
        self
    }

    /// Makes the streaming path serialize every shard to corpus text and
    /// re-parse it, instead of handing parsed lines straight to the
    /// classifier. This is the full on-disk round trip — slower, and kept
    /// differentially tested precisely because production corpora arrive
    /// as text. Runs with fault injection use it implicitly (the injector
    /// corrupts bytes).
    #[must_use]
    pub fn text_transport(mut self) -> Pipeline {
        self.transport = Transport::Text;
        self
    }

    /// Sets the number of simulation worker threads. Output is
    /// bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Pipeline {
        assert!(threads > 0, "need at least one worker thread");
        self.threads = threads;
        self
    }

    /// Scales the fleet population (1.0 = the paper's ~39,000 systems).
    #[must_use]
    pub fn scale(mut self, factor: f64) -> Pipeline {
        self.config = self.config.scaled(factor);
        self
    }

    /// Sets the run seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Pipeline {
        self.seed = seed;
        self
    }

    /// Replaces the fleet configuration entirely.
    #[must_use]
    pub fn config(mut self, config: FleetConfig) -> Pipeline {
        self.config = config;
        self
    }

    /// Replaces the hazard calibration (e.g. for ablations).
    #[must_use]
    pub fn calibration(mut self, calibration: Calibration) -> Pipeline {
        self.calibration = calibration;
        self
    }

    /// Applies a layout policy fleet-wide (RAID-layout ablation).
    #[must_use]
    pub fn layout(mut self, layout: LayoutPolicy) -> Pipeline {
        self.config = self.config.with_layout(layout);
        self
    }

    /// Chooses how verbose rendered cascades are. [`CascadeStyle::Full`]
    /// renders Figure-3-style multi-line cascades; the default
    /// [`CascadeStyle::RaidOnly`] keeps large corpora compact.
    #[must_use]
    pub fn cascade_style(mut self, style: CascadeStyle) -> Pipeline {
        self.style = style;
        self
    }

    /// Sets the error policy for the classify stage. The default,
    /// [`Strictness::Strict`], is the original fail-fast behavior; with
    /// [`Strictness::Lenient`] bad lines are skipped and counted, panicking
    /// chunk workers get one retry and are then quarantined, and the
    /// [`RunHealth`] from [`Pipeline::run_with_health`] accounts for every
    /// skip. At fault rate zero the two policies are bit-identical.
    #[must_use]
    pub fn strictness(mut self, strictness: Strictness) -> Pipeline {
        self.strictness = strictness;
        self
    }

    /// Shorthand for [`Pipeline::strictness`]`(Strictness::Lenient)`.
    #[must_use]
    pub fn lenient(self) -> Pipeline {
        self.strictness(Strictness::Lenient)
    }

    /// Installs a fault-injection spec: every rendered shard is corrupted
    /// through a deterministic, seedable [`FaultInjector`] before it
    /// reaches the classifier. [`FaultSpec::none`] (the default) bypasses
    /// injection entirely. Injection is a test/chaos-engineering facility;
    /// pair a non-trivial spec with [`Pipeline::lenient`] unless the point
    /// is to watch strict mode abort.
    ///
    /// # Panics
    ///
    /// Panics if the spec's rates are invalid (see [`FaultSpec::validate`]).
    #[must_use]
    pub fn faults(mut self, spec: FaultSpec) -> Pipeline {
        spec.validate();
        self.faults = spec;
        self
    }

    /// The fleet configuration currently in effect.
    pub fn fleet_config(&self) -> &FleetConfig {
        &self.config
    }

    /// Builds the fleet only.
    pub fn build_fleet(&self) -> Fleet {
        Fleet::build(&self.config, self.seed)
    }

    /// Runs the simulation only.
    pub fn simulate(&self, fleet: &Fleet) -> SimOutput {
        Simulator::new(self.calibration.clone()).run_parallel(fleet, self.seed, self.threads)
    }

    /// Renders the support-log corpus for a run.
    pub fn render(&self, fleet: &Fleet, output: &SimOutput) -> ssfa_logs::LogBook {
        render_support_log(fleet, output, self.style)
    }

    /// Runs the full pipeline to a [`ssfa_core::Study`] via the chunked
    /// streaming path: each system's log renders into its own shard,
    /// shards batch into chunks (see [`Pipeline::chunk_systems`]), worker
    /// threads classify chunks concurrently, and the per-chunk partials
    /// merge — in system order — into one analysis input.
    ///
    /// Memory stays bounded by the largest shard (plus the classified
    /// partials), never the whole rendered corpus; the result is
    /// bit-identical to [`Pipeline::run_monolithic`] for every
    /// `(fleet, seed, threads, chunking)` tuple.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Log`] if a shard fails to classify (which
    /// would indicate a bug — rendered corpora are always classifiable)
    /// and [`PipelineError::Worker`] if a worker thread panics.
    pub fn run(&self) -> Result<ssfa_core::Study, PipelineError> {
        self.run_streaming().map(|(study, _, _)| study)
    }

    /// [`Pipeline::run`], also returning the [`RunHealth`] audit report:
    /// how many shards and lines made it through, what was skipped and
    /// why, which shards were retried or quarantined. This is the entry
    /// point for degraded-mode analysis — with [`Pipeline::lenient`] a
    /// corrupt corpus yields a best-effort [`ssfa_core::Study`] plus an
    /// exact accounting of the loss, instead of an abort.
    ///
    /// # Errors
    ///
    /// As for [`Pipeline::run`] (in lenient mode, only worker-pool
    /// failures outside the per-shard isolation boundary surface as
    /// errors).
    pub fn run_with_health(&self) -> Result<(ssfa_core::Study, RunHealth), PipelineError> {
        self.run_streaming()
            .map(|(study, _, health)| (study, health))
    }

    /// The single-buffer reference pipeline: render the whole corpus into
    /// one [`ssfa_logs::LogBook`], classify it in one pass. Peak memory is
    /// proportional to the full corpus — use [`Pipeline::run`] for large
    /// fleets; this path exists as the correctness oracle the streaming
    /// path is differentially tested against.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Log`] if the rendered corpus fails to
    /// classify.
    pub fn run_monolithic(&self) -> Result<ssfa_core::Study, PipelineError> {
        let fleet = self.build_fleet();
        let output = self.simulate(&fleet);
        let book = self.render(&fleet, &output);
        let input = classify(&book)?;
        Ok(ssfa_core::Study::new(input))
    }

    /// [`Pipeline::run_monolithic`] with the classify stage fanned out
    /// over [`Pipeline::threads`] workers via
    /// [`ssfa_logs::classify_parallel`]: the corpus is bucketed by host,
    /// host groups classify concurrently, and the partials merge. A second
    /// independent oracle — it shares no scheduling code with the
    /// streaming path, yet must agree with both it and the sequential
    /// monolith bit for bit.
    ///
    /// # Errors
    ///
    /// As for [`Pipeline::run_monolithic`].
    pub fn run_monolithic_parallel(&self) -> Result<ssfa_core::Study, PipelineError> {
        let fleet = self.build_fleet();
        let output = self.simulate(&fleet);
        let book = self.render(&fleet, &output);
        let input = classify_parallel(&book, self.threads)?;
        Ok(ssfa_core::Study::new(input))
    }

    /// [`Pipeline::run`], also reporting how the corpus was sharded and
    /// how much corpus text was resident at peak.
    ///
    /// # Errors
    ///
    /// As for [`Pipeline::run`].
    pub fn run_streaming_with_stats(
        &self,
    ) -> Result<(ssfa_core::Study, StreamStats), PipelineError> {
        self.run_streaming().map(|(study, stats, _)| (study, stats))
    }

    /// The streaming engine behind every `run_*` entry point: plans one
    /// shard per system, batches shards into chunks per the chunking
    /// policy, and has worker threads pull chunks off a shared queue. Each
    /// chunk runs one [`Classifier`] fed shard by shard (render → optional
    /// fault injection → feed → drop), so peak corpus residency stays one
    /// shard regardless of chunk size. Per-chunk partials merge in chunk
    /// (= system) order, so scheduling cannot affect the result.
    ///
    /// Each chunk is processed inside a panic-isolation boundary. In
    /// strict mode any error or panic aborts the run (original behavior);
    /// in lenient mode a panicking chunk gets one retry and is then
    /// quarantined whole — with an exact accounting of the systems and
    /// lines lost — and classification errors are skip-counted by the
    /// lenient classifier.
    fn run_streaming(&self) -> Result<(ssfa_core::Study, StreamStats, RunHealth), PipelineError> {
        let fleet = self.build_fleet();
        let output = self.simulate(&fleet);
        let plan = ShardPlan::new(&fleet, &output);
        let shards = plan.shard_count();
        if shards == 0 {
            return Ok((
                ssfa_core::Study::from_partials([]),
                StreamStats {
                    shards: 0,
                    chunks: 0,
                    max_shard_bytes: 0,
                    total_bytes: 0,
                },
                RunHealth {
                    strictness: self.strictness,
                    ..RunHealth::default()
                },
            ));
        }
        let chunks = match self.chunking {
            ChunkPolicy::Fixed(n) => ChunkPlan::fixed(&plan, n),
            ChunkPolicy::Auto => {
                ChunkPlan::auto(&plan, &fleet, self.style, DEFAULT_CHUNK_TARGET_BYTES)
            }
        };
        let n_chunks = chunks.chunk_count();
        let injector =
            (!self.faults.is_none()).then(|| FaultInjector::new(self.faults.clone(), self.seed));

        // Workers pull chunk indices from a shared queue (static splits
        // strand workers behind uneven chunks); outcomes are reassembled
        // in chunk order below, so scheduling cannot affect the merge.
        // The queue + worker loop live in `workqueue` so the model-check
        // harness can exhaustively interleave the exact same code.
        let queue = StdChunkQueue::new(n_chunks);
        let workers = self.threads.min(n_chunks);
        let mut collected: Vec<(usize, Result<ChunkOutcome, PipelineError>)> =
            Vec::with_capacity(n_chunks);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let fleet = &fleet;
                    let output = &output;
                    let plan = &plan;
                    let chunks = &chunks;
                    let injector = injector.as_ref();
                    let queue = &queue;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        worker_loop(queue, |chunk| {
                            let result = self.process_chunk(
                                fleet,
                                output,
                                plan,
                                injector,
                                chunk,
                                chunks.shard_range(chunk),
                            );
                            let status = if result.is_err() {
                                ChunkStatus::Fatal
                            } else {
                                ChunkStatus::Done
                            };
                            mine.push((chunk, result));
                            status
                        });
                        mine
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(mine) => collected.extend(mine),
                    // A panic that escaped the per-chunk isolation
                    // boundary — pool-level, not data-level.
                    Err(payload) => collected.push((
                        usize::MAX,
                        Err(PipelineError::Worker {
                            what: panic_message(payload.as_ref()),
                        }),
                    )),
                }
            }
        });
        collected.sort_by_key(|(chunk, _)| *chunk);

        let mut stats = StreamStats {
            shards,
            chunks: n_chunks,
            max_shard_bytes: 0,
            total_bytes: 0,
        };
        let mut health = RunHealth {
            strictness: self.strictness,
            shards_total: shards,
            chunks_total: n_chunks,
            ..RunHealth::default()
        };
        let mut partials = Vec::with_capacity(n_chunks);
        for (_, result) in collected {
            // `?` here surfaces the lowest-index chunk's error first.
            let outcome = result?;
            stats.max_shard_bytes = stats.max_shard_bytes.max(outcome.max_shard_bytes);
            stats.total_bytes += outcome.total_bytes;
            health.shards_processed += outcome.systems_processed;
            health.shards_dropped += outcome.systems_dropped;
            health.shards_retried += outcome.systems_retried;
            if outcome.quarantine.is_none() {
                health.chunks_processed += 1;
            }
            health.quarantined.extend(outcome.quarantine);
            health.lines_seen += outcome.health.lines_seen;
            health.lines_skipped_malformed += outcome.health.malformed_skipped;
            health.lines_skipped_missing_topology += outcome.health.missing_topology_skipped;
            health.ledger.merge(&outcome.ledger);
            partials.extend(outcome.partial.map(|boxed| *boxed));
        }
        Ok((ssfa_core::Study::from_partials(partials), stats, health))
    }

    /// Processes one chunk end to end inside a panic-isolation boundary,
    /// applying the retry/quarantine policy. One [`Classifier`] serves the
    /// whole chunk — that is the amortization — but shards are still
    /// rendered, fed, and dropped one at a time, so the worker never holds
    /// more than one shard of corpus.
    fn process_chunk(
        &self,
        fleet: &Fleet,
        output: &SimOutput,
        plan: &ShardPlan,
        injector: Option<&FaultInjector>,
        chunk: usize,
        range: std::ops::Range<usize>,
    ) -> Result<ChunkOutcome, PipelineError> {
        let mut attempt: u32 = 0;
        loop {
            // A fresh ledger per attempt: a quarantined chunk's lines never
            // reach the merge, so its injection record must not reach the
            // run ledger either.
            let mut ledger = FaultLedger::default();
            let mut dropped = 0usize;
            let mut max_shard_bytes = 0usize;
            let mut total_bytes = 0usize;
            let outcome = catch_unwind(AssertUnwindSafe(
                || -> Result<(ssfa_logs::AnalysisInput, ShardHealth), LogError> {
                    let mut classifier = Classifier::with_strictness(self.strictness);
                    for shard in range.clone() {
                        let book = render_system_log(
                            fleet,
                            output,
                            plan,
                            shard,
                            self.style,
                            NoiseParams::none(),
                            self.seed,
                        );
                        match injector {
                            // Injection corrupts bytes, so injected runs
                            // always take the text transport. Faults stay
                            // keyed by shard index, not chunk, so the
                            // ledger is invariant under chunking.
                            Some(injector) => {
                                let text = book.to_text();
                                drop(book);
                                match injector.corrupt_shard(shard, attempt, &text, &mut ledger) {
                                    ShardFate::Processed(bytes) => {
                                        max_shard_bytes = max_shard_bytes.max(bytes.len());
                                        total_bytes += bytes.len();
                                        classifier.feed_bytes(&bytes)?;
                                        // Restore per-shard-file EOF
                                        // semantics: a truncated tail must
                                        // not glue onto the next shard's
                                        // first line.
                                        classifier.flush_tail()?;
                                    }
                                    ShardFate::Dropped => dropped += 1,
                                }
                            }
                            None => match self.transport {
                                Transport::Lines => {
                                    let bytes = book.resident_bytes();
                                    max_shard_bytes = max_shard_bytes.max(bytes);
                                    total_bytes += bytes;
                                    classifier.feed_book(&book)?;
                                }
                                Transport::Text => {
                                    let text = book.to_text();
                                    drop(book);
                                    max_shard_bytes = max_shard_bytes.max(text.len());
                                    total_bytes += text.len();
                                    classifier.feed_bytes(text.as_bytes())?;
                                    classifier.flush_tail()?;
                                }
                            },
                        }
                    }
                    classifier.finish_with_health()
                },
            ));
            match outcome {
                Ok(Ok((partial, health))) => {
                    return Ok(ChunkOutcome {
                        partial: Some(Box::new(partial)),
                        health,
                        ledger,
                        systems_processed: range.len() - dropped,
                        systems_dropped: dropped,
                        systems_retried: if attempt > 0 { range.len() } else { 0 },
                        quarantine: None,
                        max_shard_bytes,
                        total_bytes,
                    });
                }
                Ok(Err(err)) => {
                    // In lenient mode the classifier absorbs everything
                    // skippable, so only I/O-grade failures reach here:
                    // quarantine rather than abort.
                    if self.strictness == Strictness::Strict {
                        return Err(err.into());
                    }
                    return Ok(self.quarantine_outcome(
                        fleet,
                        output,
                        plan,
                        chunk,
                        range,
                        attempt,
                        err.to_string(),
                    ));
                }
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    if self.strictness == Strictness::Strict {
                        let first = fleet.systems()[range.start].id;
                        return Err(PipelineError::Worker {
                            what: format!(
                                "chunk {chunk} (shards {}..{}, first sys-{}) panicked: {msg}",
                                range.start, range.end, first.0,
                            ),
                        });
                    }
                    if attempt == 0 {
                        attempt = 1;
                        continue;
                    }
                    return Ok(self.quarantine_outcome(
                        fleet,
                        output,
                        plan,
                        chunk,
                        range,
                        attempt,
                        format!("worker panicked twice: {msg}"),
                    ));
                }
            }
        }
    }

    /// Builds the outcome for a quarantined chunk: no partial, no ledger
    /// contribution, and an exact accounting of what was lost — every
    /// system in the chunk by id, plus the rendered line count of each
    /// shard (re-rendered under its own panic guard, since something in
    /// this chunk just panicked).
    #[allow(clippy::too_many_arguments)]
    fn quarantine_outcome(
        &self,
        fleet: &Fleet,
        output: &SimOutput,
        plan: &ShardPlan,
        chunk: usize,
        range: std::ops::Range<usize>,
        attempt: u32,
        reason: String,
    ) -> ChunkOutcome {
        let systems: Vec<SystemId> = range
            .clone()
            .map(|shard| fleet.systems()[shard].id)
            .collect();
        let mut lines_lost = Some(0u64);
        for shard in range.clone() {
            let count = catch_unwind(AssertUnwindSafe(|| {
                render_system_log(
                    fleet,
                    output,
                    plan,
                    shard,
                    self.style,
                    NoiseParams::none(),
                    self.seed,
                )
                .len() as u64
            }))
            .ok();
            lines_lost = match (lines_lost, count) {
                (Some(total), Some(n)) => Some(total + n),
                _ => None,
            };
        }
        ChunkOutcome {
            systems_retried: if attempt > 0 { range.len() } else { 0 },
            quarantine: Some(ChunkQuarantine {
                chunk,
                shards: range,
                systems,
                attempts: attempt + 1,
                reason,
                lines_lost,
            }),
            ..ChunkOutcome::default()
        }
    }
}

/// How a streaming run sharded its corpus — the evidence behind the
/// bounded-memory claim: `max_shard_bytes` (the largest corpus buffer any
/// worker held) versus `total_bytes` (what the monolithic path would have
/// held at once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Number of shards planned (= systems in the fleet).
    pub shards: usize,
    /// Number of chunks the shards were batched into.
    pub chunks: usize,
    /// Largest single shard the run held at once — corpus-text bytes on
    /// the text transport (and under fault injection), in-memory parsed
    /// line bytes on the default transport.
    pub max_shard_bytes: usize,
    /// Total corpus bytes across all shards, in the same unit as
    /// `max_shard_bytes`.
    pub total_bytes: usize,
}

/// One chunk quarantined by the degraded-mode pipeline: its worker kept
/// failing, so the whole chunk's partial was excluded from the merge
/// instead of killing the run. Carries an exact accounting of the loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkQuarantine {
    /// Chunk index in the run's [`ssfa_logs::ChunkPlan`].
    pub chunk: usize,
    /// The contiguous shard range the chunk held (= positions in fleet
    /// system order).
    pub shards: std::ops::Range<usize>,
    /// Every system whose log was lost with the chunk.
    pub systems: Vec<SystemId>,
    /// Processing attempts consumed (2 = failed, retried, failed again).
    pub attempts: u32,
    /// Why the last attempt failed — for panics, the downcast panic
    /// message.
    pub reason: String,
    /// Exactly how many rendered log lines the quarantined shards held,
    /// or `None` if rendering itself panics (then no count exists).
    pub lines_lost: Option<u64>,
}

impl ChunkQuarantine {
    /// Number of systems lost with this chunk.
    pub fn systems_lost(&self) -> usize {
        self.systems.len()
    }
}

/// The degraded-mode audit report: exactly what a streaming run ingested,
/// skipped, dropped, retried, and quarantined.
///
/// In strict mode with no fault injection every counter besides
/// `shards_total`/`shards_processed`/`lines_seen` is zero — a clean bill
/// of health. In lenient mode the report is the contract that nothing was
/// silently lost: every line the pipeline saw is either ingested or
/// counted in a skip bucket, and every shard is processed, dropped,
/// or quarantined.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunHealth {
    /// Error policy the run used.
    pub strictness: Strictness,
    /// Shards the plan contained (= systems in the fleet).
    pub shards_total: usize,
    /// Chunks the shards were batched into.
    pub chunks_total: usize,
    /// Chunks that completed (their shards are processed or individually
    /// dropped, never quarantined).
    pub chunks_processed: usize,
    /// Shards fully classified and merged.
    pub shards_processed: usize,
    /// Shards dropped whole by fault injection (upload never arrived).
    pub shards_dropped: usize,
    /// Shards re-processed because their chunk's worker panicked once and
    /// was retried (every shard in a retried chunk counts).
    pub shards_retried: usize,
    /// Chunks excluded from the merge after repeated failure.
    pub quarantined: Vec<ChunkQuarantine>,
    /// Complete non-blank lines fed to per-shard classifiers.
    pub lines_seen: u64,
    /// Lines skipped as unparseable or non-UTF-8.
    pub lines_skipped_malformed: u64,
    /// Lines skipped for referencing undeclared topology.
    pub lines_skipped_missing_topology: u64,
    /// The fault injector's own ledger for the run (all-zero when no
    /// faults were injected).
    pub ledger: FaultLedger,
}

impl RunHealth {
    /// Number of quarantined chunks.
    pub fn chunks_quarantined(&self) -> usize {
        self.quarantined.len()
    }

    /// Number of shards lost to quarantined chunks (each quarantined
    /// chunk loses every system it held).
    pub fn shards_quarantined(&self) -> usize {
        self.quarantined
            .iter()
            .map(ChunkQuarantine::systems_lost)
            .sum()
    }

    /// Exactly how many rendered log lines the quarantined chunks held,
    /// or `None` if any chunk's loss could not be counted (its shards no
    /// longer render).
    pub fn lines_lost(&self) -> Option<u64> {
        self.quarantined
            .iter()
            .try_fold(0u64, |total, q| Some(total + q.lines_lost?))
    }

    /// Fraction of shards fully classified and merged, in `[0, 1]`
    /// (1.0 for an empty fleet).
    pub fn coverage(&self) -> f64 {
        if self.shards_total == 0 {
            return 1.0;
        }
        self.shards_processed as f64 / self.shards_total as f64
    }

    /// Total lines skipped for any reason.
    pub fn lines_skipped_total(&self) -> u64 {
        self.lines_skipped_malformed + self.lines_skipped_missing_topology
    }

    /// Whether nothing was lost: every shard processed, every line
    /// ingested, no retries.
    pub fn is_clean(&self) -> bool {
        self.shards_processed == self.shards_total
            && self.shards_retried == 0
            && self.quarantined.is_empty()
            && self.lines_skipped_total() == 0
    }
}

impl std::fmt::Display for RunHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "run health ({:?}): {}/{} shards processed ({:.2}% coverage) \
             in {}/{} chunks, {} dropped, {} retried, {} quarantined",
            self.strictness,
            self.shards_processed,
            self.shards_total,
            self.coverage() * 100.0,
            self.chunks_processed,
            self.chunks_total,
            self.shards_dropped,
            self.shards_retried,
            self.shards_quarantined(),
        )?;
        write!(
            f,
            "lines: {} seen, {} skipped ({} malformed, {} missing-topology)",
            self.lines_seen,
            self.lines_skipped_total(),
            self.lines_skipped_malformed,
            self.lines_skipped_missing_topology,
        )?;
        for q in &self.quarantined {
            write!(
                f,
                "\nquarantined chunk {} (shards {}..{}, {} system(s), ",
                q.chunk,
                q.shards.start,
                q.shards.end,
                q.systems_lost(),
            )?;
            match q.lines_lost {
                Some(lines) => write!(f, "{lines} line(s) lost)")?,
                None => write!(f, "lines lost uncountable)")?,
            }
            write!(f, " after {} attempt(s): {}", q.attempts, q.reason)?;
        }
        Ok(())
    }
}

/// What one chunk's isolated processing produced: either a merged partial
/// with its counters, or a quarantine record. The partial is boxed so the
/// struct stays small for the quarantined case.
#[derive(Default)]
struct ChunkOutcome {
    partial: Option<Box<ssfa_logs::AnalysisInput>>,
    health: ShardHealth,
    ledger: FaultLedger,
    systems_processed: usize,
    systems_dropped: usize,
    systems_retried: usize,
    quarantine: Option<ChunkQuarantine>,
    max_shard_bytes: usize,
    total_bytes: usize,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_is_deterministic() {
        let a = Pipeline::new().scale(0.001).seed(5).run().unwrap();
        let b = Pipeline::new().scale(0.001).seed(5).run().unwrap();
        assert_eq!(a.input().failures, b.input().failures);
        assert_eq!(a.input().lifetimes.len(), b.input().lifetimes.len());
    }

    #[test]
    fn builder_methods_compose() {
        let p = Pipeline::new()
            .scale(0.001)
            .seed(9)
            .layout(LayoutPolicy::SameShelf)
            .calibration(Calibration::paper().without_episodes())
            .cascade_style(CascadeStyle::Full);
        let study = p.run().unwrap();
        assert!(!study.input().failures.is_empty());
    }
}
