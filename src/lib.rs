//! `ssfa` — Storage Subsystem Failure Analysis.
//!
//! A Rust reproduction of the FAST'08 study *"Are Disks the Dominant
//! Contributor for Storage Failures? A Comprehensive Study of Storage
//! Subsystem Failure Characteristics"* (Jiang, Hu, Zhou, Kanevsky).
//!
//! The original study analyzed 44 months of NetApp AutoSupport logs from
//! ~39,000 deployed storage systems. That corpus is proprietary, so this
//! workspace substitutes a calibrated synthetic fleet — and keeps the
//! paper's *pipeline* honest: the analysis consumes only rendered support
//! logs, never simulator ground truth.
//!
//! The crates:
//!
//! - [`model`] — failure taxonomy, component catalogs, fleet config/layout.
//! - [`stats`] — distributions, MLE fits, hypothesis tests (from scratch).
//! - [`sim`] — background hazards + correlated shock episodes over a fleet.
//! - [`logs`] — AutoSupport-style log rendering/parsing + the RAID-layer
//!   failure classifier.
//! - [`core`] — the study analysis: AFR breakdowns, burstiness, P(N)
//!   correlation, Findings 1–11.
//!
//! # Quickstart
//!
//! ```
//! use ssfa::prelude::*;
//!
//! // 0.2% scale of the paper's fleet (about 80 systems, ~3,500 disks).
//! let pipeline = ssfa::Pipeline::new().scale(0.002).seed(7);
//! let study = pipeline.run()?;
//!
//! let fig4 = study.afr_by_class(false);
//! for class in SystemClass::ALL {
//!     println!("{}: {:.2}%", class, fig4[&class].total_afr() * 100.0);
//! }
//! # Ok::<(), ssfa::PipelineError>(())
//! ```
//!
//! # Scaling to full fleet size
//!
//! `scale(1.0)` reproduces the paper's complete fleet: ~39,000 systems and
//! ~1.8 M disk instances, whose rendered support log runs to hundreds of
//! MiB of text. [`Pipeline::run`] handles that by streaming: the log is
//! rendered as one self-contained *shard per system*, shards are parsed
//! and classified concurrently on [`Pipeline::threads`] workers, and each
//! worker holds only its current shard's text in memory. Per-shard
//! [`ssfa_logs::AnalysisInput`] partials are then merged in fleet order, so
//! the result is bit-identical to classifying the monolithic corpus
//! ([`Pipeline::run_monolithic`]) for any `(fleet, seed, threads)` triple —
//! `tests/pipeline_differential.rs` proves this on every push.
//!
//! ```no_run
//! use ssfa::Pipeline;
//!
//! // Full fleet on 8 workers: peak corpus memory stays at one shard
//! // (a few hundred KiB), not the multi-hundred-MiB monolithic text.
//! let study = Pipeline::new().scale(1.0).threads(8).run()?;
//! println!("{} subsystem failures", study.input().failures.len());
//!
//! // Inspect the memory behavior directly:
//! let (study, stats) = Pipeline::new()
//!     .scale(1.0)
//!     .threads(8)
//!     .run_streaming_with_stats()?;
//! println!(
//!     "{} shards, peak resident shard {} bytes of {} total corpus bytes",
//!     stats.shards, stats.max_shard_bytes, stats.total_bytes,
//! );
//! # drop(study);
//! # Ok::<(), ssfa::PipelineError>(())
//! ```
//!
//! # Degraded mode
//!
//! Real support corpora are lossy. [`Pipeline::lenient`] switches the
//! classify stage to skip-and-count, isolates every shard behind a panic
//! boundary (one retry, then quarantine), and —via
//! [`Pipeline::run_with_health`] — returns a [`RunHealth`] audit report
//! accounting for every skipped line and lost shard. A deterministic
//! fault-injection harness ([`ssfa_logs::faults`], wired in with
//! [`Pipeline::faults`]) exists to prove the accounting exact:
//!
//! ```
//! use ssfa::prelude::*;
//!
//! let (study, health) = ssfa::Pipeline::new()
//!     .scale(0.002)
//!     .seed(7)
//!     .lenient()
//!     .faults(FaultSpec::uniform(1e-3))
//!     .run_with_health()?;
//! assert_eq!(health.lines_skipped_malformed, health.ledger.expect_malformed);
//! println!("{health}");
//! # drop(study);
//! # Ok::<(), ssfa::PipelineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ssfa_core as core;
pub use ssfa_logs as logs;
pub use ssfa_model as model;
pub use ssfa_sim as sim;
pub use ssfa_stats as stats;

use std::panic::{catch_unwind, AssertUnwindSafe};

use ssfa_logs::{
    classify, render_support_log, render_system_log, CascadeStyle, Classifier, FaultInjector,
    FaultLedger, FaultSpec, LogError, NoiseParams, ShardFate, ShardHealth, ShardPlan, Strictness,
};
use ssfa_model::{Fleet, FleetConfig, LayoutPolicy, SystemId};
use ssfa_sim::{Calibration, SimOutput, Simulator};

/// Convenience re-exports for examples and downstream binaries.
pub mod prelude {
    pub use crate::{RunHealth, ShardQuarantine};
    pub use ssfa_core::{AfrBreakdown, FindingsReport, Scope, Study};
    pub use ssfa_logs::{
        classify, classify_with, render_support_log, CascadeStyle, FaultSpec, LogBook,
        ShardHealth, Strictness,
    };
    pub use ssfa_model::{
        DiskModelId, FailureType, Fleet, FleetConfig, LayoutPolicy, PathConfig, ShelfModel,
        SimDuration, SimTime, SystemClass,
    };
    pub use ssfa_sim::{Calibration, SimOutput, Simulator};
}

/// Errors from the end-to-end pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// The log corpus failed to classify.
    Log(LogError),
    /// A pipeline worker thread died (a panic in render/parse/classify).
    Worker {
        /// What the worker was doing, including the downcast panic message
        /// when the payload was a string (the overwhelmingly common case).
        what: String,
    },
}

/// Best-effort extraction of a panic payload's message: `panic!("...")`
/// payloads are `&str` or `String`; anything else gets a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Log(e) => write!(f, "log pipeline failed: {e}"),
            PipelineError::Worker { what } => write!(f, "pipeline worker died: {what}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Log(e) => Some(e),
            PipelineError::Worker { .. } => None,
        }
    }
}

impl From<LogError> for PipelineError {
    fn from(e: LogError) -> Self {
        PipelineError::Log(e)
    }
}

/// The end-to-end pipeline: fleet → simulation → support log → classified
/// analysis input → [`ssfa_core::Study`].
///
/// Every stage is deterministic for a given `(scale, seed, calibration)`.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: FleetConfig,
    calibration: Calibration,
    seed: u64,
    style: CascadeStyle,
    threads: usize,
    strictness: Strictness,
    faults: FaultSpec,
}

impl Pipeline {
    /// A pipeline over the paper's full-scale fleet with the paper
    /// calibration. Use [`Pipeline::scale`] to shrink it.
    pub fn new() -> Pipeline {
        Pipeline {
            config: FleetConfig::paper(),
            calibration: Calibration::paper(),
            seed: 0,
            style: CascadeStyle::RaidOnly,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            strictness: Strictness::Strict,
            faults: FaultSpec::none(),
        }
    }

    /// Sets the number of simulation worker threads. Output is
    /// bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Pipeline {
        assert!(threads > 0, "need at least one worker thread");
        self.threads = threads;
        self
    }

    /// Scales the fleet population (1.0 = the paper's ~39,000 systems).
    #[must_use]
    pub fn scale(mut self, factor: f64) -> Pipeline {
        self.config = self.config.scaled(factor);
        self
    }

    /// Sets the run seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Pipeline {
        self.seed = seed;
        self
    }

    /// Replaces the fleet configuration entirely.
    #[must_use]
    pub fn config(mut self, config: FleetConfig) -> Pipeline {
        self.config = config;
        self
    }

    /// Replaces the hazard calibration (e.g. for ablations).
    #[must_use]
    pub fn calibration(mut self, calibration: Calibration) -> Pipeline {
        self.calibration = calibration;
        self
    }

    /// Applies a layout policy fleet-wide (RAID-layout ablation).
    #[must_use]
    pub fn layout(mut self, layout: LayoutPolicy) -> Pipeline {
        self.config = self.config.with_layout(layout);
        self
    }

    /// Chooses how verbose rendered cascades are. [`CascadeStyle::Full`]
    /// renders Figure-3-style multi-line cascades; the default
    /// [`CascadeStyle::RaidOnly`] keeps large corpora compact.
    #[must_use]
    pub fn cascade_style(mut self, style: CascadeStyle) -> Pipeline {
        self.style = style;
        self
    }

    /// Sets the error policy for the classify stage. The default,
    /// [`Strictness::Strict`], is the original fail-fast behavior; with
    /// [`Strictness::Lenient`] bad lines are skipped and counted, panicking
    /// shard workers get one retry and are then quarantined, and the
    /// [`RunHealth`] from [`Pipeline::run_with_health`] accounts for every
    /// skip. At fault rate zero the two policies are bit-identical.
    #[must_use]
    pub fn strictness(mut self, strictness: Strictness) -> Pipeline {
        self.strictness = strictness;
        self
    }

    /// Shorthand for [`Pipeline::strictness`]`(Strictness::Lenient)`.
    #[must_use]
    pub fn lenient(self) -> Pipeline {
        self.strictness(Strictness::Lenient)
    }

    /// Installs a fault-injection spec: every rendered shard is corrupted
    /// through a deterministic, seedable [`FaultInjector`] before it
    /// reaches the classifier. [`FaultSpec::none`] (the default) bypasses
    /// injection entirely. Injection is a test/chaos-engineering facility;
    /// pair a non-trivial spec with [`Pipeline::lenient`] unless the point
    /// is to watch strict mode abort.
    ///
    /// # Panics
    ///
    /// Panics if the spec's rates are invalid (see [`FaultSpec::validate`]).
    #[must_use]
    pub fn faults(mut self, spec: FaultSpec) -> Pipeline {
        spec.validate();
        self.faults = spec;
        self
    }

    /// The fleet configuration currently in effect.
    pub fn fleet_config(&self) -> &FleetConfig {
        &self.config
    }

    /// Builds the fleet only.
    pub fn build_fleet(&self) -> Fleet {
        Fleet::build(&self.config, self.seed)
    }

    /// Runs the simulation only.
    pub fn simulate(&self, fleet: &Fleet) -> SimOutput {
        Simulator::new(self.calibration.clone()).run_parallel(fleet, self.seed, self.threads)
    }

    /// Renders the support-log corpus for a run.
    pub fn render(&self, fleet: &Fleet, output: &SimOutput) -> ssfa_logs::LogBook {
        render_support_log(fleet, output, self.style)
    }

    /// Runs the full pipeline to a [`ssfa_core::Study`] via the sharded
    /// streaming path: each system's log renders into its own shard,
    /// worker threads parse and classify shards concurrently through
    /// streaming readers, and the per-shard partials merge — in system
    /// order — into one analysis input.
    ///
    /// Memory stays bounded by the largest shard (plus the classified
    /// partials), never the whole rendered corpus; the result is
    /// bit-identical to [`Pipeline::run_monolithic`] for every
    /// `(fleet, seed, threads)` triple.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Log`] if a shard fails to classify (which
    /// would indicate a bug — rendered corpora are always classifiable)
    /// and [`PipelineError::Worker`] if a worker thread panics.
    pub fn run(&self) -> Result<ssfa_core::Study, PipelineError> {
        self.run_streaming().map(|(study, _, _)| study)
    }

    /// [`Pipeline::run`], also returning the [`RunHealth`] audit report:
    /// how many shards and lines made it through, what was skipped and
    /// why, which shards were retried or quarantined. This is the entry
    /// point for degraded-mode analysis — with [`Pipeline::lenient`] a
    /// corrupt corpus yields a best-effort [`ssfa_core::Study`] plus an
    /// exact accounting of the loss, instead of an abort.
    ///
    /// # Errors
    ///
    /// As for [`Pipeline::run`] (in lenient mode, only worker-pool
    /// failures outside the per-shard isolation boundary surface as
    /// errors).
    pub fn run_with_health(&self) -> Result<(ssfa_core::Study, RunHealth), PipelineError> {
        self.run_streaming().map(|(study, _, health)| (study, health))
    }

    /// The single-buffer reference pipeline: render the whole corpus into
    /// one [`ssfa_logs::LogBook`], classify it in one pass. Peak memory is
    /// proportional to the full corpus — use [`Pipeline::run`] for large
    /// fleets; this path exists as the correctness oracle the streaming
    /// path is differentially tested against.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Log`] if the rendered corpus fails to
    /// classify.
    pub fn run_monolithic(&self) -> Result<ssfa_core::Study, PipelineError> {
        let fleet = self.build_fleet();
        let output = self.simulate(&fleet);
        let book = self.render(&fleet, &output);
        let input = classify(&book)?;
        Ok(ssfa_core::Study::new(input))
    }

    /// [`Pipeline::run`], also reporting how the corpus was sharded and
    /// how much corpus text was resident at peak.
    ///
    /// # Errors
    ///
    /// As for [`Pipeline::run`].
    pub fn run_streaming_with_stats(
        &self,
    ) -> Result<(ssfa_core::Study, StreamStats), PipelineError> {
        self.run_streaming().map(|(study, stats, _)| (study, stats))
    }

    /// The streaming engine behind every `run_*` entry point: renders one
    /// shard per system, pushes each shard through (optional) fault
    /// injection and a per-shard [`Classifier`], and merges the partials
    /// in system order.
    ///
    /// Each shard is processed inside a panic-isolation boundary. In
    /// strict mode any shard error or panic aborts the run (original
    /// behavior); in lenient mode a panicking shard gets one retry and is
    /// then quarantined — its partial simply never joins the merge — and
    /// classification errors are skip-counted by the lenient classifier.
    fn run_streaming(&self) -> Result<(ssfa_core::Study, StreamStats, RunHealth), PipelineError> {
        let fleet = self.build_fleet();
        let output = self.simulate(&fleet);
        let plan = ShardPlan::new(&fleet, &output);
        let shards = plan.shard_count();
        if shards == 0 {
            return Ok((
                ssfa_core::Study::from_partials([]),
                StreamStats { shards: 0, max_shard_bytes: 0, total_bytes: 0 },
                RunHealth { strictness: self.strictness, ..RunHealth::default() },
            ));
        }
        let injector = (!self.faults.is_none())
            .then(|| FaultInjector::new(self.faults.clone(), self.seed));

        // Contiguous shard ranges per worker; partials are collected in
        // system order, so scheduling cannot affect the merge.
        let workers = self.threads.min(shards);
        let chunk = shards.div_ceil(workers);
        let shard_ids: Vec<usize> = (0..shards).collect();
        let mut chunk_results: Vec<ChunkResult> = Vec::new();
        std::thread::scope(|scope| -> Result<(), PipelineError> {
            let handles: Vec<_> = shard_ids
                .chunks(chunk)
                .map(|ids| {
                    let fleet = &fleet;
                    let output = &output;
                    let plan = &plan;
                    let injector = injector.as_ref();
                    scope.spawn(move || -> Result<ChunkResult, PipelineError> {
                        let mut result = ChunkResult::default();
                        for &shard in ids {
                            self.process_shard(
                                fleet, output, plan, injector, shard, &mut result,
                            )?;
                        }
                        Ok(result)
                    })
                })
                .collect();
            for handle in handles {
                let chunk_result = handle
                    .join()
                    .unwrap_or_else(|payload| {
                        // A panic that escaped the per-shard isolation
                        // boundary — pool-level, not data-level.
                        Err(PipelineError::Worker { what: panic_message(payload.as_ref()) })
                    })?;
                chunk_results.push(chunk_result);
            }
            Ok(())
        })?;

        let mut stats = StreamStats { shards, max_shard_bytes: 0, total_bytes: 0 };
        let mut health = RunHealth {
            strictness: self.strictness,
            shards_total: shards,
            ..RunHealth::default()
        };
        let mut partials = Vec::with_capacity(shards);
        for result in chunk_results {
            stats.max_shard_bytes = stats.max_shard_bytes.max(result.max_shard_bytes);
            stats.total_bytes += result.total_bytes;
            health.shards_processed += result.shards_processed;
            health.shards_dropped += result.shards_dropped;
            health.shards_retried += result.shards_retried;
            health.quarantined.extend(result.quarantined);
            health.lines_seen += result.health.lines_seen;
            health.lines_skipped_malformed += result.health.malformed_skipped;
            health.lines_skipped_missing_topology += result.health.missing_topology_skipped;
            health.ledger.merge(&result.ledger);
            partials.extend(result.partials);
        }
        Ok((ssfa_core::Study::from_partials(partials), stats, health))
    }

    /// Processes one shard end to end (render → inject → classify) inside
    /// a panic-isolation boundary, applying the retry/quarantine policy.
    fn process_shard(
        &self,
        fleet: &Fleet,
        output: &SimOutput,
        plan: &ShardPlan,
        injector: Option<&FaultInjector>,
        shard: usize,
        result: &mut ChunkResult,
    ) -> Result<(), PipelineError> {
        let system = fleet.systems()[shard].id;
        let mut attempt: u32 = 0;
        loop {
            // A fresh ledger per attempt: a quarantined shard's lines never
            // reach the classifier, so its injection record must not reach
            // the run ledger either.
            let mut ledger = FaultLedger::default();
            let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<ShardOutcome, LogError> {
                // One shard's text is the only corpus buffer this worker
                // ever holds.
                let text = render_system_log(
                    fleet,
                    output,
                    plan,
                    shard,
                    self.style,
                    NoiseParams::none(),
                    self.seed,
                )
                .to_text();
                let fed: Vec<u8> = match injector {
                    Some(injector) => {
                        match injector.corrupt_shard(shard, attempt, &text, &mut ledger) {
                            ShardFate::Processed(bytes) => bytes,
                            ShardFate::Dropped => return Ok(ShardOutcome::Dropped),
                        }
                    }
                    None => text.into_bytes(),
                };
                let mut classifier = Classifier::with_strictness(self.strictness);
                classifier.feed_bytes(&fed)?;
                let (partial, health) = classifier.finish_with_health()?;
                Ok(ShardOutcome::Done { partial: Box::new(partial), health, bytes: fed.len() })
            }));
            match outcome {
                Ok(Ok(ShardOutcome::Done { partial, health, bytes })) => {
                    result.max_shard_bytes = result.max_shard_bytes.max(bytes);
                    result.total_bytes += bytes;
                    result.shards_processed += 1;
                    result.health.merge(&health);
                    result.ledger.merge(&ledger);
                    result.partials.push(*partial);
                    return Ok(());
                }
                Ok(Ok(ShardOutcome::Dropped)) => {
                    result.shards_dropped += 1;
                    result.ledger.merge(&ledger);
                    return Ok(());
                }
                Ok(Err(err)) => {
                    // In lenient mode the classifier absorbs everything
                    // skippable, so only I/O-grade failures reach here:
                    // quarantine rather than abort.
                    if self.strictness == Strictness::Strict {
                        return Err(err.into());
                    }
                    result.quarantined.push(ShardQuarantine {
                        shard,
                        system,
                        attempts: attempt + 1,
                        reason: err.to_string(),
                    });
                    return Ok(());
                }
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    if self.strictness == Strictness::Strict {
                        return Err(PipelineError::Worker {
                            what: format!("shard {shard} (sys-{}) panicked: {msg}", system.0),
                        });
                    }
                    if attempt == 0 {
                        attempt = 1;
                        result.shards_retried += 1;
                        continue;
                    }
                    result.quarantined.push(ShardQuarantine {
                        shard,
                        system,
                        attempts: attempt + 1,
                        reason: format!("worker panicked twice: {msg}"),
                    });
                    return Ok(());
                }
            }
        }
    }
}

/// How a streaming run sharded its corpus — the evidence behind the
/// bounded-memory claim: `max_shard_bytes` (the largest corpus buffer any
/// worker held) versus `total_bytes` (what the monolithic path would have
/// held at once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Number of shards processed (= systems in the fleet).
    pub shards: usize,
    /// Largest single shard, in corpus-text bytes.
    pub max_shard_bytes: usize,
    /// Total corpus-text bytes across all shards.
    pub total_bytes: usize,
}

/// One shard quarantined by the degraded-mode pipeline: its worker kept
/// failing, so its partial was excluded from the merge instead of killing
/// the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardQuarantine {
    /// Shard index (= position in fleet system order).
    pub shard: usize,
    /// The system whose log the shard holds.
    pub system: SystemId,
    /// Processing attempts consumed (2 = failed, retried, failed again).
    pub attempts: u32,
    /// Why the last attempt failed — for panics, the downcast panic
    /// message.
    pub reason: String,
}

/// The degraded-mode audit report: exactly what a streaming run ingested,
/// skipped, dropped, retried, and quarantined.
///
/// In strict mode with no fault injection every counter besides
/// `shards_total`/`shards_processed`/`lines_seen` is zero — a clean bill
/// of health. In lenient mode the report is the contract that nothing was
/// silently lost: every line the pipeline saw is either ingested or
/// counted in a skip bucket, and every shard is processed, dropped,
/// or quarantined.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunHealth {
    /// Error policy the run used.
    pub strictness: Strictness,
    /// Shards the plan contained (= systems in the fleet).
    pub shards_total: usize,
    /// Shards fully classified and merged.
    pub shards_processed: usize,
    /// Shards dropped whole by fault injection (upload never arrived).
    pub shards_dropped: usize,
    /// Shards whose worker panicked once and was retried.
    pub shards_retried: usize,
    /// Shards excluded from the merge after repeated failure.
    pub quarantined: Vec<ShardQuarantine>,
    /// Complete non-blank lines fed to per-shard classifiers.
    pub lines_seen: u64,
    /// Lines skipped as unparseable or non-UTF-8.
    pub lines_skipped_malformed: u64,
    /// Lines skipped for referencing undeclared topology.
    pub lines_skipped_missing_topology: u64,
    /// The fault injector's own ledger for the run (all-zero when no
    /// faults were injected).
    pub ledger: FaultLedger,
}

impl RunHealth {
    /// Number of quarantined shards.
    pub fn shards_quarantined(&self) -> usize {
        self.quarantined.len()
    }

    /// Fraction of shards fully classified and merged, in `[0, 1]`
    /// (1.0 for an empty fleet).
    pub fn coverage(&self) -> f64 {
        if self.shards_total == 0 {
            return 1.0;
        }
        self.shards_processed as f64 / self.shards_total as f64
    }

    /// Total lines skipped for any reason.
    pub fn lines_skipped_total(&self) -> u64 {
        self.lines_skipped_malformed + self.lines_skipped_missing_topology
    }

    /// Whether nothing was lost: every shard processed, every line
    /// ingested, no retries.
    pub fn is_clean(&self) -> bool {
        self.shards_processed == self.shards_total
            && self.shards_retried == 0
            && self.quarantined.is_empty()
            && self.lines_skipped_total() == 0
    }
}

impl std::fmt::Display for RunHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "run health ({:?}): {}/{} shards processed ({:.2}% coverage), \
             {} dropped, {} retried, {} quarantined",
            self.strictness,
            self.shards_processed,
            self.shards_total,
            self.coverage() * 100.0,
            self.shards_dropped,
            self.shards_retried,
            self.shards_quarantined(),
        )?;
        write!(
            f,
            "lines: {} seen, {} skipped ({} malformed, {} missing-topology)",
            self.lines_seen,
            self.lines_skipped_total(),
            self.lines_skipped_malformed,
            self.lines_skipped_missing_topology,
        )?;
        for q in &self.quarantined {
            write!(
                f,
                "\nquarantined shard {} (sys-{}) after {} attempt(s): {}",
                q.shard, q.system.0, q.attempts, q.reason,
            )?;
        }
        Ok(())
    }
}

/// What one shard's isolated processing attempt produced.
enum ShardOutcome {
    /// Classified: a partial to merge plus its data-quality tally. Boxed
    /// so the enum stays pointer-sized next to the empty variant.
    Done {
        partial: Box<ssfa_logs::AnalysisInput>,
        health: ShardHealth,
        bytes: usize,
    },
    /// Fault injection dropped the whole shard.
    Dropped,
}

/// Per-worker accumulation for the streaming path.
#[derive(Default)]
struct ChunkResult {
    partials: Vec<ssfa_logs::AnalysisInput>,
    health: ShardHealth,
    ledger: FaultLedger,
    shards_processed: usize,
    shards_dropped: usize,
    shards_retried: usize,
    quarantined: Vec<ShardQuarantine>,
    max_shard_bytes: usize,
    total_bytes: usize,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_is_deterministic() {
        let a = Pipeline::new().scale(0.001).seed(5).run().unwrap();
        let b = Pipeline::new().scale(0.001).seed(5).run().unwrap();
        assert_eq!(a.input().failures, b.input().failures);
        assert_eq!(a.input().lifetimes.len(), b.input().lifetimes.len());
    }

    #[test]
    fn builder_methods_compose() {
        let p = Pipeline::new()
            .scale(0.001)
            .seed(9)
            .layout(LayoutPolicy::SameShelf)
            .calibration(Calibration::paper().without_episodes())
            .cascade_style(CascadeStyle::Full);
        let study = p.run().unwrap();
        assert!(!study.input().failures.is_empty());
    }
}
