//! The `ssfa` command-line tool.
//!
//! The on-disk corpus workflow — *build once, analyze many times*:
//!
//! ```text
//! ssfa corpus build --out corpus/ --scale 0.01 --seed 2008
//! ssfa corpus verify corpus/ --deep
//! ssfa corpus analyze corpus/ --source mmap --threads 8
//! ```
//!
//! `build` renders a seeded fleet's support logs into a sharded corpus
//! directory (`ssfa::logs::CorpusWriter`), `verify` re-walks every frame
//! against its checksum and the manifest, and `analyze` runs the staged
//! pipeline over the corpus through a disk-backed source
//! ([`ssfa::FileSource`] or [`ssfa::MmapSource`]) — producing a Table 1
//! report bit-identical to the in-memory simulation path at the same
//! `(scale, seed, style)` (proven by `tests/corpus_differential.rs`).
//!
//! Argument parsing is deliberately hand-rolled: the workspace vendors no
//! CLI crate, and three subcommands do not justify one.

use std::path::PathBuf;
use std::process::ExitCode;

use ssfa::daemon::{AgentConfig, ReplayAgent};
use ssfa::logs::{CascadeStyle, CheckpointReader, CorpusWriter, Strictness};
use ssfa::pipeline::Source;
use ssfa::{FileSource, MmapSource, Pipeline};

const USAGE: &str = "\
usage: ssfa <corpus|checkpoint|agent> <subcommand> [options]
       ssfa --version

  ssfa corpus build --out <dir> [--scale <f>] [--seed <n>] [--style full|raid-only]
                    [--threads <n>] [--segment-shards <n>] [--force]
      Render a seeded fleet once into an on-disk sharded corpus.

  ssfa corpus verify <dir> [--deep]
      Re-walk every shard frame against its checksum and the manifest.
      --deep additionally re-parses every payload as corpus text.

  ssfa corpus analyze <dir> [--source file|mmap] [--threads <n>] [--lenient]
                     [--resume <ckpt-dir>] [--epoch-chunks <n>]
      Run the analysis pipeline over a corpus and print the Table 1 report.
      --resume checkpoints fold epochs into <ckpt-dir> and, when the
      directory already holds a checkpoint for this corpus, restarts from
      the last durable epoch instead of refolding absorbed shards.

  ssfa checkpoint ls <dir>
      List a checkpoint store's manifest: payload schema, corpus
      identity, and every durable epoch.

  ssfa checkpoint verify <dir>
      Re-walk every epoch frame against its checksum and manifest entry.

  ssfa agent replay <dir> --addr <ip:port> --tenant <t> [--session <s>]
                    [--lenient] [--max-attempts <n>] [--backoff-base-ms <n>]
                    [--backoff-cap-ms <n>] [--seed <n>]
      Stream a corpus's shard frames to a running ssfad, reconnecting
      with capped seeded backoff and resuming from the session cursor.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Run(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// CLI failures: usage errors print the help text and exit 2; runtime
/// errors print one line and exit 1.
enum CliError {
    Usage(String),
    Run(String),
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn run(args: &[&str]) -> Result<(), CliError> {
    match args {
        ["--version"] => {
            println!("ssfa {}", env!("CARGO_PKG_VERSION"));
            Ok(())
        }
        ["corpus", rest @ ..] => match rest {
            ["build", opts @ ..] => corpus_build(opts),
            ["verify", opts @ ..] => corpus_verify(opts),
            ["analyze", opts @ ..] => corpus_analyze(opts),
            [other, ..] => Err(usage(format!("unknown corpus subcommand `{other}`"))),
            [] => Err(usage("corpus needs a subcommand")),
        },
        ["checkpoint", rest @ ..] => match rest {
            ["ls", opts @ ..] => checkpoint_ls(opts),
            ["verify", opts @ ..] => checkpoint_verify(opts),
            [other, ..] => Err(usage(format!("unknown checkpoint subcommand `{other}`"))),
            [] => Err(usage("checkpoint needs a subcommand")),
        },
        ["agent", rest @ ..] => match rest {
            ["replay", opts @ ..] => agent_replay(opts),
            [other, ..] => Err(usage(format!("unknown agent subcommand `{other}`"))),
            [] => Err(usage("agent needs a subcommand")),
        },
        [other, ..] => Err(usage(format!("unknown command `{other}`"))),
        [] => Err(usage("no command given")),
    }
}

/// A minimal `--flag value` walker over one subcommand's arguments.
struct Opts<'a> {
    args: std::slice::Iter<'a, &'a str>,
}

impl<'a> Opts<'a> {
    fn new(args: &'a [&'a str]) -> Opts<'a> {
        Opts { args: args.iter() }
    }

    fn next(&mut self) -> Option<&'a str> {
        self.args.next().copied()
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, CliError> {
        self.next()
            .ok_or_else(|| usage(format!("{flag} needs a value")))
    }

    fn parse<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, CliError> {
        let raw = self.value(flag)?;
        raw.parse()
            .map_err(|_| usage(format!("invalid value for {flag}: `{raw}`")))
    }
}

fn parse_style(raw: &str) -> Result<CascadeStyle, CliError> {
    match raw {
        "full" => Ok(CascadeStyle::Full),
        "raid-only" => Ok(CascadeStyle::RaidOnly),
        other => Err(usage(format!(
            "invalid value for --style: `{other}` (expected full or raid-only)"
        ))),
    }
}

fn corpus_build(args: &[&str]) -> Result<(), CliError> {
    let mut out: Option<PathBuf> = None;
    let mut scale = 0.01f64;
    let mut seed = 0u64;
    let mut style = CascadeStyle::RaidOnly;
    let mut threads: Option<usize> = None;
    let mut segment_shards: Option<usize> = None;
    let mut force = false;
    let mut opts = Opts::new(args);
    while let Some(flag) = opts.next() {
        match flag {
            "--out" => out = Some(PathBuf::from(opts.value(flag)?)),
            "--scale" => scale = opts.parse(flag)?,
            "--seed" => seed = opts.parse(flag)?,
            "--style" => style = parse_style(opts.value(flag)?)?,
            "--threads" => threads = Some(opts.parse(flag)?),
            "--segment-shards" => segment_shards = Some(opts.parse(flag)?),
            "--force" => force = true,
            other => return Err(usage(format!("unknown build option `{other}`"))),
        }
    }
    let out = out.ok_or_else(|| usage("build needs --out <dir>"))?;
    if !scale.is_finite() || scale <= 0.0 {
        return Err(usage("--scale must be positive"));
    }
    if threads == Some(0) {
        return Err(usage("--threads must be at least 1"));
    }
    if segment_shards == Some(0) {
        return Err(usage("--segment-shards must be at least 1"));
    }

    if force && out.join(ssfa::logs::MANIFEST_NAME).exists() {
        // Only ever removes a directory that demonstrably holds a corpus.
        std::fs::remove_dir_all(&out)
            .map_err(|e| CliError::Run(format!("cannot remove {}: {e}", out.display())))?;
    }

    let mut pipeline = Pipeline::new().scale(scale).seed(seed).cascade_style(style);
    if let Some(threads) = threads {
        pipeline = pipeline.threads(threads);
    }
    let fleet = pipeline.build_fleet();
    let output = pipeline.simulate(&fleet);

    let mut writer = CorpusWriter::new(&out)
        .param("scale", format!("{scale}"))
        .param("source", "ssfa-sim");
    if let Some(n) = segment_shards {
        writer = writer.segment_shards(n);
    }
    let summary = writer
        .write(&fleet, &output, style, seed)
        .map_err(|e| CliError::Run(e.to_string()))?;
    println!("built {}: {summary}", out.display());
    Ok(())
}

fn corpus_verify(args: &[&str]) -> Result<(), CliError> {
    let mut dir: Option<PathBuf> = None;
    let mut deep = false;
    let mut opts = Opts::new(args);
    while let Some(flag) = opts.next() {
        match flag {
            "--deep" => deep = true,
            other if !other.starts_with('-') && dir.is_none() => {
                dir = Some(PathBuf::from(other));
            }
            other => return Err(usage(format!("unknown verify option `{other}`"))),
        }
    }
    let dir = dir.ok_or_else(|| usage("verify needs a corpus directory"))?;
    let reader = ssfa::logs::CorpusReader::open(&dir).map_err(|e| CliError::Run(e.to_string()))?;
    let summary = reader
        .verify(deep)
        .map_err(|e| CliError::Run(e.to_string()))?;
    println!("verified {}: {summary}", dir.display());
    Ok(())
}

fn corpus_analyze(args: &[&str]) -> Result<(), CliError> {
    let mut dir: Option<PathBuf> = None;
    let mut source_kind = "file";
    let mut threads: Option<usize> = None;
    let mut lenient = false;
    let mut resume: Option<PathBuf> = None;
    let mut epoch_chunks: Option<usize> = None;
    let mut opts = Opts::new(args);
    while let Some(flag) = opts.next() {
        match flag {
            "--source" => {
                source_kind = match opts.value(flag)? {
                    kind @ ("file" | "mmap") => kind,
                    other => {
                        return Err(usage(format!(
                            "invalid value for --source: `{other}` (expected file or mmap)"
                        )))
                    }
                }
            }
            "--threads" => threads = Some(opts.parse(flag)?),
            "--lenient" => lenient = true,
            "--resume" => resume = Some(PathBuf::from(opts.value(flag)?)),
            "--epoch-chunks" => epoch_chunks = Some(opts.parse(flag)?),
            other if !other.starts_with('-') && dir.is_none() => {
                dir = Some(PathBuf::from(other));
            }
            other => return Err(usage(format!("unknown analyze option `{other}`"))),
        }
    }
    let dir = dir.ok_or_else(|| usage("analyze needs a corpus directory"))?;
    if threads == Some(0) {
        return Err(usage("--threads must be at least 1"));
    }
    if epoch_chunks == Some(0) {
        return Err(usage("--epoch-chunks must be at least 1"));
    }
    if epoch_chunks.is_some() && resume.is_none() {
        return Err(usage("--epoch-chunks needs --resume <ckpt-dir>"));
    }

    let mut pipeline = Pipeline::new();
    if let Some(threads) = threads {
        pipeline = pipeline.threads(threads);
    }
    if lenient {
        pipeline = pipeline.strictness(Strictness::Lenient);
    }
    if let Some(n) = epoch_chunks {
        pipeline = pipeline.epoch_chunks(n);
    }

    let run = |source: &dyn Source| pipeline.run_source(source);
    let (study, stats, health) = match source_kind {
        "file" => {
            let source = FileSource::open(&dir).map_err(|e| CliError::Run(e.to_string()))?;
            match &resume {
                Some(ckpt) => pipeline.resume_from(&source, ckpt),
                None => run(&source),
            }
        }
        _ => {
            let source = MmapSource::open(&dir).map_err(|e| CliError::Run(e.to_string()))?;
            match &resume {
                Some(ckpt) => pipeline.resume_from(&source, ckpt),
                None => run(&source),
            }
        }
    }
    .map_err(|e| CliError::Run(e.to_string()))?;

    for row in study.table1() {
        println!("{row:?}");
    }
    println!(
        "{} shards in {} chunks, peak resident shard {} bytes of {} corpus bytes",
        stats.shards, stats.chunks, stats.max_shard_bytes, stats.total_bytes
    );
    println!("{health}");
    Ok(())
}

/// Shared positional parsing for both `checkpoint` subcommands: one
/// directory, no flags.
fn checkpoint_dir(args: &[&str], what: &str) -> Result<PathBuf, CliError> {
    let mut dir: Option<PathBuf> = None;
    let mut opts = Opts::new(args);
    while let Some(flag) = opts.next() {
        match flag {
            other if !other.starts_with('-') && dir.is_none() => {
                dir = Some(PathBuf::from(other));
            }
            other => return Err(usage(format!("unknown {what} option `{other}`"))),
        }
    }
    dir.ok_or_else(|| usage(format!("{what} needs a checkpoint directory")))
}

fn checkpoint_ls(args: &[&str]) -> Result<(), CliError> {
    let dir = checkpoint_dir(args, "checkpoint ls")?;
    let reader = CheckpointReader::open(&dir).map_err(|e| CliError::Run(e.to_string()))?;
    let manifest = reader.manifest();
    println!(
        "checkpoint {}: payload v{}, corpus seed {} style {:?}, {} epoch(s)",
        dir.display(),
        manifest.payload_version,
        manifest.corpus_seed,
        manifest.corpus_style,
        manifest.epochs.len()
    );
    for (index, epoch) in manifest.epochs.iter().enumerate() {
        println!(
            "  epoch {index}: shards {}..{} in {} chunk(s), {} snapshot bytes, checksum {:016x}",
            epoch.shard_start, epoch.shard_end, epoch.chunks, epoch.payload_len, epoch.checksum
        );
    }
    Ok(())
}

fn checkpoint_verify(args: &[&str]) -> Result<(), CliError> {
    let dir = checkpoint_dir(args, "checkpoint verify")?;
    let reader = CheckpointReader::open(&dir).map_err(|e| CliError::Run(e.to_string()))?;
    let bytes = reader.verify().map_err(|e| CliError::Run(e.to_string()))?;
    println!(
        "verified {}: {} epoch(s), {bytes} snapshot bytes",
        dir.display(),
        reader.epoch_count()
    );
    Ok(())
}

fn agent_replay(args: &[&str]) -> Result<(), CliError> {
    let mut dir: Option<PathBuf> = None;
    let mut addr: Option<String> = None;
    let mut config = AgentConfig::clean("", "replay");
    let mut opts = Opts::new(args);
    while let Some(flag) = opts.next() {
        match flag {
            "--addr" => addr = Some(opts.value(flag)?.to_owned()),
            "--tenant" => config.tenant = opts.value(flag)?.to_owned(),
            "--session" => config.session = opts.value(flag)?.to_owned(),
            "--lenient" => config.strictness = Strictness::Lenient,
            "--max-attempts" => config.max_attempts = opts.parse(flag)?,
            "--backoff-base-ms" => config.backoff.base_ms = opts.parse(flag)?,
            "--backoff-cap-ms" => config.backoff.cap_ms = opts.parse(flag)?,
            "--seed" => {
                let seed: u64 = opts.parse(flag)?;
                config.backoff.seed = seed;
                config.fault_seed = seed;
            }
            other if !other.starts_with('-') && dir.is_none() => {
                dir = Some(PathBuf::from(other));
            }
            other => return Err(usage(format!("unknown replay option `{other}`"))),
        }
    }
    let dir = dir.ok_or_else(|| usage("replay needs a corpus directory"))?;
    let addr = addr.ok_or_else(|| usage("replay needs --addr <ip:port>"))?;
    if config.tenant.is_empty() {
        return Err(usage("replay needs --tenant <t>"));
    }
    if config.max_attempts == 0 {
        return Err(usage("--max-attempts must be at least 1"));
    }
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|_| usage(format!("invalid --addr: `{addr}`")))?;

    let agent = ReplayAgent::from_corpus(config, &dir).map_err(CliError::Run)?;
    let total = agent.stream_len();
    let report = agent.run(addr).map_err(|e| CliError::Run(e.to_string()))?;
    match &report.quarantined {
        Some(reason) => println!(
            "tenant quarantined after {}/{total} frames: {reason}",
            report.final_cursor
        ),
        None => println!(
            "replayed {total} frames in {} connection(s)",
            report.connections
        ),
    }
    Ok(())
}
