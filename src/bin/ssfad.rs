//! The `ssfad` daemon binary: serve the ingest bus, query it.
//!
//! ```text
//! ssfad serve [--addr 127.0.0.1:7070] [--heartbeat-ms 1000] ...
//! ssfad status <addr> [--tenant <t>]
//! ssfad health <addr> --tenant <t>
//! ```
//!
//! `serve` runs the daemon in the foreground until **stdin closes**, then
//! drains gracefully and prints every tenant's final summary — a shutdown
//! contract that works identically under a terminal (Ctrl-D), a pipe
//! (`echo | ssfad serve`), and a supervisor closing the handle. `status`
//! and `health` are thin protocol clients over one TCP connection.

use std::io::Read;
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use ssfa::daemon::bus::BusConfig;
use ssfa::daemon::{expect_message, write_message, Message, MessageKind, Server, ServerConfig};

const USAGE: &str = "\
usage: ssfad <serve|status|health> [options]
       ssfad --version

  ssfad serve [--addr <ip:port>] [--heartbeat-ms <n>] [--idle-ticks <n>]
              [--queue-capacity <n>] [--reorder-window <n>] [--wal <dir>]
      Run the analysis daemon in the foreground. Agents connect with
      `ssfa agent replay`. Closing stdin drains the bus gracefully and
      prints every tenant's final summary. With --wal, every admitted
      frame is write-ahead-logged to <dir> before it is acknowledged,
      and a restarted daemon replays the log so sessions resume exactly
      where their cursors left off.

  ssfad status <addr> [--tenant <t>]
      Print a tenant's live run summary (JSON), or server info when no
      tenant is given.

  ssfad health <addr> --tenant <t>
      Print a tenant's live RunHealth audit.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Run(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// CLI failures: usage errors print the help text and exit 2; runtime
/// errors print one line and exit 1.
enum CliError {
    Usage(String),
    Run(String),
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn run(args: &[&str]) -> Result<(), CliError> {
    match args {
        ["--version"] => {
            println!("ssfad {}", env!("CARGO_PKG_VERSION"));
            Ok(())
        }
        ["serve", opts @ ..] => serve(opts),
        ["status", opts @ ..] => query(opts, MessageKind::Status, false),
        ["health", opts @ ..] => query(opts, MessageKind::Health, true),
        [other, ..] => Err(usage(format!("unknown command `{other}`"))),
        [] => Err(usage("no command given")),
    }
}

/// A minimal `--flag value` walker over one subcommand's arguments.
struct Opts<'a> {
    args: std::slice::Iter<'a, &'a str>,
}

impl<'a> Opts<'a> {
    fn new(args: &'a [&'a str]) -> Opts<'a> {
        Opts { args: args.iter() }
    }

    fn next(&mut self) -> Option<&'a str> {
        self.args.next().copied()
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, CliError> {
        self.next()
            .ok_or_else(|| usage(format!("{flag} needs a value")))
    }

    fn parse<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, CliError> {
        let raw = self.value(flag)?;
        raw.parse()
            .map_err(|_| usage(format!("invalid value for {flag}: `{raw}`")))
    }
}

fn serve(args: &[&str]) -> Result<(), CliError> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7070".to_owned(),
        ..ServerConfig::default()
    };
    let mut bus = BusConfig::default();
    let mut opts = Opts::new(args);
    while let Some(flag) = opts.next() {
        match flag {
            "--addr" => config.addr = opts.value(flag)?.to_owned(),
            "--heartbeat-ms" => config.heartbeat_ms = opts.parse(flag)?,
            "--idle-ticks" => config.idle_ticks_limit = opts.parse(flag)?,
            "--queue-capacity" => bus.queue_capacity = opts.parse(flag)?,
            "--reorder-window" => bus.reorder_window = opts.parse(flag)?,
            "--wal" => config.wal = Some(std::path::PathBuf::from(opts.value(flag)?)),
            other => return Err(usage(format!("unknown serve option `{other}`"))),
        }
    }
    if config.heartbeat_ms == 0 {
        return Err(usage("--heartbeat-ms must be at least 1"));
    }
    if config.idle_ticks_limit == 0 {
        return Err(usage("--idle-ticks must be at least 1"));
    }
    if bus.queue_capacity == 0 {
        return Err(usage("--queue-capacity must be at least 1"));
    }
    config.bus = bus;

    let server = Server::spawn(config).map_err(|e| CliError::Run(format!("bind: {e}")))?;
    println!("ssfad listening on {}", server.addr());
    println!("close stdin to drain and exit");

    // Block until stdin closes, then drain.
    let mut sink = Vec::new();
    let _ = std::io::stdin().lock().read_to_end(&mut sink);

    let report = server.finish();
    println!(
        "drained after {} ms: {} tenant(s)",
        report.uptime_ms,
        report.tenants.len()
    );
    for tenant in &report.tenants {
        println!("--- tenant {} ---", tenant.tenant);
        match &tenant.quarantined {
            Some(reason) => println!("QUARANTINED: {reason}"),
            None => print!("{}", String::from_utf8_lossy(&tenant.summary)),
        }
        println!("{}", tenant.health);
    }
    Ok(())
}

fn query(args: &[&str], kind: MessageKind, tenant_required: bool) -> Result<(), CliError> {
    let mut addr: Option<&str> = None;
    let mut tenant = "";
    let mut opts = Opts::new(args);
    while let Some(flag) = opts.next() {
        match flag {
            "--tenant" => tenant = opts.value(flag)?,
            other if !other.starts_with('-') && addr.is_none() => addr = Some(other),
            other => return Err(usage(format!("unknown option `{other}`"))),
        }
    }
    let addr = addr.ok_or_else(|| usage("need a server address"))?;
    if tenant_required && tenant.is_empty() {
        return Err(usage("health needs --tenant <t>"));
    }

    let mut stream =
        TcpStream::connect(addr).map_err(|e| CliError::Run(format!("connect {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| CliError::Run(e.to_string()))?;
    let body = if tenant.is_empty() {
        Vec::new()
    } else {
        format!("tenant={tenant}\n").into_bytes()
    };
    write_message(&mut stream, &Message { kind, seq: 0, body })
        .map_err(|e| CliError::Run(e.to_string()))?;
    let reply =
        expect_message(&mut stream, MessageKind::Ok).map_err(|e| CliError::Run(e.to_string()))?;
    print!("{}", String::from_utf8_lossy(&reply.body));
    Ok(())
}
