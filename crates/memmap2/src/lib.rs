//! Offline stand-in for the `memmap2` crate: exactly the API subset this
//! workspace uses — a **read-only**, private, whole-file memory map that
//! derefs to `&[u8]` — behind a safe constructor.
//!
//! The real `memmap2::Mmap::map` is `unsafe` because a mapping's contents
//! can change under you if the underlying file is mutated while mapped
//! (turning safe `&[u8]` reads into undefined behavior). This stand-in
//! keeps the constructor safe and narrows the contract instead:
//!
//! 1. Mappings are always `PROT_READ` + `MAP_PRIVATE`: nothing written
//!    through the map, no sharing of dirty pages.
//! 2. The caller must not mutate the file while the map is alive. The
//!    corpus subsystem upholds this structurally — corpora are
//!    write-once (the writer refuses to touch an existing corpus), and
//!    every mapped byte is checksum-verified before use, so even an
//!    out-of-contract mutation is detected rather than silently read.
//!
//! On non-unix targets (where the raw `mmap` syscall ABI below is not
//! portable) the same API is backed by an ordinary buffered read into an
//! owned buffer — semantically identical, just not zero-copy.

#![warn(missing_docs)]

use std::fs::File;
use std::io;
use std::ops::Deref;

/// A read-only memory map of an entire file (unix), or an owned copy of
/// its contents (elsewhere). Deref to `&[u8]` for zero-copy slicing.
pub struct Mmap {
    inner: Inner,
}

enum Inner {
    #[cfg(unix)]
    Mapped {
        ptr: *mut core::ffi::c_void,
        len: usize,
    },
    /// Zero-length files (nothing to map) and non-unix targets.
    Owned(Vec<u8>),
}

// SAFETY: the unix variant's mapping is PROT_READ + MAP_PRIVATE and this
// type exposes no mutation, so moving it to another thread is as safe as
// moving a `Vec<u8>`.
unsafe impl Send for Mmap {}
// SAFETY: same invariant as `Send` — the map is read-only and has no
// interior mutability, so concurrent `&[u8]` reads cannot race.
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    /// Maps `len` bytes (> 0) of `file` read-only and private.
    pub fn map_read_only(file: &File, len: usize) -> io::Result<*mut core::ffi::c_void> {
        // SAFETY: a fresh PROT_READ/MAP_PRIVATE map of a valid open fd,
        // addr = null (kernel picks placement), non-zero length; the
        // pointer is only read through and unmapped exactly once in Drop.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(ptr)
    }

    /// Unmaps a region obtained from [`map_read_only`].
    pub fn unmap(ptr: *mut core::ffi::c_void, len: usize) {
        // SAFETY: (ptr, len) came from a successful mmap and is unmapped
        // exactly once; munmap failure here is unrecoverable but harmless
        // to ignore (the address space leaks until process exit).
        unsafe {
            let _ = munmap(ptr, len);
        }
    }
}

impl Mmap {
    /// Maps the whole of `file` read-only.
    ///
    /// Contract (see the crate docs): do not mutate the file while the
    /// returned map is alive.
    ///
    /// # Errors
    ///
    /// Propagates metadata or `mmap(2)` failures.
    pub fn map_read_only(file: &File) -> io::Result<Mmap> {
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        Mmap::map_impl(file, len)
    }

    #[cfg(unix)]
    fn map_impl(file: &File, len: usize) -> io::Result<Mmap> {
        if len == 0 {
            // mmap(2) rejects zero-length maps; an empty buffer is the
            // same observable object.
            return Ok(Mmap {
                inner: Inner::Owned(Vec::new()),
            });
        }
        let ptr = sys::map_read_only(file, len)?;
        Ok(Mmap {
            inner: Inner::Mapped { ptr, len },
        })
    }

    #[cfg(not(unix))]
    fn map_impl(file: &File, len: usize) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        let mut file = file.try_clone()?;
        file.read_to_end(&mut buf)?;
        Ok(Mmap {
            inner: Inner::Owned(buf),
        })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => {
                // SAFETY: the region is a live PROT_READ mapping of `len`
                // bytes, valid until Drop, and never written through.
                unsafe { std::slice::from_raw_parts(*ptr as *const u8, *len) }
            }
            Inner::Owned(buf) => buf,
        }
    }

    /// Number of mapped bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => sys::unmap(*ptr, *len),
            Inner::Owned(_) => {}
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let zero_copy = !matches!(self.inner, Inner::Owned(_));
        f.debug_struct("Mmap")
            .field("len", &self.len())
            .field("zero_copy", &zero_copy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(tag: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("memmap2-test-{}-{tag}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        f.sync_all().unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_file("contents", b"hello mapped world");
        let map = Mmap::map_read_only(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&*map, b"hello mapped world");
        assert_eq!(map.len(), 18);
        assert!(!map.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_length_file_maps_to_empty_slice() {
        let path = temp_file("empty", b"");
        let map = Mmap::map_read_only(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn map_outlives_the_file_handle_and_a_deleted_path() {
        let path = temp_file("unlinked", b"still readable after unlink");
        let map = {
            let file = File::open(&path).unwrap();
            Mmap::map_read_only(&file).unwrap()
        };
        let _ = std::fs::remove_file(&path);
        assert_eq!(&*map, b"still readable after unlink");
    }

    #[test]
    fn maps_are_sharable_across_threads() {
        let path = temp_file("threads", b"abcdefgh");
        let map = std::sync::Arc::new(Mmap::map_read_only(&File::open(&path).unwrap()).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let map = std::sync::Arc::clone(&map);
                std::thread::spawn(move || map[0] + map[7])
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), b'a' + b'h');
        }
        let _ = std::fs::remove_file(&path);
    }
}
