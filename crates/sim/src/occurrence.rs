//! Ground-truth simulation output: failure occurrences and disk lifetimes.

use ssfa_model::{
    DeviceAddr, DiskInstanceId, DiskModelId, FailureRecord, FailureType, LoopId, RaidGroupId,
    SimTime, SlotAddr, SystemId,
};

/// What generated a failure occurrence (kept in ground truth so tests can
/// verify mechanism-level behaviour; invisible to the analysis pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureSource {
    /// Independent background hazard.
    Background,
    /// A shelf-scope episode (cooling / backplane / driver / perf glitch).
    ShelfEpisode,
    /// A loop-scope FC-network episode.
    LoopEpisode,
}

/// One ground-truth failure occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureOccurrence {
    /// When the underlying fault fired.
    pub occurred_at: SimTime,
    /// When the hourly scrub detected it (`occurred_at` + lag).
    pub detected_at: SimTime,
    /// Which failure type it is.
    pub failure_type: FailureType,
    /// What process generated it.
    pub source: FailureSource,
    /// Whether multipath failover masked it from the RAID layer (masked
    /// occurrences are logged at the FC layer but are *not* storage
    /// subsystem failures).
    pub masked: bool,
    /// The affected disk instance.
    pub disk: DiskInstanceId,
    /// The affected disk's slot.
    pub slot: SlotAddr,
    /// Owning system.
    pub system: SystemId,
    /// RAID group of the slot.
    pub raid_group: RaidGroupId,
    /// FC loop of the shelf.
    pub fc_loop: LoopId,
    /// Adapter-relative device address for log rendering.
    pub device: DeviceAddr,
}

impl FailureOccurrence {
    /// Converts an *exposed* (unmasked) occurrence into the analysis-side
    /// record type. Returns `None` for masked occurrences.
    pub fn to_record(&self) -> Option<FailureRecord> {
        if self.masked {
            return None;
        }
        Some(FailureRecord {
            detected_at: self.detected_at,
            failure_type: self.failure_type,
            disk: self.disk,
            system: self.system,
            shelf: self.slot.shelf,
            raid_group: self.raid_group,
            fc_loop: self.fc_loop,
            device: self.device,
        })
    }
}

/// Why a disk instance left service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RemovalReason {
    /// The disk failed and was replaced.
    Failed,
    /// Still in service at the end of the study window.
    StudyEnded,
}

/// Lifetime record of one disk instance (initial install or replacement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRecord {
    /// The disk instance.
    pub id: DiskInstanceId,
    /// Product model.
    pub model: DiskModelId,
    /// Slot occupied.
    pub slot: SlotAddr,
    /// Owning system.
    pub system: SystemId,
    /// RAID group of the slot.
    pub raid_group: RaidGroupId,
    /// When the instance entered service.
    pub installed_at: SimTime,
    /// When it left service (replacement or study end).
    pub removed_at: SimTime,
    /// Why it left service.
    pub removal_reason: RemovalReason,
}

impl DiskRecord {
    /// Time in service, in years — the disk's contribution to the
    /// fleet's exposure (denominator of every AFR).
    pub fn service_years(&self) -> f64 {
        self.removed_at.duration_since(self.installed_at).as_years()
    }
}

/// Complete output of one simulation run.
#[derive(Debug, Clone)]
pub struct SimOutput {
    occurrences: Vec<FailureOccurrence>,
    disks: Vec<DiskRecord>,
}

impl SimOutput {
    /// Assembles output from raw parts, sorting occurrences
    /// chronologically by detection time.
    pub fn new(mut occurrences: Vec<FailureOccurrence>, disks: Vec<DiskRecord>) -> Self {
        occurrences.sort_by(|a, b| a.detected_at.cmp(&b.detected_at).then(a.disk.cmp(&b.disk)));
        SimOutput { occurrences, disks }
    }

    /// All ground-truth occurrences (masked and exposed), in detection
    /// order.
    pub fn occurrences(&self) -> &[FailureOccurrence] {
        &self.occurrences
    }

    /// All disk lifetime records.
    pub fn disks(&self) -> &[DiskRecord] {
        &self.disks
    }

    /// The exposed storage-subsystem failures, as analysis-side records.
    pub fn exposed_records(&self) -> Vec<FailureRecord> {
        self.occurrences
            .iter()
            .filter_map(FailureOccurrence::to_record)
            .collect()
    }

    /// Total fleet exposure in disk-years.
    pub fn total_disk_years(&self) -> f64 {
        self.disks.iter().map(DiskRecord::service_years).sum()
    }

    /// Number of exposed failures of each type.
    pub fn exposed_counts(&self) -> ssfa_model::FailureCounts {
        self.occurrences
            .iter()
            .filter(|o| !o.masked)
            .map(|o| o.failure_type)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssfa_model::{ShelfId, SimDuration};

    fn occurrence(t: u64, masked: bool) -> FailureOccurrence {
        FailureOccurrence {
            occurred_at: SimTime::from_secs(t),
            detected_at: SimTime::from_secs(t + 100),
            failure_type: FailureType::PhysicalInterconnect,
            source: FailureSource::Background,
            masked,
            disk: DiskInstanceId(t),
            slot: SlotAddr {
                shelf: ShelfId(0),
                bay: 0,
            },
            system: SystemId(0),
            raid_group: RaidGroupId(0),
            fc_loop: LoopId(0),
            device: DeviceAddr::new(8, 24),
        }
    }

    #[test]
    fn output_sorts_by_detection_time() {
        let out = SimOutput::new(vec![occurrence(50, false), occurrence(10, false)], vec![]);
        assert!(out.occurrences()[0].detected_at < out.occurrences()[1].detected_at);
    }

    #[test]
    fn masked_occurrences_produce_no_record() {
        assert!(occurrence(5, true).to_record().is_none());
        let rec = occurrence(5, false).to_record().unwrap();
        assert_eq!(rec.detected_at, SimTime::from_secs(105));
        assert_eq!(rec.failure_type, FailureType::PhysicalInterconnect);
    }

    #[test]
    fn exposed_records_filter_masked() {
        let out = SimOutput::new(
            vec![
                occurrence(1, true),
                occurrence(2, false),
                occurrence(3, true),
            ],
            vec![],
        );
        assert_eq!(out.exposed_records().len(), 1);
        assert_eq!(out.exposed_counts().total(), 1);
        assert_eq!(out.occurrences().len(), 3);
    }

    #[test]
    fn disk_record_service_years() {
        let rec = DiskRecord {
            id: DiskInstanceId(0),
            model: DiskModelId::new('A', 1),
            slot: SlotAddr {
                shelf: ShelfId(0),
                bay: 0,
            },
            system: SystemId(0),
            raid_group: RaidGroupId(0),
            installed_at: SimTime::ZERO,
            removed_at: SimTime::ZERO + SimDuration::from_years(2.0),
            removal_reason: RemovalReason::StudyEnded,
        };
        assert!((rec.service_years() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn total_disk_years_sums_lifetimes() {
        let mk = |years: f64| DiskRecord {
            id: DiskInstanceId(0),
            model: DiskModelId::new('A', 1),
            slot: SlotAddr {
                shelf: ShelfId(0),
                bay: 0,
            },
            system: SystemId(0),
            raid_group: RaidGroupId(0),
            installed_at: SimTime::ZERO,
            removed_at: SimTime::ZERO + SimDuration::from_years(years),
            removal_reason: RemovalReason::StudyEnded,
        };
        let out = SimOutput::new(vec![], vec![mk(1.0), mk(0.5), mk(2.0)]);
        assert!((out.total_disk_years() - 3.5).abs() < 1e-9);
    }
}
