//! Event-driven storage-fleet failure simulator.
//!
//! The FAST'08 study analyzed 44 months of support logs from ~39,000
//! deployed storage systems. That corpus is proprietary, so this crate
//! synthesizes a statistically-faithful substitute: given a
//! [`ssfa_model::Fleet`], it drives per-component failure processes over the
//! study window and emits a ground-truth stream of failure occurrences plus
//! per-disk lifetime records, from which the `ssfa-logs` crate renders
//! AutoSupport-style text logs.
//!
//! # Failure phenomenology
//!
//! Two processes generate failures, mirroring the causes the paper
//! identifies (§5.2.3):
//!
//! 1. **Background hazards** — independent, exponentially-distributed
//!    per-disk processes, one per failure type, calibrated per disk model /
//!    shelf model / system class.
//! 2. **Shock episodes** — compound Poisson processes at *shelf* scope
//!    (cooling degradation, backplane/HBA transients, driver-bug windows)
//!    and at *FC-loop* scope (network transients). Each episode produces a
//!    batch of same-type failures spread over the episode's duration across
//!    the disks sharing the component. Episodes are what make failures
//!    bursty and correlated (paper Findings 8–11); disable them via
//!    [`Calibration::without_episodes`] to recover independence.
//!
//! Mid-range/high-end subsystems configured with dual paths mask a fraction
//! of physical-interconnect failures (failover recovers the I/O path before
//! the RAID layer notices — paper §4.3). Failures are *detected* up to an
//! hour after they occur (hourly verification scrubs, §2.5), and failed
//! disks are replaced after a repair delay, starting a fresh disk lifetime
//! (Table 1 counts disks "ever installed").
//!
//! # Example
//!
//! ```
//! use ssfa_model::{Fleet, FleetConfig};
//! use ssfa_sim::{Calibration, Simulator};
//!
//! let fleet = Fleet::build(&FleetConfig::paper().scaled(0.002), 1);
//! let output = Simulator::new(Calibration::paper()).run(&fleet, 1);
//! assert!(output.occurrences().len() > 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod background;
pub mod calibration;
pub mod engine;
pub mod episodes;
pub mod occurrence;
pub mod rng;

pub use calibration::{Calibration, ClassRates, EpisodeParams};
pub use engine::Simulator;
pub use occurrence::{DiskRecord, FailureOccurrence, RemovalReason, SimOutput};
