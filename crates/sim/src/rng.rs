//! Deterministic per-entity random streams.
//!
//! Every system (and each process within it) gets its own RNG derived from
//! the run seed and stable entity indices, so simulation results are
//! reproducible for a given seed, independent of thread scheduling, and
//! stable under reordering of the per-system work.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — a strong 64-bit mixing function used to derive
/// independent seeds from (run seed, entity index) pairs.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a parent seed and a stream discriminator.
pub fn derive(seed: u64, stream: u64) -> u64 {
    mix(seed ^ mix(stream))
}

/// An RNG for a named stream of an entity, e.g.
/// `stream_rng(seed, SYS_STREAM, system_index)`.
pub fn stream_rng(seed: u64, stream: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive(derive(seed, stream), index))
}

/// Stream discriminator: per-system background failure processes.
pub const STREAM_BACKGROUND: u64 = 0xB06;
/// Stream discriminator: per-system episode processes.
pub const STREAM_EPISODES: u64 = 0xE91;
/// Stream discriminator: per-system detection/masking noise.
pub const STREAM_DETECTION: u64 = 0xDE7;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn mix_is_deterministic_and_spreads_bits() {
        assert_eq!(mix(1), mix(1));
        assert_ne!(mix(1), mix(2));
        // Nearby inputs produce very different outputs.
        let d = (mix(100) ^ mix(101)).count_ones();
        assert!(d > 16, "only {d} differing bits");
    }

    #[test]
    fn derived_streams_are_independent() {
        let a = derive(42, STREAM_BACKGROUND);
        let b = derive(42, STREAM_EPISODES);
        assert_ne!(a, b);
        // Same system, different streams -> different RNG output.
        let x: f64 = stream_rng(42, STREAM_BACKGROUND, 7).gen();
        let y: f64 = stream_rng(42, STREAM_EPISODES, 7).gen();
        assert_ne!(x, y);
    }

    #[test]
    fn per_entity_rngs_reproduce() {
        let a: f64 = stream_rng(9, STREAM_BACKGROUND, 3).gen();
        let b: f64 = stream_rng(9, STREAM_BACKGROUND, 3).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn different_run_seeds_differ() {
        let a: f64 = stream_rng(1, STREAM_BACKGROUND, 3).gen();
        let b: f64 = stream_rng(2, STREAM_BACKGROUND, 3).gen();
        assert_ne!(a, b);
    }
}
