//! Hazard calibration: the knobs that make the synthetic fleet reproduce
//! the paper's observed failure behaviour.
//!
//! Rates are expressed in expected *exposed* failures per disk-year (AFR as
//! a fraction) and are split between the independent background process and
//! the correlated episode processes. Targets come from the paper's
//! Figures 4–7 (see DESIGN.md §4 for the full list).

use ssfa_model::{FailureType, SystemClass};

/// Per-class base rates for the three non-disk failure types, in exposed
/// failures per disk-year for a *single-path* subsystem with neutral
/// (factor 1.0) disk and shelf models. Disk-failure rates come from the
/// disk catalog instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassRates {
    /// Physical-interconnect failures per disk-year.
    pub interconnect: f64,
    /// Protocol failures per disk-year.
    pub protocol: f64,
    /// Performance failures per disk-year.
    pub performance: f64,
}

/// Parameters of one compound-Poisson episode process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeParams {
    /// Fraction of the type's total rate delivered through this process
    /// (the rest stays in the background process or other episode scopes).
    pub rate_share: f64,
    /// Mean number of *extra* failures per episode beyond the first
    /// (batch size is `1 + Poisson(extra_mean)`).
    pub extra_mean: f64,
    /// Median episode duration in hours.
    pub duration_median_hours: f64,
    /// Multiplicative spread of the duration log-normal (σ = ln spread).
    pub duration_spread: f64,
}

impl EpisodeParams {
    /// Expected batch size per episode.
    pub fn mean_batch(&self) -> f64 {
        1.0 + self.extra_mean
    }

    /// A zeroed process (used by the independence ablation).
    pub fn disabled() -> Self {
        EpisodeParams {
            rate_share: 0.0,
            extra_mean: 0.0,
            duration_median_hours: 1.0,
            duration_spread: 2.0,
        }
    }
}

/// Complete calibration of the failure processes.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Near-line class base rates.
    pub nearline: ClassRates,
    /// Low-end class base rates.
    pub low_end: ClassRates,
    /// Mid-range class base rates.
    pub mid_range: ClassRates,
    /// High-end class base rates.
    pub high_end: ClassRates,

    /// Shelf-scope cooling/environmental episodes (produce disk failures).
    pub shelf_cooling: EpisodeParams,
    /// Shelf-scope backplane/HBA transient episodes (produce physical
    /// interconnect failures).
    pub shelf_backplane: EpisodeParams,
    /// Shelf-scope driver-bug windows (produce protocol failures).
    pub shelf_driver: EpisodeParams,
    /// Shelf-scope partial-failure glitches (produce performance failures).
    pub shelf_perf: EpisodeParams,
    /// Loop-scope FC-network transients (produce physical interconnect
    /// failures across all shelves on the loop).
    pub loop_network: EpisodeParams,

    /// Probability that a dual-path subsystem masks a physical-interconnect
    /// failure (failover succeeds before the RAID layer notices). The paper
    /// observes a 50–60% reduction in exposed interconnect failures.
    pub multipath_mask_probability: f64,
    /// Period of the proactive data-verification scrub; detection lag is
    /// uniform in `[0, scrub_interval_hours)` (paper §2.5: "usually shorter
    /// than an hour").
    pub scrub_interval_hours: f64,
    /// Mean days between a disk failure and its replacement coming online.
    pub replacement_delay_days: f64,
}

impl Calibration {
    /// The calibration used for all paper reproductions. See DESIGN.md for
    /// the mapping from each value to the figure it is anchored on.
    pub fn paper() -> Self {
        Calibration {
            // Exposed single-path rates per disk-year (Figures 4, 6, 7):
            // interconnect is dominated by low-end systems (embedded heads,
            // cheapest cabling), mid/high-end single-path sit at the
            // Figure 7 values (1.82% / 2.13%), near-line lowest.
            nearline: ClassRates {
                interconnect: 0.0100,
                protocol: 0.0035,
                performance: 0.0021,
            },
            low_end: ClassRates {
                interconnect: 0.0260,
                protocol: 0.0042,
                performance: 0.0031,
            },
            mid_range: ClassRates {
                interconnect: 0.0182,
                protocol: 0.0030,
                performance: 0.0027,
            },
            high_end: ClassRates {
                interconnect: 0.0213,
                protocol: 0.0024,
                performance: 0.0004,
            },

            // Episode processes. Shares and batch sizes are tuned so that
            // (a) interconnect failures are the most bursty, disk failures
            // the least (Figure 9), and (b) empirical P(2) exceeds the
            // independent-model P(2) by ~x6 for disk and x10-25 for the
            // other types (Figure 10).
            shelf_cooling: EpisodeParams {
                rate_share: 0.28,
                extra_mean: 1.0,
                duration_median_hours: 48.0,
                duration_spread: 3.0,
            },
            shelf_backplane: EpisodeParams {
                rate_share: 0.30,
                extra_mean: 1.8,
                duration_median_hours: 2.5,
                duration_spread: 3.0,
            },
            shelf_driver: EpisodeParams {
                rate_share: 0.50,
                extra_mean: 1.3,
                duration_median_hours: 4.0,
                duration_spread: 3.0,
            },
            shelf_perf: EpisodeParams {
                rate_share: 0.45,
                extra_mean: 1.0,
                duration_median_hours: 3.0,
                duration_spread: 3.0,
            },
            loop_network: EpisodeParams {
                rate_share: 0.30,
                extra_mean: 3.5,
                duration_median_hours: 2.0,
                duration_spread: 3.0,
            },

            multipath_mask_probability: 0.55,
            scrub_interval_hours: 1.0,
            replacement_delay_days: 3.0,
        }
    }

    /// Base rates for a class.
    pub fn class_rates(&self, class: SystemClass) -> ClassRates {
        match class {
            SystemClass::NearLine => self.nearline,
            SystemClass::LowEnd => self.low_end,
            SystemClass::MidRange => self.mid_range,
            SystemClass::HighEnd => self.high_end,
        }
    }

    /// The per-type total rate for a class (disk failures are per-model,
    /// so [`FailureType::Disk`] is not answerable here).
    ///
    /// # Panics
    ///
    /// Panics when asked for [`FailureType::Disk`].
    pub fn type_rate(&self, class: SystemClass, ty: FailureType) -> f64 {
        let rates = self.class_rates(class);
        match ty {
            FailureType::Disk => panic!("disk rates come from the disk catalog"),
            FailureType::PhysicalInterconnect => rates.interconnect,
            FailureType::Protocol => rates.protocol,
            FailureType::Performance => rates.performance,
        }
    }

    /// Background (independent) share of a type's rate — whatever the
    /// episode processes don't claim.
    pub fn background_share(&self, ty: FailureType) -> f64 {
        let episodic: f64 = match ty {
            FailureType::Disk => self.shelf_cooling.rate_share,
            FailureType::PhysicalInterconnect => {
                self.shelf_backplane.rate_share + self.loop_network.rate_share
            }
            FailureType::Protocol => self.shelf_driver.rate_share,
            FailureType::Performance => self.shelf_perf.rate_share,
        };
        (1.0 - episodic).max(0.0)
    }

    /// Ablation: disable every episode process, folding their rate share
    /// back into the background so totals are unchanged but failures
    /// become independent.
    pub fn without_episodes(mut self) -> Self {
        self.shelf_cooling = EpisodeParams::disabled();
        self.shelf_backplane = EpisodeParams::disabled();
        self.shelf_driver = EpisodeParams::disabled();
        self.shelf_perf = EpisodeParams::disabled();
        self.loop_network = EpisodeParams::disabled();
        self
    }

    /// Ablation: set the multipath masking probability (0 = dual paths
    /// give no protection, 1 = dual paths mask every interconnect failure).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_mask_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "mask probability must be in [0,1]"
        );
        self.multipath_mask_probability = p;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (class, rates) in [
            ("nearline", self.nearline),
            ("low_end", self.low_end),
            ("mid_range", self.mid_range),
            ("high_end", self.high_end),
        ] {
            for (name, v) in [
                ("interconnect", rates.interconnect),
                ("protocol", rates.protocol),
                ("performance", rates.performance),
            ] {
                if !(v.is_finite() && (0.0..1.0).contains(&v)) {
                    return Err(format!("{class}.{name} rate {v} outside [0,1)"));
                }
            }
        }
        for (name, ep) in [
            ("shelf_cooling", self.shelf_cooling),
            ("shelf_backplane", self.shelf_backplane),
            ("shelf_driver", self.shelf_driver),
            ("shelf_perf", self.shelf_perf),
            ("loop_network", self.loop_network),
        ] {
            if !(0.0..=1.0).contains(&ep.rate_share) {
                return Err(format!("{name}.rate_share outside [0,1]"));
            }
            if ep.extra_mean < 0.0 || !ep.extra_mean.is_finite() {
                return Err(format!("{name}.extra_mean negative"));
            }
            if ep.duration_median_hours <= 0.0 || ep.duration_spread <= 1.0 {
                return Err(format!("{name}: bad duration parameters"));
            }
        }
        for ty in FailureType::ALL {
            let episodic: f64 = match ty {
                FailureType::Disk => self.shelf_cooling.rate_share,
                FailureType::PhysicalInterconnect => {
                    self.shelf_backplane.rate_share + self.loop_network.rate_share
                }
                FailureType::Protocol => self.shelf_driver.rate_share,
                FailureType::Performance => self.shelf_perf.rate_share,
            };
            if episodic > 1.0 {
                return Err(format!("episode shares for {ty} exceed 1.0"));
            }
        }
        if !(0.0..=1.0).contains(&self.multipath_mask_probability) {
            return Err("multipath_mask_probability outside [0,1]".into());
        }
        if self.scrub_interval_hours <= 0.0 || self.replacement_delay_days <= 0.0 {
            return Err("scrub interval and replacement delay must be positive".into());
        }
        Ok(())
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_validates() {
        Calibration::paper()
            .validate()
            .expect("paper calibration valid");
    }

    #[test]
    fn interconnect_targets_match_figure_7_single_path() {
        let c = Calibration::paper();
        assert!((c.mid_range.interconnect - 0.0182).abs() < 1e-9);
        assert!((c.high_end.interconnect - 0.0213).abs() < 1e-9);
    }

    #[test]
    fn low_end_interconnect_dominates_its_class() {
        // Figure 4(b): low-end subsystem AFR 4.6% with disk only 0.9% —
        // interconnect must carry most of the difference.
        let c = Calibration::paper();
        assert!(c.low_end.interconnect > 0.02);
        assert!(c.low_end.interconnect > 2.0 * c.nearline.interconnect);
    }

    #[test]
    fn high_end_performance_failures_are_rare() {
        // Table 1: only 153 performance failures in high-end systems.
        let c = Calibration::paper();
        assert!(c.high_end.performance < 0.001);
        assert!(c.mid_range.performance > 5.0 * c.high_end.performance);
    }

    #[test]
    fn background_shares_are_complementary() {
        let c = Calibration::paper();
        let ic = c.background_share(FailureType::PhysicalInterconnect);
        assert!(
            (ic - (1.0 - c.shelf_backplane.rate_share - c.loop_network.rate_share)).abs() < 1e-12
        );
        for ty in FailureType::ALL {
            let s = c.background_share(ty);
            assert!((0.0..=1.0).contains(&s), "{ty}: share {s}");
        }
        // Disk failures are mostly background (least bursty, Figure 9).
        assert!(c.background_share(FailureType::Disk) >= 0.7);
        // Interconnect failures are mostly episodic (most bursty).
        assert!(c.background_share(FailureType::PhysicalInterconnect) <= 0.45);
    }

    #[test]
    fn without_episodes_moves_everything_to_background() {
        let c = Calibration::paper().without_episodes();
        for ty in FailureType::ALL {
            assert!((c.background_share(ty) - 1.0).abs() < 1e-12);
        }
        c.validate().expect("ablated calibration still valid");
    }

    #[test]
    fn mask_probability_setter_validates() {
        let c = Calibration::paper().with_mask_probability(0.0);
        assert_eq!(c.multipath_mask_probability, 0.0);
        let c = Calibration::paper().with_mask_probability(1.0);
        assert_eq!(c.multipath_mask_probability, 1.0);
    }

    #[test]
    #[should_panic(expected = "mask probability")]
    fn mask_probability_rejects_out_of_range() {
        let _ = Calibration::paper().with_mask_probability(1.5);
    }

    #[test]
    #[should_panic(expected = "disk rates")]
    fn type_rate_panics_for_disk() {
        let _ = Calibration::paper().type_rate(SystemClass::LowEnd, FailureType::Disk);
    }

    #[test]
    fn validation_catches_oversubscribed_shares() {
        let mut c = Calibration::paper();
        c.shelf_backplane.rate_share = 0.9;
        c.loop_network.rate_share = 0.9;
        assert!(c.validate().is_err());
    }
}
