//! Independent background failure processes.
//!
//! Each (disk, failure type) pair carries a homogeneous Poisson process —
//! exponential interarrivals at the calibrated rate. This is the
//! memoryless, independent component of the failure phenomenology; the
//! correlated component lives in [`crate::episodes`].

use rand::Rng;

use ssfa_model::time::SECS_PER_YEAR;
use ssfa_model::{SimDuration, SimTime};

/// Samples the event times of a homogeneous Poisson process with the given
/// rate (events per year) over the window `[from, to)`.
///
/// Returns an empty vector when the rate is zero or the window is empty.
///
/// # Panics
///
/// Panics if `rate_per_year` is negative or not finite.
pub fn poisson_process_times<R: Rng + ?Sized>(
    rate_per_year: f64,
    from: SimTime,
    to: SimTime,
    rng: &mut R,
) -> Vec<SimTime> {
    assert!(
        rate_per_year.is_finite() && rate_per_year >= 0.0,
        "rate must be non-negative, got {rate_per_year}"
    );
    let mut times = Vec::new();
    if rate_per_year == 0.0 || from >= to {
        return times;
    }
    let rate_per_sec = rate_per_year / SECS_PER_YEAR as f64;
    let mut t = from;
    loop {
        // Exponential interarrival via inversion; `1 - gen` keeps the
        // argument of ln strictly positive.
        let u: f64 = rng.gen();
        let gap = -(1.0 - u).ln() / rate_per_sec;
        if !gap.is_finite() {
            break;
        }
        let next = t + SimDuration::from_secs(gap.ceil().max(1.0) as u64);
        if next >= to {
            break;
        }
        times.push(next);
        t = next;
    }
    times
}

/// A contiguous service span of one disk instance in a slot, produced by
/// walking the slot's disk-failure times through the replacement process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceSpan {
    /// Start of service.
    pub start: SimTime,
    /// End of service (disk-failure time, or study end).
    pub end: SimTime,
    /// The disk-failure time that ended this span, if any.
    pub failed_at: Option<SimTime>,
}

/// Resolves a slot's candidate disk-failure times into a sequence of
/// service spans separated by replacement delays.
///
/// `candidates` are *potential* disk-failure instants from any process
/// (background or episode), in any order. A candidate kills the instance in
/// service at that instant; candidates landing inside a replacement gap
/// (no disk present) are discarded. The final span ends at `study_end`
/// without a failure.
pub fn resolve_replacements(
    install: SimTime,
    study_end: SimTime,
    replacement_delay: SimDuration,
    candidates: &mut [SimTime],
) -> Vec<ServiceSpan> {
    candidates.sort_unstable();
    let mut spans = Vec::new();
    let mut start = install;
    if start >= study_end {
        return spans;
    }
    for &t in candidates.iter() {
        if t < start {
            // Before install or inside the replacement gap: no disk to kill.
            continue;
        }
        if t >= study_end {
            break;
        }
        spans.push(ServiceSpan {
            start,
            end: t,
            failed_at: Some(t),
        });
        start = t + replacement_delay;
        if start >= study_end {
            return spans;
        }
    }
    spans.push(ServiceSpan {
        start,
        end: study_end,
        failed_at: None,
    });
    spans
}

/// Finds the service span active at instant `t`, if any.
pub fn span_at(spans: &[ServiceSpan], t: SimTime) -> Option<usize> {
    // Spans are ordered and non-overlapping; linear scan is fine for the
    // handful of spans a slot ever has, but binary search keeps worst
    // cases (pathological calibrations) comfortable.
    let idx = spans.partition_point(|s| s.end <= t);
    if idx < spans.len() && spans[idx].start <= t {
        Some(idx)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn poisson_process_rate_is_respected() {
        let mut rng = rng();
        let from = SimTime::ZERO;
        let to = SimTime::from_years(100.0);
        let times = poisson_process_times(5.0, from, to, &mut rng);
        // Expect ~500 events over 100 years at rate 5/yr.
        assert!((400..600).contains(&times.len()), "{} events", times.len());
        // Strictly increasing, inside the window.
        for pair in times.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert!(times.iter().all(|&t| t > from && t < to));
    }

    #[test]
    fn zero_rate_and_empty_window_produce_nothing() {
        let mut r = rng();
        assert!(
            poisson_process_times(0.0, SimTime::ZERO, SimTime::from_years(1.0), &mut r).is_empty()
        );
        assert!(poisson_process_times(
            10.0,
            SimTime::from_secs(100),
            SimTime::from_secs(100),
            &mut r
        )
        .is_empty());
        assert!(poisson_process_times(
            10.0,
            SimTime::from_secs(200),
            SimTime::from_secs(100),
            &mut r
        )
        .is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        let mut r = rng();
        let _ = poisson_process_times(-1.0, SimTime::ZERO, SimTime::from_years(1.0), &mut r);
    }

    #[test]
    fn interarrivals_look_exponential() {
        let mut r = rng();
        let times = poisson_process_times(50.0, SimTime::ZERO, SimTime::from_years(200.0), &mut r);
        let gaps: Vec<f64> = times
            .windows(2)
            .map(|w| w[1].duration_since(w[0]).as_years())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 0.02).abs() < 0.002, "mean gap {mean}");
        // Memorylessness: CV of exponential is 1.
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / (gaps.len() - 1) as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.1, "cv {cv}");
    }

    #[test]
    fn replacement_walk_splits_spans() {
        let install = SimTime::from_secs(0);
        let end = SimTime::from_secs(1_000_000);
        let delay = SimDuration::from_secs(1_000);
        let mut candidates = vec![SimTime::from_secs(500_000), SimTime::from_secs(100_000)];
        let spans = resolve_replacements(install, end, delay, &mut candidates);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].start, install);
        assert_eq!(spans[0].failed_at, Some(SimTime::from_secs(100_000)));
        assert_eq!(spans[1].start, SimTime::from_secs(101_000));
        assert_eq!(spans[1].failed_at, Some(SimTime::from_secs(500_000)));
        assert_eq!(spans[2].start, SimTime::from_secs(501_000));
        assert_eq!(spans[2].end, end);
        assert_eq!(spans[2].failed_at, None);
    }

    #[test]
    fn candidates_in_replacement_gap_are_dropped() {
        let install = SimTime::ZERO;
        let end = SimTime::from_secs(1_000_000);
        let delay = SimDuration::from_secs(10_000);
        // Second candidate lands while the slot is empty.
        let mut candidates = vec![SimTime::from_secs(100_000), SimTime::from_secs(105_000)];
        let spans = resolve_replacements(install, end, delay, &mut candidates);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].failed_at, None);
    }

    #[test]
    fn late_install_yields_no_spans() {
        let end = SimTime::from_secs(1_000);
        let spans = resolve_replacements(
            SimTime::from_secs(2_000),
            end,
            SimDuration::from_secs(10),
            &mut [],
        );
        assert!(spans.is_empty());
    }

    #[test]
    fn failure_just_before_study_end_truncates() {
        let end = SimTime::from_secs(1_000);
        let mut candidates = vec![SimTime::from_secs(990)];
        let spans = resolve_replacements(
            SimTime::ZERO,
            end,
            SimDuration::from_secs(100),
            &mut candidates,
        );
        // Replacement would come online after the study: only the failed
        // span exists.
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].failed_at, Some(SimTime::from_secs(990)));
    }

    #[test]
    fn span_lookup_finds_active_instance() {
        let spans = vec![
            ServiceSpan {
                start: SimTime::from_secs(0),
                end: SimTime::from_secs(100),
                failed_at: Some(SimTime::from_secs(100)),
            },
            ServiceSpan {
                start: SimTime::from_secs(150),
                end: SimTime::from_secs(400),
                failed_at: None,
            },
        ];
        assert_eq!(span_at(&spans, SimTime::from_secs(50)), Some(0));
        assert_eq!(span_at(&spans, SimTime::from_secs(100)), None); // gap start
        assert_eq!(span_at(&spans, SimTime::from_secs(120)), None); // in gap
        assert_eq!(span_at(&spans, SimTime::from_secs(150)), Some(1));
        assert_eq!(span_at(&spans, SimTime::from_secs(399)), Some(1));
        assert_eq!(span_at(&spans, SimTime::from_secs(400)), None);
    }
}
