//! Correlated shock episodes: the compound-Poisson processes behind the
//! paper's burstiness and correlation findings.
//!
//! The paper attributes correlated failures to *shared factors*: shelf
//! cooling and power feeding every disk in an enclosure, host adapters and
//! cables shared by every shelf on a loop, and driver versions updated in
//! lockstep (§5.2.3). An episode models one misbehaving shared factor:
//! it arrives by a Poisson process at its scope (shelf or loop), lasts a
//! log-normal duration, and fires a batch of `1 + Poisson(extra_mean)`
//! same-type failures spread uniformly over that duration across the disks
//! sharing the factor.

use rand::Rng;

use ssfa_model::{FailureType, SimDuration, SimTime};
use ssfa_stats::dist::{ContinuousDist, LogNormal, Poisson};

use crate::background::poisson_process_times;
use crate::calibration::EpisodeParams;
use crate::occurrence::FailureSource;

/// One materialized episode.
#[derive(Debug, Clone, PartialEq)]
pub struct Episode {
    /// When the shared factor started misbehaving.
    pub start: SimTime,
    /// How long the episode lasted.
    pub duration: SimDuration,
    /// The failure type this episode produces.
    pub failure_type: FailureType,
    /// Scope tag recorded into ground truth.
    pub source: FailureSource,
    /// Failure instants, each within `[start, start + duration)`, sorted.
    pub hits: Vec<SimTime>,
}

/// Generates the episodes of one scope (a shelf or a loop) over a window.
///
/// * `type_rate_per_disk_year` — the failure type's total calibrated rate;
/// * `scope_disks` — number of disks sharing the misbehaving factor;
/// * `params` — the process's share/batch/duration calibration.
///
/// The episode arrival rate is chosen so that this process delivers
/// `params.rate_share` of the type's total rate across the scope:
/// `λ = share · rate · disks / E[batch]`.
pub fn generate_episodes<R: Rng>(
    type_rate_per_disk_year: f64,
    scope_disks: usize,
    window: (SimTime, SimTime),
    params: &EpisodeParams,
    failure_type: FailureType,
    source: FailureSource,
    rng: &mut R,
) -> Vec<Episode> {
    if params.rate_share <= 0.0 || scope_disks == 0 || type_rate_per_disk_year <= 0.0 {
        return Vec::new();
    }
    let arrival_rate =
        params.rate_share * type_rate_per_disk_year * scope_disks as f64 / params.mean_batch();
    let starts = poisson_process_times(arrival_rate, window.0, window.1, rng);
    if starts.is_empty() {
        return Vec::new();
    }
    let duration_dist = LogNormal::from_median_spread(
        params.duration_median_hours * 3_600.0,
        params.duration_spread,
    )
    .expect("calibration validated");
    let batch_extra = Poisson::new(params.extra_mean.max(1e-12)).expect("positive mean");

    starts
        .into_iter()
        .map(|start| {
            let duration = SimDuration::from_secs((duration_dist.sample(rng).max(60.0)) as u64);
            let batch = if params.extra_mean > 0.0 {
                1 + batch_extra.sample(rng) as usize
            } else {
                1
            };
            // Batches cannot hit more disks than share the factor.
            let batch = batch.min(scope_disks);
            let mut hits: Vec<SimTime> = (0..batch)
                .map(|_| {
                    let offset = (rng.gen::<f64>() * duration.as_secs() as f64) as u64;
                    start + SimDuration::from_secs(offset)
                })
                .collect();
            hits.sort_unstable();
            Episode {
                start,
                duration,
                failure_type,
                source,
                hits,
            }
        })
        .collect()
}

/// Assigns the hits of an episode to distinct disk indices in `0..scope`
/// (partial Fisher–Yates). Returns one scope-relative index per hit, in
/// hit order.
///
/// # Panics
///
/// Panics if the episode has more hits than `scope` (prevented by
/// [`generate_episodes`]'s batch cap).
pub fn assign_hits_to_disks<R: Rng>(episode: &Episode, scope: usize, rng: &mut R) -> Vec<usize> {
    let k = episode.hits.len();
    assert!(k <= scope, "more hits than disks in scope");
    let mut indices: Vec<usize> = (0..scope).collect();
    for i in 0..k {
        let j = i + (rng.gen::<f64>() * (scope - i) as f64) as usize;
        let j = j.min(scope - 1);
        indices.swap(i, j);
    }
    indices.truncate(k);
    indices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Calibration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn window_years(y: f64) -> (SimTime, SimTime) {
        (SimTime::ZERO, SimTime::from_years(y))
    }

    #[test]
    fn episode_process_delivers_its_rate_share() {
        let mut rng = StdRng::seed_from_u64(5);
        let params = Calibration::paper().shelf_backplane;
        let rate = 0.02; // per disk-year
        let disks = 13;
        let years = 2_000.0;
        let episodes = generate_episodes(
            rate,
            disks,
            window_years(years),
            &params,
            FailureType::PhysicalInterconnect,
            FailureSource::ShelfEpisode,
            &mut rng,
        );
        let hits: usize = episodes.iter().map(|e| e.hits.len()).sum();
        let expected = params.rate_share * rate * disks as f64 * years;
        let ratio = hits as f64 / expected;
        assert!(
            (0.85..1.15).contains(&ratio),
            "delivered {hits}, expected {expected}"
        );
    }

    #[test]
    fn hits_fall_within_episode_duration() {
        let mut rng = StdRng::seed_from_u64(6);
        let params = Calibration::paper().loop_network;
        let episodes = generate_episodes(
            0.05,
            39,
            window_years(500.0),
            &params,
            FailureType::PhysicalInterconnect,
            FailureSource::LoopEpisode,
            &mut rng,
        );
        assert!(!episodes.is_empty());
        for e in &episodes {
            for &h in &e.hits {
                assert!(h >= e.start);
                assert!(h <= e.start + e.duration);
            }
            // Sorted.
            for pair in e.hits.windows(2) {
                assert!(pair[0] <= pair[1]);
            }
            assert!(!e.hits.is_empty());
        }
    }

    #[test]
    fn batch_sizes_average_one_plus_extra_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let params = EpisodeParams {
            rate_share: 0.5,
            extra_mean: 2.0,
            duration_median_hours: 2.0,
            duration_spread: 3.0,
        };
        let episodes = generate_episodes(
            0.1,
            100, // large scope so the cap never binds
            window_years(3_000.0),
            &params,
            FailureType::Protocol,
            FailureSource::ShelfEpisode,
            &mut rng,
        );
        let mean =
            episodes.iter().map(|e| e.hits.len()).sum::<usize>() as f64 / episodes.len() as f64;
        assert!((mean - 3.0).abs() < 0.2, "mean batch {mean}");
    }

    #[test]
    fn batch_capped_at_scope_size() {
        let mut rng = StdRng::seed_from_u64(8);
        let params = EpisodeParams {
            rate_share: 1.0,
            extra_mean: 50.0,
            duration_median_hours: 2.0,
            duration_spread: 3.0,
        };
        let episodes = generate_episodes(
            0.5,
            4,
            window_years(200.0),
            &params,
            FailureType::Performance,
            FailureSource::ShelfEpisode,
            &mut rng,
        );
        for e in &episodes {
            assert!(e.hits.len() <= 4);
        }
    }

    #[test]
    fn disabled_process_produces_nothing() {
        let mut rng = StdRng::seed_from_u64(9);
        let episodes = generate_episodes(
            0.5,
            13,
            window_years(100.0),
            &EpisodeParams::disabled(),
            FailureType::Disk,
            FailureSource::ShelfEpisode,
            &mut rng,
        );
        assert!(episodes.is_empty());
        let none = generate_episodes(
            0.0,
            13,
            window_years(100.0),
            &Calibration::paper().shelf_cooling,
            FailureType::Disk,
            FailureSource::ShelfEpisode,
            &mut rng,
        );
        assert!(none.is_empty());
    }

    #[test]
    fn hit_assignment_yields_distinct_disks() {
        let mut rng = StdRng::seed_from_u64(10);
        let episode = Episode {
            start: SimTime::ZERO,
            duration: SimDuration::from_hours(1.0),
            failure_type: FailureType::PhysicalInterconnect,
            source: FailureSource::ShelfEpisode,
            hits: vec![SimTime::from_secs(1); 8],
        };
        for _ in 0..50 {
            let assigned = assign_hits_to_disks(&episode, 13, &mut rng);
            assert_eq!(assigned.len(), 8);
            let mut sorted = assigned.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 8, "duplicate disk in {assigned:?}");
            assert!(assigned.iter().all(|&i| i < 13));
        }
    }

    #[test]
    fn hit_assignment_covers_scope_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let episode = Episode {
            start: SimTime::ZERO,
            duration: SimDuration::from_hours(1.0),
            failure_type: FailureType::Disk,
            source: FailureSource::ShelfEpisode,
            hits: vec![SimTime::from_secs(1); 2],
        };
        let mut counts = [0usize; 6];
        for _ in 0..6_000 {
            for idx in assign_hits_to_disks(&episode, 6, &mut rng) {
                counts[idx] += 1;
            }
        }
        // Each disk should be hit ~2000 times (2 hits * 6000 / 6).
        for (i, &c) in counts.iter().enumerate() {
            assert!((1700..2300).contains(&c), "disk {i}: {c}");
        }
    }
}
