//! The simulation engine: drives all failure processes over a fleet.
//!
//! Systems are simulated independently — each from RNG streams derived
//! deterministically from the run seed and the system's index — so results
//! are exactly reproducible for a (fleet, seed) pair.

use rand::rngs::StdRng;
use rand::Rng;

use ssfa_model::{
    DiskInstanceId, FailureType, Fleet, PathConfig, SimDuration, SimTime, SlotAddr, StorageSystem,
};

use crate::background::{poisson_process_times, resolve_replacements, span_at, ServiceSpan};
use crate::calibration::{Calibration, EpisodeParams};
use crate::episodes::{assign_hits_to_disks, generate_episodes, Episode};
use crate::occurrence::{DiskRecord, FailureOccurrence, FailureSource, RemovalReason, SimOutput};
use crate::rng::{stream_rng, STREAM_BACKGROUND, STREAM_DETECTION, STREAM_EPISODES};

/// Simulates fleet failure behaviour over the 44-month study window.
#[derive(Debug, Clone)]
pub struct Simulator {
    calibration: Calibration,
}

/// High bit marking a system-local replacement-disk id before the
/// deterministic global renumbering pass.
const LOCAL_REPLACEMENT_FLAG: u64 = 1 << 63;

/// Per-system simulation output with system-local replacement ids.
#[derive(Debug, Default)]
struct SystemResult {
    occurrences: Vec<FailureOccurrence>,
    disks: Vec<DiskRecord>,
    /// Number of replacement instances allocated by this system.
    replacements: u64,
}

/// A candidate failure instant before replacement/masking resolution.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    at: SimTime,
    slot_idx: usize,
    failure_type: FailureType,
    source: FailureSource,
}

/// Per-slot static metadata gathered once per system.
struct SlotInfo {
    addr: SlotAddr,
    device: ssfa_model::DeviceAddr,
    raid_group: ssfa_model::RaidGroupId,
    fc_loop: ssfa_model::LoopId,
}

impl Simulator {
    /// Creates a simulator with the given calibration.
    ///
    /// # Panics
    ///
    /// Panics if the calibration fails [`Calibration::validate`].
    pub fn new(calibration: Calibration) -> Self {
        calibration.validate().expect("invalid calibration");
        Simulator { calibration }
    }

    /// The calibration in effect.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// Runs the simulation, returning every ground-truth occurrence and
    /// disk lifetime record.
    pub fn run(&self, fleet: &Fleet, seed: u64) -> SimOutput {
        self.run_parallel(fleet, seed, 1)
    }

    /// Runs the simulation across `threads` worker threads.
    ///
    /// Output is bit-identical for any thread count: every system draws
    /// from RNG streams derived only from `(seed, system index)`, and
    /// replacement-disk instance ids are assigned by a deterministic
    /// post-pass in system order.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn run_parallel(&self, fleet: &Fleet, seed: u64, threads: usize) -> SimOutput {
        assert!(threads > 0, "need at least one worker thread");
        let study_end = SimTime::study_end();
        let initial_by_slot: std::collections::HashMap<SlotAddr, DiskInstanceId> = fleet
            .initial_disks()
            .iter()
            .map(|d| (d.slot, d.id))
            .collect();

        let systems = fleet.systems();
        let mut results: Vec<SystemResult> = if threads == 1 || systems.len() < 2 {
            systems
                .iter()
                .map(|sys| self.simulate_system(fleet, sys, seed, study_end, &initial_by_slot))
                .collect()
        } else {
            // Contiguous chunks per worker; results concatenated in system
            // order, so scheduling cannot affect the output.
            let chunk = systems.len().div_ceil(threads);
            let mut collected: Vec<Vec<SystemResult>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = systems
                    .chunks(chunk)
                    .map(|chunk_systems| {
                        let initial_by_slot = &initial_by_slot;
                        scope.spawn(move || {
                            chunk_systems
                                .iter()
                                .map(|sys| {
                                    self.simulate_system(
                                        fleet,
                                        sys,
                                        seed,
                                        study_end,
                                        initial_by_slot,
                                    )
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for handle in handles {
                    collected.push(handle.join().expect("simulation worker panicked"));
                }
            });
            collected.into_iter().flatten().collect()
        };

        // Deterministic replacement-id assignment: prefix sums over the
        // per-system replacement counts, in system order.
        let mut occurrences = Vec::new();
        let mut disks = Vec::new();
        let mut base = fleet.disk_count() as u64;
        for result in &mut results {
            let remap = |id: DiskInstanceId| -> DiskInstanceId {
                if id.0 & LOCAL_REPLACEMENT_FLAG != 0 {
                    DiskInstanceId(base + (id.0 & !LOCAL_REPLACEMENT_FLAG))
                } else {
                    id
                }
            };
            for occ in &mut result.occurrences {
                occ.disk = remap(occ.disk);
            }
            for disk in &mut result.disks {
                disk.id = remap(disk.id);
            }
            base += result.replacements;
            occurrences.append(&mut result.occurrences);
            disks.append(&mut result.disks);
        }
        SimOutput::new(occurrences, disks)
    }

    fn simulate_system(
        &self,
        fleet: &Fleet,
        sys: &StorageSystem,
        seed: u64,
        study_end: SimTime,
        initial_by_slot: &std::collections::HashMap<SlotAddr, DiskInstanceId>,
    ) -> SystemResult {
        let mut result = SystemResult::default();
        let install = sys.installed_at;
        if install >= study_end {
            return result;
        }
        let SystemResult {
            occurrences,
            disks,
            replacements: next_local,
        } = &mut result;
        let window = (install, study_end);
        let cal = &self.calibration;
        let mut bg_rng = stream_rng(seed, STREAM_BACKGROUND, sys.id.0 as u64);
        let mut ep_rng = stream_rng(seed, STREAM_EPISODES, sys.id.0 as u64);
        let mut det_rng = stream_rng(seed, STREAM_DETECTION, sys.id.0 as u64);

        // --- Per-system rates -------------------------------------------
        let spec = fleet
            .disk_catalog()
            .get(sys.disk_model)
            .expect("fleet validated against catalog");
        let class = cal.class_rates(sys.class);
        let shelf_spec = fleet
            .shelf_catalog()
            .get(sys.shelf_model)
            .expect("fleet validated");
        let episode_factor = shelf_spec.episode_rate_factor;

        let disk_total = spec.disk_afr;
        let ic_total = class.interconnect
            * fleet
                .shelf_catalog()
                .interconnect_multiplier(sys.shelf_model, sys.disk_model);
        let proto_total = class.protocol * spec.protocol_factor;
        let perf_total = class.performance * spec.performance_factor;
        let total_rate = |ty: FailureType| match ty {
            FailureType::Disk => disk_total,
            FailureType::PhysicalInterconnect => ic_total,
            FailureType::Protocol => proto_total,
            FailureType::Performance => perf_total,
        };

        // Shelf-scope episode processes, with the enclosure's episode-rate
        // factor applied (keeping each type's total rate constant by
        // compensating in the background share below).
        let scale = |p: EpisodeParams| EpisodeParams {
            rate_share: (p.rate_share * episode_factor).min(1.0),
            ..p
        };
        let shelf_processes: [(EpisodeParams, FailureType); 4] = [
            (scale(cal.shelf_cooling), FailureType::Disk),
            (
                scale(cal.shelf_backplane),
                FailureType::PhysicalInterconnect,
            ),
            (scale(cal.shelf_driver), FailureType::Protocol),
            (scale(cal.shelf_perf), FailureType::Performance),
        ];
        // Background share per type = 1 − (scaled shelf share) − loop share.
        let background_rate = |ty: FailureType| {
            let shelf_share = shelf_processes
                .iter()
                .filter(|(_, t)| *t == ty)
                .map(|(p, _)| p.rate_share)
                .sum::<f64>();
            let loop_share = if ty == FailureType::PhysicalInterconnect {
                cal.loop_network.rate_share
            } else {
                0.0
            };
            total_rate(ty) * (1.0 - shelf_share - loop_share).max(0.0)
        };

        // --- Slot inventory ----------------------------------------------
        // Slots indexed system-locally; shelves/loops reference ranges of
        // this vector.
        let mut slots: Vec<SlotInfo> = Vec::new();
        let mut shelf_slot_ranges: Vec<(usize, usize)> = Vec::new();
        for &shelf_id in &sys.shelves {
            let shelf = fleet.shelf(shelf_id);
            let start = slots.len();
            for bay in 0..shelf.bays {
                let addr = SlotAddr {
                    shelf: shelf_id,
                    bay,
                };
                slots.push(SlotInfo {
                    addr,
                    device: shelf.device_addr(bay),
                    raid_group: fleet.raid_group_of(addr).expect("every slot in a group"),
                    fc_loop: shelf.fc_loop,
                });
            }
            shelf_slot_ranges.push((start, slots.len()));
        }

        // --- Candidate generation ----------------------------------------
        let mut candidates: Vec<Candidate> = Vec::new();

        // Background processes, one per slot per type.
        for ty in FailureType::ALL {
            let rate = background_rate(ty);
            if rate <= 0.0 {
                continue;
            }
            for (slot_idx, _) in slots.iter().enumerate() {
                for at in poisson_process_times(rate, window.0, window.1, &mut bg_rng) {
                    candidates.push(Candidate {
                        at,
                        slot_idx,
                        failure_type: ty,
                        source: FailureSource::Background,
                    });
                }
            }
        }

        // Shelf-scope episodes.
        for (range_idx, &(start, end)) in shelf_slot_ranges.iter().enumerate() {
            let _ = range_idx;
            let scope = end - start;
            for (params, ty) in &shelf_processes {
                let episodes: Vec<Episode> = generate_episodes(
                    total_rate(*ty),
                    scope,
                    window,
                    params,
                    *ty,
                    FailureSource::ShelfEpisode,
                    &mut ep_rng,
                );
                for episode in episodes {
                    let targets = assign_hits_to_disks(&episode, scope, &mut ep_rng);
                    for (&at, local) in episode.hits.iter().zip(targets) {
                        candidates.push(Candidate {
                            at,
                            slot_idx: start + local,
                            failure_type: *ty,
                            source: FailureSource::ShelfEpisode,
                        });
                    }
                }
            }
        }

        // Loop-scope network episodes (physical interconnect).
        for &loop_id in &sys.loops {
            let loop_shelves = &fleet.loops()[loop_id.index()].shelves;
            // Scope: all slots of the loop's shelves, as system-local
            // indices (shelves of a system are contiguous in `slots`).
            let mut scope_slots: Vec<usize> = Vec::new();
            for (&(start, end), &shelf_id) in shelf_slot_ranges.iter().zip(&sys.shelves) {
                if loop_shelves.contains(&shelf_id) {
                    scope_slots.extend(start..end);
                }
            }
            let episodes = generate_episodes(
                ic_total,
                scope_slots.len(),
                window,
                &cal.loop_network,
                FailureType::PhysicalInterconnect,
                FailureSource::LoopEpisode,
                &mut ep_rng,
            );
            for episode in episodes {
                let targets = assign_hits_to_disks(&episode, scope_slots.len(), &mut ep_rng);
                for (&at, local) in episode.hits.iter().zip(targets) {
                    candidates.push(Candidate {
                        at,
                        slot_idx: scope_slots[local],
                        failure_type: FailureType::PhysicalInterconnect,
                        source: FailureSource::LoopEpisode,
                    });
                }
            }
        }

        // --- Replacement resolution & attribution -------------------------
        let replacement_delay = SimDuration::from_days(cal.replacement_delay_days);
        // Per-slot: service spans and the instance id of each span.
        let mut slot_spans: Vec<Vec<ServiceSpan>> = Vec::with_capacity(slots.len());
        let mut slot_instances: Vec<Vec<DiskInstanceId>> = Vec::with_capacity(slots.len());

        // Disk-failure candidates per slot (with their source, for ground
        // truth).
        let mut disk_cands: Vec<Vec<(SimTime, FailureSource)>> = vec![Vec::new(); slots.len()];
        for c in candidates
            .iter()
            .filter(|c| c.failure_type == FailureType::Disk)
        {
            disk_cands[c.slot_idx].push((c.at, c.source));
        }

        for (slot_idx, slot) in slots.iter().enumerate() {
            let mut times: Vec<SimTime> = disk_cands[slot_idx].iter().map(|(t, _)| *t).collect();
            let spans = resolve_replacements(install, study_end, replacement_delay, &mut times);
            disk_cands[slot_idx].sort_unstable_by_key(|(t, _)| *t);

            let initial_id = *initial_by_slot
                .get(&slot.addr)
                .expect("slot has an install");
            let mut ids = Vec::with_capacity(spans.len());
            for (i, span) in spans.iter().enumerate() {
                let id = if i == 0 {
                    initial_id
                } else {
                    // System-local replacement id; the run-level post-pass
                    // rewrites it into the global instance-id space.
                    let id = DiskInstanceId(LOCAL_REPLACEMENT_FLAG | *next_local);
                    *next_local += 1;
                    id
                };
                ids.push(id);
                disks.push(DiskRecord {
                    id,
                    model: sys.disk_model,
                    slot: slot.addr,
                    system: sys.id,
                    raid_group: slot.raid_group,
                    installed_at: span.start,
                    removed_at: span.end,
                    removal_reason: if span.failed_at.is_some() {
                        RemovalReason::Failed
                    } else {
                        RemovalReason::StudyEnded
                    },
                });
                // Emit the disk-failure occurrence that ended this span.
                if let Some(at) = span.failed_at {
                    let source = disk_cands[slot_idx]
                        .iter()
                        .find(|(t, _)| *t == at)
                        .map(|(_, s)| *s)
                        .unwrap_or(FailureSource::Background);
                    if let Some(occ) = self.finish_occurrence(
                        at,
                        FailureType::Disk,
                        source,
                        false,
                        id,
                        slot,
                        sys,
                        study_end,
                        &mut det_rng,
                    ) {
                        occurrences.push(occ);
                    }
                }
            }
            slot_spans.push(spans);
            slot_instances.push(ids);
        }

        // Non-disk candidates: attribute to the instance in service, mask
        // interconnect failures on dual-path systems.
        let dual_path = sys.path_config == PathConfig::DualPath;
        for c in candidates
            .iter()
            .filter(|c| c.failure_type != FailureType::Disk)
        {
            let Some(span_idx) = span_at(&slot_spans[c.slot_idx], c.at) else {
                continue; // slot empty (awaiting replacement)
            };
            let id = slot_instances[c.slot_idx][span_idx];
            let masked = dual_path
                && c.failure_type == FailureType::PhysicalInterconnect
                && det_rng.gen::<f64>() < cal.multipath_mask_probability;
            if let Some(occ) = self.finish_occurrence(
                c.at,
                c.failure_type,
                c.source,
                masked,
                id,
                &slots[c.slot_idx],
                sys,
                study_end,
                &mut det_rng,
            ) {
                occurrences.push(occ);
            }
        }
        result
    }

    /// Applies detection lag and assembles the occurrence record. Returns
    /// `None` for failures whose detection falls outside the study window.
    #[allow(clippy::too_many_arguments)]
    fn finish_occurrence(
        &self,
        at: SimTime,
        failure_type: FailureType,
        source: FailureSource,
        masked: bool,
        disk: DiskInstanceId,
        slot: &SlotInfo,
        sys: &StorageSystem,
        study_end: SimTime,
        det_rng: &mut StdRng,
    ) -> Option<FailureOccurrence> {
        let lag_secs =
            (det_rng.gen::<f64>() * self.calibration.scrub_interval_hours * 3_600.0) as u64;
        let detected_at = at + SimDuration::from_secs(lag_secs);
        if detected_at >= study_end {
            return None;
        }
        Some(FailureOccurrence {
            occurred_at: at,
            detected_at,
            failure_type,
            source,
            masked,
            disk,
            slot: slot.addr,
            system: sys.id,
            raid_group: slot.raid_group,
            fc_loop: slot.fc_loop,
            device: slot.device,
        })
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator::new(Calibration::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssfa_model::{FleetConfig, SystemClass};

    fn small_output(seed: u64) -> (Fleet, SimOutput) {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.003), seed);
        let out = Simulator::default().run(&fleet, seed);
        (fleet, out)
    }

    #[test]
    fn simulation_is_deterministic() {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.002), 3);
        let a = Simulator::default().run(&fleet, 3);
        let b = Simulator::default().run(&fleet, 3);
        assert_eq!(a.occurrences(), b.occurrences());
        assert_eq!(a.disks(), b.disks());
        let c = Simulator::default().run(&fleet, 4);
        assert_ne!(a.occurrences().len(), c.occurrences().len());
    }

    #[test]
    fn parallel_output_is_bit_identical_to_serial() {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.004), 77);
        let sim = Simulator::default();
        let serial = sim.run(&fleet, 77);
        for threads in [2, 3, 8] {
            let parallel = sim.run_parallel(&fleet, 77, threads);
            assert_eq!(
                serial.occurrences(),
                parallel.occurrences(),
                "{threads} threads"
            );
            assert_eq!(serial.disks(), parallel.disks(), "{threads} threads");
        }
    }

    #[test]
    fn parallel_handles_more_threads_than_systems() {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.0001), 78);
        let sim = Simulator::default();
        let serial = sim.run(&fleet, 78);
        let parallel = sim.run_parallel(&fleet, 78, 64);
        assert_eq!(serial.occurrences(), parallel.occurrences());
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_panics() {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.0001), 79);
        let _ = Simulator::default().run_parallel(&fleet, 79, 0);
    }

    #[test]
    fn replacement_ids_are_dense_after_initial_range() {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.003), 80);
        let out = Simulator::default().run_parallel(&fleet, 80, 4);
        let initial = fleet.disk_count() as u64;
        let mut replacement_ids: Vec<u64> = out
            .disks()
            .iter()
            .filter(|d| d.id.0 >= initial)
            .map(|d| d.id.0)
            .collect();
        replacement_ids.sort_unstable();
        assert!(!replacement_ids.is_empty());
        for (i, id) in replacement_ids.iter().enumerate() {
            assert_eq!(*id, initial + i as u64, "replacement ids must be dense");
        }
    }

    #[test]
    fn all_four_failure_types_occur() {
        let (_, out) = small_output(5);
        let counts = out.exposed_counts();
        for ty in FailureType::ALL {
            assert!(counts.get(ty) > 0, "no {ty} events at all");
        }
    }

    #[test]
    fn detection_lag_is_within_one_scrub_interval() {
        let (_, out) = small_output(6);
        for occ in out.occurrences() {
            let lag = occ.detected_at.duration_since(occ.occurred_at);
            assert!(lag.as_hours() <= 1.0, "lag {lag}");
        }
    }

    #[test]
    fn occurrences_fall_within_study_window() {
        let (_, out) = small_output(7);
        let end = SimTime::study_end();
        for occ in out.occurrences() {
            assert!(occ.detected_at < end);
            assert!(occ.occurred_at.as_secs() > 0);
        }
    }

    #[test]
    fn only_dual_path_interconnect_failures_are_masked() {
        let (fleet, out) = small_output(8);
        let mut saw_masked = false;
        for occ in out.occurrences() {
            if occ.masked {
                saw_masked = true;
                assert_eq!(occ.failure_type, FailureType::PhysicalInterconnect);
                assert_eq!(
                    fleet.system(occ.system).path_config,
                    PathConfig::DualPath,
                    "masked failure on a single-path system"
                );
            }
        }
        assert!(
            saw_masked,
            "expected some masked failures in mid/high-end systems"
        );
    }

    #[test]
    fn masking_probability_near_calibration() {
        let fleet = Fleet::build(
            &FleetConfig::paper()
                .scaled(0.04)
                .only_classes(&[SystemClass::HighEnd]),
            9,
        );
        let out = Simulator::default().run(&fleet, 9);
        let mut masked = 0u64;
        let mut total = 0u64;
        for occ in out
            .occurrences()
            .iter()
            .filter(|o| o.failure_type == FailureType::PhysicalInterconnect)
        {
            if fleet.system(occ.system).path_config == PathConfig::DualPath {
                total += 1;
                masked += occ.masked as u64;
            }
        }
        assert!(
            total > 100,
            "not enough dual-path interconnect failures: {total}"
        );
        let frac = masked as f64 / total as f64;
        assert!((0.45..0.65).contains(&frac), "masked fraction {frac}");
    }

    #[test]
    fn failed_disks_are_replaced_with_new_instances() {
        let (fleet, out) = small_output(10);
        let initial = fleet.disk_count() as u64;
        let replacements: Vec<_> = out.disks().iter().filter(|d| d.id.0 >= initial).collect();
        assert!(!replacements.is_empty(), "no replacements happened");
        // Every replacement record follows a failed record in the same slot.
        for rep in &replacements {
            let predecessor = out
                .disks()
                .iter()
                .filter(|d| d.slot == rep.slot && d.removed_at <= rep.installed_at)
                .max_by_key(|d| d.removed_at)
                .expect("replacement has a predecessor");
            assert_eq!(predecessor.removal_reason, RemovalReason::Failed);
        }
        // Disk-failure occurrences match failed disk records.
        let failed_records = out
            .disks()
            .iter()
            .filter(|d| d.removal_reason == RemovalReason::Failed)
            .count();
        let disk_failures = out
            .occurrences()
            .iter()
            .filter(|o| o.failure_type == FailureType::Disk)
            .count();
        // Detection-window truncation can drop a few occurrences relative
        // to failed records, never the other way.
        assert!(disk_failures <= failed_records);
        assert!(failed_records - disk_failures <= failed_records / 10 + 5);
    }

    #[test]
    fn disk_lifetimes_partition_slot_time() {
        let (_, out) = small_output(11);
        use std::collections::HashMap;
        let mut by_slot: HashMap<_, Vec<&DiskRecord>> = HashMap::new();
        for d in out.disks() {
            by_slot.entry(d.slot).or_default().push(d);
        }
        // lint: sorted test-only per-slot assertions; order cannot affect the checks
        for (slot, mut recs) in by_slot {
            recs.sort_by_key(|d| d.installed_at);
            for pair in recs.windows(2) {
                assert!(
                    pair[0].removed_at <= pair[1].installed_at,
                    "overlapping lifetimes in {slot}"
                );
            }
            // The last instance either survives to study end, or it failed
            // close enough to the boundary that its replacement would land
            // after the study window (`resolve_replacements` leaves the
            // slot empty in that case).
            let last = recs.last().unwrap();
            if last.removed_at != SimTime::study_end() {
                assert_eq!(
                    last.removal_reason,
                    RemovalReason::Failed,
                    "early-ending last instance must have failed in {slot}"
                );
                let delay = SimDuration::from_days(Calibration::paper().replacement_delay_days);
                assert!(
                    last.removed_at + delay >= SimTime::study_end(),
                    "slot {slot} left empty before the replacement window: \
                     removed at {:?}, study end {:?}",
                    last.removed_at,
                    SimTime::study_end(),
                );
            }
        }
    }

    #[test]
    fn exposure_weighted_event_rate_is_sane() {
        let (_, out) = small_output(12);
        let rate = out.exposed_counts().total() as f64 / out.total_disk_years();
        // Overall subsystem AFR across the mixed fleet: 2%..6%.
        assert!((0.015..0.07).contains(&rate), "overall rate {rate}");
    }

    #[test]
    fn episodes_generate_a_meaningful_share_of_interconnect_failures() {
        let (_, out) = small_output(13);
        let ic: Vec<_> = out
            .occurrences()
            .iter()
            .filter(|o| o.failure_type == FailureType::PhysicalInterconnect)
            .collect();
        let episodic = ic
            .iter()
            .filter(|o| {
                matches!(
                    o.source,
                    FailureSource::ShelfEpisode | FailureSource::LoopEpisode
                )
            })
            .count();
        let frac = episodic as f64 / ic.len() as f64;
        assert!(
            (0.5..0.9).contains(&frac),
            "episodic interconnect fraction {frac}"
        );
    }

    #[test]
    fn without_episodes_ablation_removes_episodic_sources() {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.002), 14);
        let out = Simulator::new(Calibration::paper().without_episodes()).run(&fleet, 14);
        assert!(out
            .occurrences()
            .iter()
            .all(|o| o.source == FailureSource::Background));
        // Totals stay in the same ballpark (shares folded into background).
        let base = Simulator::default().run(&fleet, 14);
        let a = out.exposed_counts().total() as f64;
        let b = base.exposed_counts().total() as f64;
        assert!(
            (a / b - 1.0).abs() < 0.25,
            "ablation changed totals too much: {a} vs {b}"
        );
    }
}
