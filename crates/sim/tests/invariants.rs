//! Simulation invariants under randomized configurations: whatever the
//! knobs, the output must stay internally consistent.

use proptest::prelude::*;

use ssfa_model::{FailureType, Fleet, FleetConfig, SimTime};
use ssfa_sim::{Calibration, RemovalReason, Simulator};

fn tiny_config(scale_millis: u64) -> FleetConfig {
    FleetConfig::paper().scaled(scale_millis as f64 / 1_000_000.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn output_is_internally_consistent(
        seed in 0u64..5_000,
        scale_millis in 3u64..12,
        mask_centi in 0u32..=100,
    ) {
        let config = tiny_config(scale_millis);
        let fleet = Fleet::build(&config, seed);
        let cal = Calibration::paper().with_mask_probability(mask_centi as f64 / 100.0);
        let out = Simulator::new(cal).run(&fleet, seed);
        let study_end = SimTime::study_end();

        // Every occurrence is attributable and inside the window.
        for occ in out.occurrences() {
            prop_assert!(occ.detected_at >= occ.occurred_at);
            prop_assert!(occ.detected_at < study_end);
            prop_assert!(occ.system.index() < fleet.systems().len());
            prop_assert!(fleet.raid_group_of(occ.slot).is_some());
            if occ.masked {
                prop_assert_eq!(occ.failure_type, FailureType::PhysicalInterconnect);
            }
        }

        // Disk lifetimes are positive-length, bounded, and every failed
        // record has a matching disk-failure occurrence unless detection
        // fell past the study end.
        let mut failed_records = 0usize;
        for disk in out.disks() {
            prop_assert!(disk.installed_at < disk.removed_at);
            prop_assert!(disk.removed_at <= study_end);
            if disk.removal_reason == RemovalReason::Failed {
                failed_records += 1;
            } else {
                prop_assert_eq!(disk.removed_at, study_end);
            }
        }
        let disk_failures = out
            .occurrences()
            .iter()
            .filter(|o| o.failure_type == FailureType::Disk)
            .count();
        prop_assert!(disk_failures <= failed_records);

        // Exposure equals the per-slot union of lifetimes: no slot can
        // accumulate more service time than the study window.
        use std::collections::HashMap;
        let mut per_slot: HashMap<_, f64> = HashMap::new();
        for d in out.disks() {
            *per_slot.entry(d.slot).or_default() += d.service_years();
        }
        let window_years = study_end.as_years();
        // lint: sorted independent per-entry property assertions; no accumulation across entries
        for (slot, years) in per_slot {
            prop_assert!(years <= window_years + 1e-9, "{slot}: {years} yr");
        }
    }

    #[test]
    fn full_masking_exposes_no_interconnect_failures_on_dual_paths(
        seed in 0u64..1_000,
    ) {
        let config = FleetConfig::paper()
            .scaled(0.002)
            .only_classes(&[ssfa_model::SystemClass::HighEnd]);
        let fleet = Fleet::build(&config, seed);
        let out = Simulator::new(Calibration::paper().with_mask_probability(1.0))
            .run(&fleet, seed);
        for rec in out.exposed_records() {
            if rec.failure_type == FailureType::PhysicalInterconnect {
                let sys = fleet.system(rec.system);
                prop_assert_eq!(sys.path_config, ssfa_model::PathConfig::SinglePath);
            }
        }
    }

    #[test]
    fn seeds_change_outcomes_but_not_structure(seed in 0u64..1_000) {
        let config = tiny_config(5);
        let fleet = Fleet::build(&config, seed);
        let out = Simulator::default().run(&fleet, seed);
        // Structure: initial disk records always exist for every slot.
        let initial = fleet.disk_count();
        let initial_records = out
            .disks()
            .iter()
            .filter(|d| d.id.index() < initial)
            .count();
        prop_assert_eq!(initial_records, initial);
    }
}
