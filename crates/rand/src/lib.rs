//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact* API subset it uses: [`RngCore`], [`SeedableRng`],
//! the [`Rng`] extension trait (`gen`, `gen_range`), and
//! [`rngs::StdRng`]. The generator behind `StdRng` is xoshiro256\*\*
//! (public domain, Blackman & Vigna) seeded via the SplitMix64 expansion —
//! a different bitstream than upstream `rand`'s ChaCha12, but with the
//! same statistical quality and the same determinism contract: identical
//! seeds produce identical streams, forever, on every platform.
//!
//! Nothing in this workspace depends on upstream `rand`'s exact output;
//! every calibration band and golden snapshot was produced against this
//! implementation.

#![forbid(unsafe_code)]

/// The core of every random number generator: a source of random words.
///
/// Mirrors `rand_core::RngCore` minus the fallible API.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly from an [`RngCore`] via
/// [`Rng::gen`]. Stands in for `Standard: Distribution<T>`.
pub trait StandardSample {
    /// Draws one uniform value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision — the same
    /// construction upstream `rand` uses for its `Standard` `f64`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + f64::standard_sample(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_free_mod(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo + (reject_free_mod(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Uniform integer in `[0, span)` by rejection sampling (Lemire-style
/// threshold), so small spans carry no modulo bias.
fn reject_free_mod<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - u64::MAX.wrapping_rem(span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of a [`StandardSample`] type (`f64` in `[0,1)`,
    /// full-width integers, …).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from a `u64` (the only constructor this workspace
/// uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*
    /// seeded by SplitMix64 expansion of a `u64`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand a 64-bit seed into generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // xoshiro's all-zero state is a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by David Blackman and Sebastiano Vigna.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = StdRng::seed_from_u64(1).next_u64();
        let b: u64 = StdRng::seed_from_u64(2).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn f64_samples_stay_in_unit_interval_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = rng.gen_range(3u64..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5.0f64..=6.0);
            assert!((5.0..=6.0).contains(&y));
            let z = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn gen_range_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn dyn_rng_core_supports_gen() {
        // `&mut dyn RngCore` must support the `Rng` extension methods —
        // ssfa-stats samples distributions through exactly this shape.
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let u: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
