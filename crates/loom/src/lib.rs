//! # ssfa-loom: a vendored schedule-exploring model checker
//!
//! A small, offline stand-in for [loom](https://github.com/tokio-rs/loom)
//! exposing exactly the API subset the ssfa chunk work queue uses:
//! [`sync::atomic::AtomicUsize`], [`sync::atomic::AtomicBool`],
//! [`sync::Mutex`], and [`thread::spawn`]/[`thread::JoinHandle::join`].
//!
//! ## How it works
//!
//! [`model`] (or [`Builder::check`]) runs the closure repeatedly, once per
//! distinct *schedule*. Each virtual thread is backed by a real OS thread,
//! but a token scheduler lets exactly one run at a time; every sync
//! operation yields first, creating a *choice point* where any currently
//! runnable virtual thread may be scheduled next. An execution records the
//! choice made at every point; the driver then backtracks depth-first —
//! bump the deepest choice with unexplored alternatives, replay the prefix,
//! continue — until the whole tree is exhausted or `max_schedules` is hit.
//!
//! Because user code must be deterministic apart from scheduling, this
//! enumerates **every interleaving of sync operations** (under sequential
//! consistency — a sound over-approximation for the invariants checked
//! here: lost updates, duplicated claims, deadlocks).
//!
//! ## Example
//!
//! ```
//! use ssfa_loom as loom;
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! // Two threads racing fetch_add never lose an increment…
//! let report = loom::Builder::default().check(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let h: Vec<_> = (0..2)
//!         .map(|_| {
//!             let n = Arc::clone(&n);
//!             loom::thread::spawn(move || {
//!                 n.fetch_add(1, Ordering::Relaxed);
//!             })
//!         })
//!         .collect();
//!     for h in h {
//!         h.join().unwrap();
//!     }
//!     assert_eq!(n.load(Ordering::Relaxed), 2);
//! });
//! assert!(report.failure.is_none());
//! assert!(report.complete);
//! ```

#![warn(missing_docs)]

mod scheduler;
pub mod sync;
pub mod thread;

use std::sync::Arc;

/// Exploration driver with a configurable schedule bound.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Stop after this many schedules even if the tree is not exhausted
    /// (the report then has `complete == false`).
    pub max_schedules: usize,
    /// Maximum *preemptive* context switches per execution — switches away
    /// from a thread that could have kept running. Switches forced by a
    /// block or thread exit are always free. `None` (the default) explores
    /// exhaustively; `Some(n)` bounds the tree the way loom's
    /// `LOOM_MAX_PREEMPTIONS` does, which keeps wider thread counts
    /// tractable while still catching every bug reachable with `<= n`
    /// preemptions (most real races need only one or two).
    pub preemption_bound: Option<usize>,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_schedules: 100_000,
            preemption_bound: None,
        }
    }
}

/// The first failing schedule found, if any.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Panic message (or deadlock description) from the failing execution.
    pub message: String,
    /// The schedule that produced it: at the i-th choice point, the index
    /// (into the list of runnable virtual threads, sorted by id) that ran.
    /// Feeding this back as a prefix deterministically reproduces the bug.
    pub schedule: Vec<usize>,
}

/// Outcome of an exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// Whether the schedule tree was exhausted (false = bound hit first).
    pub complete: bool,
    /// First failing schedule, if one was found (exploration stops there).
    pub failure: Option<Failure>,
}

impl Builder {
    /// Explores schedules of `f` until exhaustion, first failure, or the
    /// schedule bound, and reports what happened.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        scheduler::install_panic_filter();
        let f = Arc::new(f);
        let mut prefix: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        loop {
            let exec = scheduler::run_once(&f, prefix.clone(), self.preemption_bound);
            schedules += 1;
            if let Some(message) = exec.failure {
                return Report {
                    schedules,
                    complete: false,
                    failure: Some(Failure {
                        message,
                        schedule: exec.trace.iter().map(|cp| cp.chosen).collect(),
                    }),
                };
            }
            // Depth-first backtrack: bump the deepest choice point that
            // still has an unexplored alternative.
            let mut stem = exec.trace;
            let mut bumped = false;
            while let Some(cp) = stem.pop() {
                if cp.chosen + 1 < cp.alternatives {
                    let mut next = cp;
                    next.chosen += 1;
                    stem.push(next);
                    bumped = true;
                    break;
                }
            }
            if !bumped {
                return Report {
                    schedules,
                    complete: true,
                    failure: None,
                };
            }
            if schedules >= self.max_schedules {
                return Report {
                    schedules,
                    complete: false,
                    failure: None,
                };
            }
            prefix = stem.iter().map(|cp| cp.chosen).collect();
        }
    }
}

/// Exhaustively model-checks `f`, panicking on the first failing schedule
/// or if the default schedule bound is hit before exhaustion.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let report = Builder::default().check(f);
    if let Some(failure) = report.failure {
        panic!(
            "model check failed after {} schedule(s): {}\nfailing schedule: {:?}",
            report.schedules, failure.message, failure.schedule
        );
    }
    assert!(
        report.complete,
        "model check hit the schedule bound ({} schedules) before exhausting the tree",
        report.schedules
    );
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::Mutex;
    use super::{thread, Builder};
    use std::sync::Arc;

    #[test]
    fn single_thread_is_one_schedule_per_choice_chain() {
        let report = Builder::default().check(|| {
            let n = AtomicUsize::new(0);
            n.fetch_add(1, Ordering::Relaxed);
            assert_eq!(n.load(Ordering::Relaxed), 1);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.complete);
        assert_eq!(report.schedules, 1, "no concurrency, no branching");
    }

    #[test]
    fn two_racing_fetch_adds_never_lose_an_increment() {
        let report = Builder::default().check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        n.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::Relaxed), 2);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.complete);
        assert!(
            report.schedules >= 2,
            "two orders of the racing adds must both be explored, got {}",
            report.schedules
        );
    }

    #[test]
    fn load_then_store_lost_update_is_caught() {
        // The classic non-atomic increment: load, then store(v + 1).
        // Interleaved, one increment is lost — the checker must find it.
        let report = Builder::default().check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let v = n.load(Ordering::Relaxed);
                        n.store(v + 1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
        });
        let failure = report.failure.expect("lost update must be found");
        assert!(
            failure.message.contains("lost update"),
            "unexpected failure: {}",
            failure.message
        );
        assert!(!failure.schedule.is_empty());
    }

    #[test]
    fn mutex_serializes_a_plain_counter() {
        let report = Builder::default().check(|| {
            let n = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let mut guard = n.lock().unwrap();
                        *guard += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*n.lock().unwrap(), 2);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.complete);
    }

    #[test]
    fn lock_order_inversion_deadlock_is_detected() {
        let report = Builder::default().check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            }
            let _ = h.join();
        });
        let failure = report.failure.expect("AB/BA lock order must deadlock");
        assert!(
            failure.message.contains("deadlock"),
            "unexpected failure: {}",
            failure.message
        );
    }

    #[test]
    fn join_returns_the_thread_value() {
        let report = Builder::default().check(|| {
            let h = thread::spawn(|| 41usize + 1);
            assert_eq!(h.join().unwrap(), 42);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.complete);
    }

    #[test]
    fn abort_flag_is_seen_or_not_seen_but_never_corrupted() {
        // A reader may or may not observe the concurrent store — both are
        // legal — but the final value after join is always true.
        let report = Builder::default().check(|| {
            let flag = Arc::new(AtomicBool::new(false));
            let f2 = Arc::clone(&flag);
            let h = thread::spawn(move || {
                f2.store(true, Ordering::Relaxed);
            });
            let _racy_read = flag.load(Ordering::Relaxed);
            h.join().unwrap();
            assert!(flag.load(Ordering::Relaxed));
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.complete);
        assert!(
            report.schedules >= 2,
            "store/load race must branch, got {}",
            report.schedules
        );
    }

    #[test]
    fn schedule_bound_truncates_incomplete() {
        let report = Builder {
            max_schedules: 1,
            ..Builder::default()
        }
        .check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        n.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        assert!(report.failure.is_none());
        assert!(!report.complete, "bound of 1 cannot exhaust a racing pair");
        assert_eq!(report.schedules, 1);
    }

    #[test]
    fn preemption_bound_still_catches_the_lost_update() {
        // The load/store lost update needs exactly one preemption (between
        // the load and the store), so a bound of 1 must still find it — and
        // with a far smaller tree than the exhaustive run.
        let report = Builder {
            preemption_bound: Some(1),
            ..Builder::default()
        }
        .check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let v = n.load(Ordering::Relaxed);
                        n.store(v + 1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
        });
        let failure = report
            .failure
            .expect("one preemption suffices to lose the update");
        assert!(failure.message.contains("lost update"));
    }

    #[test]
    fn preemption_bound_shrinks_the_tree_without_breaking_correct_code() {
        // Three racing fetch_adds: correct under every schedule. The
        // bounded run must exhaust its (restricted) tree and agree, in
        // strictly fewer schedules than the exhaustive run.
        let body = |n: &Arc<AtomicUsize>| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let n = Arc::clone(n);
                    thread::spawn(move || {
                        n.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::Relaxed), 3);
        };
        let exhaustive = Builder::default().check(move || {
            let n = Arc::new(AtomicUsize::new(0));
            body(&n);
        });
        let bounded = Builder {
            preemption_bound: Some(1),
            ..Builder::default()
        }
        .check(move || {
            let n = Arc::new(AtomicUsize::new(0));
            body(&n);
        });
        assert!(exhaustive.complete && exhaustive.failure.is_none());
        assert!(bounded.complete && bounded.failure.is_none());
        assert!(
            bounded.schedules < exhaustive.schedules,
            "bound must prune: bounded {} vs exhaustive {}",
            bounded.schedules,
            exhaustive.schedules
        );
    }
}
