//! Model-checked counterparts of the `std::sync` subset the ssfa chunk
//! work queue uses. Every operation is a scheduler yield point, so the
//! explorer can interleave virtual threads before each atomic or lock
//! effect. Memory-ordering arguments are accepted for API parity but the
//! exploration is sequentially consistent — a sound over-approximation for
//! catching lost updates and lock races at this queue's strength.

use crate::scheduler::Explorer;
use std::fmt;

/// Model-checked atomics.
pub mod atomic {
    use super::Explorer;

    pub use std::sync::atomic::Ordering;

    /// Model-checked `AtomicUsize`: a yield point before every operation.
    #[derive(Debug, Default)]
    pub struct AtomicUsize {
        v: std::sync::atomic::AtomicUsize,
    }

    impl AtomicUsize {
        /// Creates the atomic. Usable outside the model (no yield).
        pub fn new(v: usize) -> AtomicUsize {
            AtomicUsize {
                v: std::sync::atomic::AtomicUsize::new(v),
            }
        }

        /// Reads the value (yield point).
        pub fn load(&self, _order: Ordering) -> usize {
            Explorer::yield_point();
            self.v.load(Ordering::SeqCst)
        }

        /// Writes the value (yield point).
        pub fn store(&self, val: usize, _order: Ordering) {
            Explorer::yield_point();
            self.v.store(val, Ordering::SeqCst)
        }

        /// Atomically adds, returning the previous value (yield point; the
        /// read-modify-write itself is indivisible, as on hardware).
        pub fn fetch_add(&self, val: usize, _order: Ordering) -> usize {
            Explorer::yield_point();
            self.v.fetch_add(val, Ordering::SeqCst)
        }
    }

    /// Model-checked `AtomicBool`: a yield point before every operation.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        v: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates the atomic. Usable outside the model (no yield).
        pub fn new(v: bool) -> AtomicBool {
            AtomicBool {
                v: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// Reads the value (yield point).
        pub fn load(&self, _order: Ordering) -> bool {
            Explorer::yield_point();
            self.v.load(Ordering::SeqCst)
        }

        /// Writes the value (yield point).
        pub fn store(&self, val: bool, _order: Ordering) {
            Explorer::yield_point();
            self.v.store(val, Ordering::SeqCst)
        }
    }
}

/// Error type for [`Mutex::lock`] parity with `std`. The model never
/// actually poisons: a panicking execution aborts the whole schedule, so
/// `lock()` always returns `Ok` and `.unwrap()` is idiomatic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoisonError;

impl fmt::Display for PoisonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("loom model mutex poisoned")
    }
}

impl std::error::Error for PoisonError {}

/// Model-checked mutex. MUST be created inside the model closure (it
/// registers itself with the running explorer).
#[derive(Debug)]
pub struct Mutex<T> {
    id: usize,
    data: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a model mutex registered with the current exploration.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            id: Explorer::register_mutex(),
            data: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking in *model* time: the virtual thread is
    /// descheduled while another virtual thread owns the mutex.
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, PoisonError> {
        Explorer::acquire_mutex(self.id);
        // The inner std lock is uncontended by construction: only the
        // model-level owner ever touches it, and the token serializes
        // virtual threads. `unwrap_or_else(into_inner)` keeps teardown of a
        // panicked execution from cascading poison panics.
        let inner = self.data.lock().unwrap_or_else(|p| p.into_inner());
        Ok(MutexGuard {
            id: self.id,
            inner: Some(inner),
        })
    }
}

/// RAII guard for [`Mutex`]; releasing is itself a yield point.
pub struct MutexGuard<'a, T> {
    id: usize,
    // Option so Drop can release the real guard BEFORE parking in the
    // scheduler — otherwise a rescheduled virtual thread could block on
    // the inner std mutex for real and wedge the explorer.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("MutexGuard").field(&**self).finish()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard data present until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard data present until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first, then the model-level ownership.
        self.inner.take();
        Explorer::release_mutex(self.id);
    }
}
