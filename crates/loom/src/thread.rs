//! Virtual-thread spawn/join for the model. Each `spawn` registers a new
//! virtual thread with the running explorer; the backing OS thread only
//! executes while it holds the scheduler token.

use crate::scheduler::Explorer;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Error returned by [`JoinHandle::join`] when the joined virtual thread
/// panicked. The panic message is recorded in the exploration's failure
/// report, not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinError;

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("joined loom vthread panicked")
    }
}

impl std::error::Error for JoinError {}

/// Handle to a spawned virtual thread.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinHandle")
            .field("tid", &self.tid)
            .finish_non_exhaustive()
    }
}

impl<T> JoinHandle<T> {
    /// Blocks in model time until the virtual thread finishes, returning
    /// its result (`Err` if it panicked).
    pub fn join(self) -> Result<T, JoinError> {
        Explorer::join_vthread(self.tid);
        // Uncontended by construction: the target wrote its result while
        // holding the scheduler token and has since finished.
        self.result
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
            .ok_or(JoinError)
    }
}

/// Spawns a new virtual thread inside the model.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let tid = Explorer::spawn_vthread(Box::new(move || {
        let value = f();
        *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(value);
    }));
    JoinHandle { tid, result }
}
