//! The schedule explorer: real OS threads serialized down to one runnable
//! virtual thread at a time by a token (mutex + condvar), with a *choice
//! point* before every synchronization operation. One execution follows a
//! forced schedule prefix and records every choice it makes; the driver in
//! `lib.rs` then backtracks depth-first by bumping the deepest choice that
//! still has unexplored alternatives. Deterministic user code + deterministic
//! scheduling = exhaustive enumeration of sync-op interleavings.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Panic payload used to tear down parked virtual threads once an execution
/// has failed (assertion panic or deadlock). Never escapes the crate: the
/// panic hook filter and `vthread_main` both swallow it.
pub(crate) struct SchedAbort;

/// Scheduling state of one virtual thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Ready,
    Blocked,
    Finished,
}

/// What a blocked virtual thread is waiting for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BlockOn {
    /// Waiting to acquire model mutex with this id.
    Mutex(usize),
    /// Waiting for this virtual thread to finish.
    Join(usize),
}

/// One recorded scheduling decision: which of the `alternatives` enabled
/// threads ran (index into the sorted enabled list, not a tid).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChoicePoint {
    pub(crate) chosen: usize,
    pub(crate) alternatives: usize,
}

struct SchedState {
    runs: Vec<Run>,
    blocked_on: Vec<Option<BlockOn>>,
    /// Tid currently holding the run token.
    current: usize,
    /// Maximum preemptive context switches per execution (None = no limit,
    /// fully exhaustive exploration).
    preemption_bound: Option<usize>,
    /// Preemptive switches taken so far this execution.
    preemptions: usize,
    /// Forced choices replayed from a previous execution (DFS backtracking).
    prefix: Vec<usize>,
    /// How many choice points have been passed so far this execution.
    step: usize,
    trace: Vec<ChoicePoint>,
    failure: Option<String>,
    /// Once set, every parked virtual thread unwinds out via [`SchedAbort`].
    abort: bool,
    /// Model mutex id -> owning tid.
    mutex_owner: Vec<Option<usize>>,
    /// Real handles of spawned vthreads, joined by the driver at the end.
    handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Explorer {
    state: Mutex<SchedState>,
    cv: Condvar,
}

/// Per-OS-thread pointer back to the explorer driving it.
struct Ctx {
    exp: Arc<Explorer>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Result of one complete execution under one schedule.
pub(crate) struct ExecOutcome {
    pub(crate) trace: Vec<ChoicePoint>,
    pub(crate) failure: Option<String>,
}

impl Explorer {
    fn with_ctx<R>(f: impl FnOnce(&Arc<Explorer>, usize) -> R) -> R {
        CTX.with(|c| {
            let borrow = c.borrow();
            let ctx = borrow
                .as_ref()
                .expect("ssfa-loom primitive used outside loom::model / Builder::check");
            f(&ctx.exp, ctx.tid)
        })
    }

    /// The yield point every sync op passes through *before* performing its
    /// effect: pick who runs next (a recorded choice), then wait until the
    /// token comes back to the caller.
    pub(crate) fn yield_point() {
        // During unwind (guard drops on a panicking thread) we must not
        // park: the wrapper in `vthread_main` will run teardown.
        if std::thread::panicking() {
            return;
        }
        Self::with_ctx(|exp, tid| {
            let st = exp.state.lock().unwrap();
            let st = exp.pick_next(st);
            exp.wait_for_token(st, tid);
        });
    }

    /// Chooses the next runnable thread, records the choice, and wakes it.
    /// Detects global deadlock (nothing enabled, not everything finished).
    fn pick_next<'a>(&'a self, mut st: MutexGuard<'a, SchedState>) -> MutexGuard<'a, SchedState> {
        let mut enabled: Vec<usize> = (0..st.runs.len())
            .filter(|&i| st.runs[i] == Run::Ready)
            .collect();
        // Preemption bounding (loom-style): once the budget is spent, a
        // still-runnable current thread must keep running; the schedule
        // only branches where a switch is forced (block/finish). With
        // bound None this is a no-op and exploration stays exhaustive.
        let prev = st.current;
        if let Some(bound) = st.preemption_bound {
            if st.preemptions >= bound && st.runs.get(prev) == Some(&Run::Ready) {
                enabled = vec![prev];
            }
        }
        if enabled.is_empty() {
            if st.runs.iter().all(|&r| r == Run::Finished) {
                // Execution complete; wake the driver.
                self.cv.notify_all();
                return st;
            }
            st.failure.get_or_insert_with(|| {
                "deadlock: every unfinished virtual thread is blocked".to_string()
            });
            st.abort = true;
            self.cv.notify_all();
            return st;
        }
        let idx = if st.step < st.prefix.len() {
            // Replaying a forced prefix. Deterministic code makes the
            // enabled set identical to the recording run; min() keeps a
            // misuse from panicking instead of producing a wrong schedule.
            st.prefix[st.step].min(enabled.len() - 1)
        } else {
            0
        };
        st.trace.push(ChoicePoint {
            chosen: idx,
            alternatives: enabled.len(),
        });
        st.step += 1;
        st.current = enabled[idx];
        // Switching away from a thread that could have kept running is a
        // preemption; a switch forced by block/finish is not.
        if st.current != prev && st.runs.get(prev) == Some(&Run::Ready) {
            st.preemptions += 1;
        }
        self.cv.notify_all();
        st
    }

    /// Parks until `me` is Ready and holds the token. Panics with
    /// [`SchedAbort`] when the execution is being torn down.
    fn wait_for_token(&self, mut st: MutexGuard<'_, SchedState>, me: usize) {
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(SchedAbort);
            }
            if st.runs[me] == Run::Ready && st.current == me {
                return;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Registers a new model mutex, returning its id.
    pub(crate) fn register_mutex() -> usize {
        Self::with_ctx(|exp, _| {
            let mut st = exp.state.lock().unwrap();
            st.mutex_owner.push(None);
            st.mutex_owner.len() - 1
        })
    }

    /// Acquires model mutex `id` for the calling vthread, blocking (in
    /// model time) while another vthread owns it.
    pub(crate) fn acquire_mutex(id: usize) {
        Self::yield_point();
        Self::with_ctx(|exp, me| loop {
            let mut st = exp.state.lock().unwrap();
            if st.abort {
                drop(st);
                std::panic::panic_any(SchedAbort);
            }
            if st.mutex_owner[id].is_none() {
                st.mutex_owner[id] = Some(me);
                return;
            }
            // Contended: block until the owner releases, then retry (another
            // waiter may get there first — that re-block is itself a
            // legitimate interleaving).
            st.runs[me] = Run::Blocked;
            st.blocked_on[me] = Some(BlockOn::Mutex(id));
            let st = exp.pick_next(st);
            exp.wait_for_token(st, me);
        });
    }

    /// Releases model mutex `id`, waking every vthread blocked on it, then
    /// yields. Safe to call during unwind (no parking, bookkeeping only).
    pub(crate) fn release_mutex(id: usize) {
        Self::with_ctx(|exp, me| {
            let mut st = exp.state.lock().unwrap();
            st.mutex_owner[id] = None;
            for t in 0..st.runs.len() {
                if st.runs[t] == Run::Blocked && st.blocked_on[t] == Some(BlockOn::Mutex(id)) {
                    st.blocked_on[t] = None;
                    st.runs[t] = Run::Ready;
                }
            }
            if std::thread::panicking() || st.abort {
                exp.notify_only(st);
                return;
            }
            let st = exp.pick_next(st);
            exp.wait_for_token(st, me);
        });
    }

    fn notify_only(&self, st: MutexGuard<'_, SchedState>) {
        drop(st);
        self.cv.notify_all();
    }

    /// Registers and starts a new virtual thread running `body`.
    pub(crate) fn spawn_vthread(body: Box<dyn FnOnce() + Send>) -> usize {
        Self::with_ctx(|exp, _| {
            let tid = {
                let mut st = exp.state.lock().unwrap();
                st.runs.push(Run::Ready);
                st.blocked_on.push(None);
                st.runs.len() - 1
            };
            let e2 = exp.clone();
            let handle = std::thread::Builder::new()
                .name(format!("loom-vthread-{tid}"))
                .spawn(move || vthread_main(e2, tid, body))
                .expect("spawn loom vthread");
            exp.state.lock().unwrap().handles.push(handle);
            tid
        })
    }

    /// Blocks (in model time) until vthread `target` finishes.
    pub(crate) fn join_vthread(target: usize) {
        Self::yield_point();
        Self::with_ctx(|exp, me| {
            let mut st = exp.state.lock().unwrap();
            if st.abort {
                drop(st);
                std::panic::panic_any(SchedAbort);
            }
            if st.runs[target] != Run::Finished {
                st.runs[me] = Run::Blocked;
                st.blocked_on[me] = Some(BlockOn::Join(target));
                let st = exp.pick_next(st);
                exp.wait_for_token(st, me);
            }
        });
    }

    /// Marks `me` finished, force-releases anything it still owns, wakes
    /// joiners, and either schedules the next thread or (on failure) tears
    /// the execution down.
    fn finish(&self, me: usize, failure: Option<String>) {
        let mut st = self.state.lock().unwrap();
        st.runs[me] = Run::Finished;
        // A thread torn down while parked still carries its block marker;
        // clear it so a later mutex release cannot resurrect it to Ready.
        st.blocked_on[me] = None;
        // Normal unwind drops guards first, so owned mutexes are usually
        // already released; this is the belt-and-braces path.
        for id in 0..st.mutex_owner.len() {
            if st.mutex_owner[id] == Some(me) {
                st.mutex_owner[id] = None;
                for t in 0..st.runs.len() {
                    if st.runs[t] == Run::Blocked && st.blocked_on[t] == Some(BlockOn::Mutex(id)) {
                        st.blocked_on[t] = None;
                        st.runs[t] = Run::Ready;
                    }
                }
            }
        }
        for t in 0..st.runs.len() {
            if st.runs[t] == Run::Blocked && st.blocked_on[t] == Some(BlockOn::Join(me)) {
                st.blocked_on[t] = None;
                st.runs[t] = Run::Ready;
            }
        }
        if let Some(msg) = failure {
            st.failure.get_or_insert(msg);
            st.abort = true;
            self.notify_only(st);
            return;
        }
        if st.abort {
            self.notify_only(st);
            return;
        }
        drop(self.pick_next(st));
    }
}

/// Entry point of every virtual thread's real OS thread.
fn vthread_main(exp: Arc<Explorer>, tid: usize, body: Box<dyn FnOnce() + Send>) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            exp: exp.clone(),
            tid,
        })
    });
    let result = catch_unwind(AssertUnwindSafe(|| {
        let st = exp.state.lock().unwrap();
        exp.wait_for_token(st, tid);
        body();
    }));
    let failure = match result {
        Ok(()) => None,
        Err(payload) if payload.is::<SchedAbort>() => None,
        Err(payload) => Some(panic_message(payload.as_ref())),
    };
    exp.finish(tid, failure);
}

/// Runs the model closure once under the given forced schedule prefix and
/// returns the full choice trace plus any failure.
pub(crate) fn run_once<F>(
    f: &Arc<F>,
    prefix: Vec<usize>,
    preemption_bound: Option<usize>,
) -> ExecOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let exp = Arc::new(Explorer {
        state: Mutex::new(SchedState {
            runs: vec![Run::Ready],
            blocked_on: vec![None],
            current: 0,
            preemption_bound,
            preemptions: 0,
            prefix,
            step: 0,
            trace: Vec::new(),
            failure: None,
            abort: false,
            mutex_owner: Vec::new(),
            handles: Vec::new(),
        }),
        cv: Condvar::new(),
    });
    let e2 = exp.clone();
    let f2 = Arc::clone(f);
    let root = std::thread::Builder::new()
        .name("loom-vthread-0".to_string())
        .spawn(move || vthread_main(e2, 0, Box::new(move || f2())))
        .expect("spawn loom root vthread");
    {
        let mut st = exp.state.lock().unwrap();
        while !st.runs.iter().all(|&r| r == Run::Finished) {
            st = exp.cv.wait(st).unwrap();
        }
    }
    let handles = std::mem::take(&mut exp.state.lock().unwrap().handles);
    let _ = root.join();
    for h in handles {
        let _ = h.join();
    }
    let st = exp.state.lock().unwrap();
    ExecOutcome {
        trace: st.trace.clone(),
        failure: st.failure.clone(),
    }
}

/// Installs (once, process-wide) a panic hook that silences the
/// [`SchedAbort`] teardown panics and panics on `loom-vthread-*` threads —
/// their messages are captured into the [`ExecOutcome`] instead, so the
/// default hook would only add noise that the libtest harness cannot
/// capture (it unwinds on a non-test thread).
pub(crate) fn install_panic_filter() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<SchedAbort>() {
                return;
            }
            if std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("loom-vthread-"))
            {
                return;
            }
            prev(info);
        }));
    });
}
