//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal wall-clock benchmark harness exposing the API subset
//! its benches use: [`Criterion::benchmark_group`], `sample_size`,
//! `throughput`, `bench_function`, [`Bencher::iter`], `finish`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! There is no statistical analysis, warm-up scheduling, or HTML report:
//! each benchmark runs `sample_size` timed samples (after one warm-up
//! call) and prints min/median/mean wall-clock per iteration, plus
//! throughput when one was declared. That is enough to compare code paths
//! in this repo (the benches exist to contrast implementations, not to
//! publish microbenchmark numbers).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Declared throughput for a benchmark, used to derive rate output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// The timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_target: usize,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call so lazy one-time costs (page faults,
        // allocator growth) don't land in the first sample.
        let _ = routine();

        // Pick an iteration count that makes each sample's duration
        // comfortably larger than timer resolution.
        let probe = Instant::now();
        let _ = routine();
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(2).as_nanos() / once.as_nanos()).max(1);
        self.iters_per_sample = u64::try_from(per_sample).unwrap_or(u64::MAX).min(10_000);

        for _ in 0..self.sample_target {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                let _ = routine();
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput so results include a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 1,
            sample_target: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{}/{id}: no samples collected", self.name);
            return self;
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        print!(
            "{}/{id}: min {} | median {} | mean {} ({} samples x {} iters)",
            self.name,
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            samples.len(),
            bencher.iters_per_sample,
        );
        if let Some(tp) = self.throughput {
            let secs = median.as_secs_f64().max(1e-12);
            match tp {
                Throughput::Bytes(n) => {
                    print!(" | {:.1} MiB/s", n as f64 / secs / (1024.0 * 1024.0))
                }
                Throughput::Elements(n) => print!(" | {:.0} elem/s", n as f64 / secs),
            }
        }
        println!();
        self
    }

    /// Ends the group (output is already printed per-benchmark).
    pub fn finish(&mut self) {}
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} us", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// The benchmark manager passed to each `criterion_group!` target.
#[derive(Default, Debug)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group (honors `--bench`/`--test` harness
/// flags by ignoring them).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; a plain-main
            // harness can ignore them. `--test` means "smoke-run", which
            // this harness already is.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Bytes(1024));
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }
}
