//! Property tests over the statistical substrate: mathematical identities
//! that must hold for all parameter values, not just the unit-test points.

use proptest::prelude::*;

use ssfa_stats::dist::{ContinuousDist, Exponential, Gamma, LogNormal, Normal, Weibull};
use ssfa_stats::special::{
    chi_square_sf, digamma, incomplete_beta_reg, inverse_lower_gamma_reg, ln_gamma,
    lower_gamma_reg, std_normal_cdf, std_normal_quantile, upper_gamma_reg,
};

proptest! {
    #[test]
    fn gamma_recurrence_holds(x in 0.05f64..50.0) {
        // Γ(x+1) = x·Γ(x)  ⇔  lnΓ(x+1) = ln x + lnΓ(x)
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-8, "x={x}: {lhs} vs {rhs}");
    }

    #[test]
    fn digamma_recurrence_holds(x in 0.05f64..50.0) {
        // ψ(x+1) = ψ(x) + 1/x
        let lhs = digamma(x + 1.0);
        let rhs = digamma(x) + 1.0 / x;
        prop_assert!((lhs - rhs).abs() < 1e-8, "x={x}");
    }

    #[test]
    fn incomplete_gamma_is_complementary(a in 0.05f64..60.0, x in 0.0f64..200.0) {
        let p = lower_gamma_reg(a, x);
        let q = upper_gamma_reg(a, x);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        prop_assert!((p + q - 1.0).abs() < 1e-9, "a={a} x={x}: P+Q = {}", p + q);
    }

    #[test]
    fn incomplete_gamma_is_monotone_in_x(a in 0.1f64..30.0, x in 0.0f64..50.0, dx in 0.001f64..5.0) {
        prop_assert!(lower_gamma_reg(a, x + dx) >= lower_gamma_reg(a, x) - 1e-12);
    }

    #[test]
    fn inverse_gamma_round_trips(a in 0.1f64..40.0, p in 0.001f64..0.999) {
        let x = inverse_lower_gamma_reg(a, p);
        prop_assert!(x >= 0.0);
        prop_assert!((lower_gamma_reg(a, x) - p).abs() < 1e-6, "a={a} p={p} x={x}");
    }

    #[test]
    fn normal_cdf_quantile_round_trip(p in 0.0001f64..0.9999) {
        let x = std_normal_quantile(p);
        prop_assert!((std_normal_cdf(x) - p).abs() < 1e-8);
    }

    #[test]
    fn incomplete_beta_symmetry(a in 0.1f64..20.0, b in 0.1f64..20.0, x in 0.001f64..0.999) {
        let lhs = incomplete_beta_reg(a, b, x);
        let rhs = 1.0 - incomplete_beta_reg(b, a, 1.0 - x);
        prop_assert!((lhs - rhs).abs() < 1e-8, "a={a} b={b} x={x}");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&lhs));
    }

    #[test]
    fn chi_square_sf_is_monotone_decreasing(k in 1.0f64..40.0, x in 0.0f64..80.0, dx in 0.01f64..10.0) {
        prop_assert!(chi_square_sf(x + dx, k) <= chi_square_sf(x, k) + 1e-12);
    }

    #[test]
    fn exponential_cdf_properties(rate in 0.01f64..100.0, x in 0.0f64..100.0) {
        let d = Exponential::new(rate).unwrap();
        let c = d.cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
        // Memorylessness: P(X > s+t) = P(X > s)·P(X > t).
        let s = x / 2.0;
        let lhs = 1.0 - d.cdf(x);
        let rhs = (1.0 - d.cdf(s)) * (1.0 - d.cdf(x - s));
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn weibull_and_gamma_medians_match_quantile(shape in 0.2f64..8.0, scale in 0.01f64..100.0) {
        for dist in [
            Box::new(Weibull::new(shape, scale).unwrap()) as Box<dyn ContinuousDist>,
            Box::new(Gamma::new(shape, scale).unwrap()),
        ] {
            let median = dist.quantile(0.5);
            prop_assert!((dist.cdf(median) - 0.5).abs() < 1e-7, "{}", dist.name());
        }
    }

    #[test]
    fn lognormal_is_normal_in_log_space(mu in -3.0f64..3.0, sigma in 0.05f64..2.5, x in 0.01f64..50.0) {
        let ln = LogNormal::new(mu, sigma).unwrap();
        let n = Normal::new(mu, sigma).unwrap();
        prop_assert!((ln.cdf(x) - n.cdf(x.ln())).abs() < 1e-10);
    }

    #[test]
    fn sampling_stays_in_support(seed in 0u64..1_000, shape in 0.3f64..6.0, scale in 0.1f64..10.0) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dists: Vec<Box<dyn ContinuousDist>> = vec![
            Box::new(Exponential::new(1.0 / scale).unwrap()),
            Box::new(Weibull::new(shape, scale).unwrap()),
            Box::new(Gamma::new(shape, scale).unwrap()),
            Box::new(LogNormal::new(0.0, shape.min(2.0)).unwrap()),
        ];
        for d in &dists {
            for _ in 0..16 {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0, "{} sampled {x}", d.name());
            }
        }
    }

    #[test]
    fn ecdf_bounds_true_cdf_with_dkw(seed in 0u64..200) {
        // Dvoretzky–Kiefer–Wolfowitz: sup|F̂ − F| ≤ ε with prob ≥ 1−2e^{−2nε²};
        // with n = 800 and ε = 0.08, violation probability < 1e-4 per case.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let d = Exponential::new(1.0).unwrap();
        let xs: Vec<f64> = (0..800).map(|_| d.sample(&mut rng)).collect();
        let ecdf = ssfa_stats::ecdf::Ecdf::new(&xs).unwrap();
        for i in 1..20 {
            let x = i as f64 * 0.25;
            prop_assert!((ecdf.eval(x) - d.cdf(x)).abs() < 0.08, "at {x}");
        }
    }

    #[test]
    fn summary_is_translation_covariant(
        data in proptest::collection::vec(-1e3f64..1e3, 2..60),
        shift in -100.0f64..100.0,
    ) {
        use ssfa_stats::summary::Summary;
        let a = Summary::of(&data).unwrap();
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        let b = Summary::of(&shifted).unwrap();
        prop_assert!((b.mean - (a.mean + shift)).abs() < 1e-6);
        prop_assert!((b.variance - a.variance).abs() < 1e-4 * (1.0 + a.variance));
    }

    #[test]
    fn histogram_never_loses_observations(
        data in proptest::collection::vec(-1e6f64..1e6, 0..200),
        bins in 1usize..40,
    ) {
        let mut h = ssfa_stats::histogram::Histogram::linear(-1e3, 1e3, bins).unwrap();
        h.extend(data.iter().copied());
        prop_assert_eq!(h.total(), data.len() as u64);
    }
}
