//! Empirical cumulative distribution functions.
//!
//! The paper's Figure 9 plots empirical CDFs of time between failures on a
//! log-scaled time axis; [`Ecdf`] provides evaluation at arbitrary points,
//! the "fraction below threshold" statistic (e.g. *48% of failures arrive
//! within 10,000 s of the previous one*), and sampling of plot series.

use crate::{Result, StatsError};

/// An empirical CDF over a sample of real observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample (any order; copied and sorted).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NotEnoughData`] for an empty sample and
    /// [`StatsError::BadSample`] if any observation is not finite.
    pub fn new(data: &[f64]) -> Result<Ecdf> {
        if data.is_empty() {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::BadSample {
                reason: "non-finite observation",
            });
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        Ok(Ecdf { sorted })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF holds no observations (never true for a
    /// successfully-constructed value).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F̂(x)`: fraction of observations ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of observations <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of observations strictly below `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v < x);
        count as f64 / self.sorted.len() as f64
    }

    /// Empirical `q`-quantile (inverse CDF), `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile q must be in [0,1], got {q}"
        );
        if q == 0.0 {
            return self.sorted[0];
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// The underlying sorted observations.
    pub fn observations(&self) -> &[f64] {
        &self.sorted
    }

    /// Samples `(x, F̂(x))` pairs at `n` log-spaced points between `lo` and
    /// `hi` — the series the paper plots in Figure 9 (log-scaled time axis).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `n ≥ 2`.
    pub fn log_spaced_series(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
        assert!(n >= 2, "need at least two points");
        let ratio = (hi / lo).ln();
        (0..n)
            .map(|i| {
                let x = lo * (ratio * i as f64 / (n - 1) as f64).exp();
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_counts_inclusively() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(2.5), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn fraction_below_is_strict() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(e.fraction_below(2.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
    }

    #[test]
    fn quantiles_hit_order_statistics() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.25), 10.0);
        assert_eq!(e.quantile(0.5), 20.0);
        assert_eq!(e.quantile(1.0), 40.0);
    }

    #[test]
    fn construction_rejects_empty_and_nan() {
        assert!(Ecdf::new(&[]).is_err());
        assert!(Ecdf::new(&[1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn log_series_is_monotone_nondecreasing() {
        let data: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let e = Ecdf::new(&data).unwrap();
        let series = e.log_spaced_series(1.0, 1e4, 50);
        assert_eq!(series.len(), 50);
        for pair in series.windows(2) {
            assert!(pair[1].0 > pair[0].0);
            assert!(pair[1].1 >= pair[0].1);
        }
        assert!((series.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eval_converges_to_true_cdf() {
        // ECDF of uniform data approximates F(x) = x.
        let n = 10_000;
        let data: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let e = Ecdf::new(&data).unwrap();
        for &x in &[0.1, 0.37, 0.5, 0.93] {
            assert!((e.eval(x) - x).abs() < 1e-3);
        }
    }
}
