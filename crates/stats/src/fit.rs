//! Maximum-likelihood fitting of the distributions the paper compares
//! against disk-failure interarrival times (Figure 9): exponential,
//! Weibull, and Gamma.
//!
//! Each fitter returns the fitted distribution plus its log-likelihood so
//! callers can rank candidate models; [`fit_all`] runs the paper's three
//! candidates and [`best_fit`] picks the winner by log-likelihood (all
//! three have two or fewer parameters, so AIC ordering matches
//! log-likelihood ordering up to the exponential's one-parameter bonus,
//! which [`FittedModel::aic`] exposes).

use crate::dist::{ContinuousDist, Exponential, Gamma, Weibull};
use crate::special::{digamma, trigamma};
use crate::{Result, StatsError};

/// A fitted exponential model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialFit {
    /// MLE rate `λ̂ = 1 / x̄`.
    pub rate: f64,
    /// Log-likelihood at the MLE.
    pub log_likelihood: f64,
}

/// A fitted Weibull model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeibullFit {
    /// MLE shape `k̂`.
    pub shape: f64,
    /// MLE scale `λ̂`.
    pub scale: f64,
    /// Log-likelihood at the MLE.
    pub log_likelihood: f64,
}

/// A fitted Gamma model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaFit {
    /// MLE shape `k̂`.
    pub shape: f64,
    /// MLE scale `θ̂`.
    pub scale: f64,
    /// Log-likelihood at the MLE.
    pub log_likelihood: f64,
}

/// One fitted candidate model, boxed for uniform treatment.
pub struct FittedModel {
    /// The fitted distribution.
    pub dist: Box<dyn ContinuousDist>,
    /// Number of free parameters.
    pub params: usize,
    /// Log-likelihood at the MLE.
    pub log_likelihood: f64,
}

impl FittedModel {
    /// Akaike information criterion: `2k − 2 ln L̂` (lower is better).
    pub fn aic(&self) -> f64 {
        2.0 * self.params as f64 - 2.0 * self.log_likelihood
    }
}

impl std::fmt::Debug for FittedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FittedModel")
            .field("dist", &self.dist.name())
            .field("params", &self.params)
            .field("log_likelihood", &self.log_likelihood)
            .finish()
    }
}

fn check_positive_sample(data: &[f64], needed: usize) -> Result<()> {
    if data.len() < needed {
        return Err(StatsError::NotEnoughData {
            needed,
            got: data.len(),
        });
    }
    if data.iter().any(|&x| !x.is_finite() || x <= 0.0) {
        return Err(StatsError::BadSample {
            reason: "observations must be positive and finite",
        });
    }
    Ok(())
}

fn log_likelihood(dist: &dyn ContinuousDist, data: &[f64]) -> f64 {
    data.iter().map(|&x| dist.ln_pdf(x)).sum()
}

/// Fits an exponential distribution by maximum likelihood.
///
/// # Errors
///
/// Returns an error for samples smaller than 2 or containing non-positive
/// observations.
pub fn fit_exponential(data: &[f64]) -> Result<ExponentialFit> {
    check_positive_sample(data, 2)?;
    let mean = data.iter().sum::<f64>() / data.len() as f64;
    let rate = 1.0 / mean;
    let dist = Exponential::new(rate)?;
    Ok(ExponentialFit {
        rate,
        log_likelihood: log_likelihood(&dist, data),
    })
}

/// Fits a Weibull distribution by maximum likelihood (Newton iteration on
/// the shape profile equation).
///
/// # Errors
///
/// Returns an error for samples smaller than 3, non-positive observations,
/// degenerate (all-equal) samples, or failed convergence.
pub fn fit_weibull(data: &[f64]) -> Result<WeibullFit> {
    check_positive_sample(data, 3)?;
    let n = data.len() as f64;
    let ln_xs: Vec<f64> = data.iter().map(|x| x.ln()).collect();
    let mean_ln = ln_xs.iter().sum::<f64>() / n;
    if data.iter().all(|&x| (x - data[0]).abs() < 1e-300) {
        return Err(StatsError::BadSample {
            reason: "degenerate sample (all equal)",
        });
    }

    // Method-of-moments style start: k ≈ 1.2 / stddev(ln x).
    let var_ln = ln_xs.iter().map(|l| (l - mean_ln).powi(2)).sum::<f64>() / n;
    let mut k = (1.2 / var_ln.sqrt()).clamp(0.02, 50.0);

    // Profile equation: g(k) = Σ xᵏ ln x / Σ xᵏ − 1/k − mean(ln x) = 0.
    let mut converged = false;
    for _ in 0..200 {
        let mut s0 = 0.0; // Σ xᵏ
        let mut s1 = 0.0; // Σ xᵏ ln x
        let mut s2 = 0.0; // Σ xᵏ (ln x)²
        for (&x, &lx) in data.iter().zip(&ln_xs) {
            let xk = x.powf(k);
            s0 += xk;
            s1 += xk * lx;
            s2 += xk * lx * lx;
        }
        let g = s1 / s0 - 1.0 / k - mean_ln;
        let dg = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
        let step = g / dg;
        let next = k - step;
        k = if next > 0.0 { next } else { k / 2.0 };
        if (step / k).abs() < 1e-10 {
            converged = true;
            break;
        }
    }
    if !converged || !k.is_finite() {
        return Err(StatsError::NoConvergence {
            routine: "fit_weibull",
        });
    }
    let scale = (data.iter().map(|x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
    let dist = Weibull::new(k, scale)?;
    Ok(WeibullFit {
        shape: k,
        scale,
        log_likelihood: log_likelihood(&dist, data),
    })
}

/// Fits a Gamma distribution by maximum likelihood (Newton iteration with
/// digamma/trigamma, started from the Minka closed-form approximation).
///
/// # Errors
///
/// Returns an error for samples smaller than 3, non-positive observations,
/// degenerate samples, or failed convergence.
pub fn fit_gamma(data: &[f64]) -> Result<GammaFit> {
    check_positive_sample(data, 3)?;
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let mean_ln = data.iter().map(|x| x.ln()).sum::<f64>() / n;
    let s = mean.ln() - mean_ln;
    if s <= 0.0 {
        // Happens only for (near-)degenerate samples by Jensen's inequality.
        return Err(StatsError::BadSample {
            reason: "degenerate sample (all equal)",
        });
    }

    // Minka's approximation as the starting point.
    let mut k = (3.0 - s + ((s - 3.0).powi(2) + 24.0 * s).sqrt()) / (12.0 * s);
    let mut converged = false;
    for _ in 0..200 {
        // Solve ln k − ψ(k) = s.
        let f = k.ln() - digamma(k) - s;
        let df = 1.0 / k - trigamma(k);
        let step = f / df;
        let next = k - step;
        k = if next > 0.0 { next } else { k / 2.0 };
        if (step / k).abs() < 1e-12 {
            converged = true;
            break;
        }
    }
    if !converged || !k.is_finite() || k <= 0.0 {
        return Err(StatsError::NoConvergence {
            routine: "fit_gamma",
        });
    }
    let scale = mean / k;
    let dist = Gamma::new(k, scale)?;
    Ok(GammaFit {
        shape: k,
        scale,
        log_likelihood: log_likelihood(&dist, data),
    })
}

/// Fits all three of the paper's candidate models.
///
/// Weibull/Gamma fits that fail to converge are simply omitted; the
/// exponential fit always succeeds for valid samples.
///
/// # Errors
///
/// Returns an error only if the sample itself is invalid (too small or
/// containing non-positive observations).
pub fn fit_all(data: &[f64]) -> Result<Vec<FittedModel>> {
    check_positive_sample(data, 3)?;
    let mut fits: Vec<FittedModel> = Vec::with_capacity(3);
    let exp = fit_exponential(data)?;
    fits.push(FittedModel {
        dist: Box::new(Exponential::new(exp.rate)?),
        params: 1,
        log_likelihood: exp.log_likelihood,
    });
    if let Ok(w) = fit_weibull(data) {
        fits.push(FittedModel {
            dist: Box::new(Weibull::new(w.shape, w.scale)?),
            params: 2,
            log_likelihood: w.log_likelihood,
        });
    }
    if let Ok(g) = fit_gamma(data) {
        fits.push(FittedModel {
            dist: Box::new(Gamma::new(g.shape, g.scale)?),
            params: 2,
            log_likelihood: g.log_likelihood,
        });
    }
    Ok(fits)
}

/// Fits all candidates and returns the one with the lowest AIC.
///
/// # Errors
///
/// Propagates sample-validity errors from [`fit_all`].
pub fn best_fit(data: &[f64]) -> Result<FittedModel> {
    let mut fits = fit_all(data)?;
    fits.sort_by(|a, b| f64::total_cmp(&a.aic(), &b.aic()));
    Ok(fits.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(dist: &dyn ContinuousDist, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| dist.sample(&mut rng)).collect()
    }

    #[test]
    fn exponential_fit_recovers_rate() {
        let truth = Exponential::new(0.4).unwrap();
        let data = sample(&truth, 20_000, 1);
        let fit = fit_exponential(&data).unwrap();
        assert!((fit.rate - 0.4).abs() < 0.02, "rate {}", fit.rate);
    }

    #[test]
    fn weibull_fit_recovers_parameters() {
        let truth = Weibull::new(1.6, 4.0).unwrap();
        let data = sample(&truth, 20_000, 2);
        let fit = fit_weibull(&data).unwrap();
        assert!((fit.shape - 1.6).abs() < 0.05, "shape {}", fit.shape);
        assert!((fit.scale - 4.0).abs() < 0.15, "scale {}", fit.scale);
    }

    #[test]
    fn weibull_fit_handles_shape_below_one() {
        let truth = Weibull::new(0.6, 2.0).unwrap();
        let data = sample(&truth, 20_000, 3);
        let fit = fit_weibull(&data).unwrap();
        assert!((fit.shape - 0.6).abs() < 0.03, "shape {}", fit.shape);
    }

    #[test]
    fn gamma_fit_recovers_parameters() {
        let truth = Gamma::new(2.5, 3.0).unwrap();
        let data = sample(&truth, 20_000, 4);
        let fit = fit_gamma(&data).unwrap();
        assert!((fit.shape - 2.5).abs() < 0.1, "shape {}", fit.shape);
        assert!((fit.scale - 3.0).abs() < 0.15, "scale {}", fit.scale);
    }

    #[test]
    fn gamma_fit_handles_subexponential_shape() {
        let truth = Gamma::new(0.5, 1.0).unwrap();
        let data = sample(&truth, 20_000, 5);
        let fit = fit_gamma(&data).unwrap();
        assert!((fit.shape - 0.5).abs() < 0.03, "shape {}", fit.shape);
    }

    #[test]
    fn fitters_reject_invalid_samples() {
        assert!(fit_exponential(&[1.0]).is_err());
        assert!(fit_exponential(&[1.0, -2.0, 3.0]).is_err());
        assert!(fit_weibull(&[1.0, 0.0, 2.0]).is_err());
        assert!(fit_gamma(&[]).is_err());
        assert!(fit_gamma(&[2.0, 2.0, 2.0, 2.0]).is_err());
        assert!(fit_weibull(&[2.0, 2.0, 2.0, 2.0]).is_err());
    }

    #[test]
    fn gamma_wins_on_gamma_data() {
        let truth = Gamma::new(3.0, 2.0).unwrap();
        let data = sample(&truth, 10_000, 6);
        let best = best_fit(&data).unwrap();
        assert_eq!(best.dist.name(), "Gamma");
    }

    #[test]
    fn exponential_is_not_beaten_meaningfully_on_exponential_data() {
        // On truly exponential data the 2-parameter models can only tie;
        // AIC's parameter penalty should let the exponential win.
        let truth = Exponential::new(1.0).unwrap();
        let data = sample(&truth, 10_000, 7);
        let best = best_fit(&data).unwrap();
        assert_eq!(best.dist.name(), "Exponential");
    }

    #[test]
    fn log_likelihood_orders_better_fits_higher() {
        let truth = Gamma::new(4.0, 1.0).unwrap();
        let data = sample(&truth, 5_000, 8);
        let fits = fit_all(&data).unwrap();
        let ll = |name: &str| {
            fits.iter()
                .find(|f| f.dist.name() == name)
                .map(|f| f.log_likelihood)
        };
        let exp_ll = ll("Exponential").unwrap();
        let gamma_ll = ll("Gamma").unwrap();
        assert!(
            gamma_ll > exp_ll,
            "gamma {gamma_ll} should beat exponential {exp_ll}"
        );
    }

    #[test]
    fn fitted_model_aic_penalizes_parameters() {
        let m1 = FittedModel {
            dist: Box::new(Exponential::new(1.0).unwrap()),
            params: 1,
            log_likelihood: -100.0,
        };
        let m2 = FittedModel {
            dist: Box::new(Gamma::new(1.0, 1.0).unwrap()),
            params: 2,
            log_likelihood: -100.0,
        };
        assert!(m1.aic() < m2.aic());
    }
}
