//! Hypothesis tests and confidence intervals used by the analysis.
//!
//! The paper uses Student's *t* tests to establish that shelf-model and
//! multipathing effects are significant at 99.5–99.9% confidence
//! (Figures 6, 7, 10), chi-square goodness-of-fit to accept the Gamma model
//! for disk-failure interarrivals (§5.1), and confidence intervals on
//! annualized failure rates (error bars throughout).

use crate::dist::ContinuousDist;
use crate::special::{chi_square_sf, std_normal_quantile, student_t_two_sided_p};
use crate::{Result, StatsError};

/// Result of a two-sample Welch *t* test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The *t* statistic.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl TTestResult {
    /// Whether the difference is significant at the given confidence level
    /// (e.g. `0.995` for the paper's "99.5% confidence").
    pub fn significant_at(&self, confidence: f64) -> bool {
        self.p_value < 1.0 - confidence
    }
}

/// Welch's two-sample *t* test from summary statistics.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] unless both groups have at least
/// two observations, and [`StatsError::BadSample`] if both variances are
/// zero.
pub fn welch_t_test(
    n1: usize,
    mean1: f64,
    var1: f64,
    n2: usize,
    mean2: f64,
    var2: f64,
) -> Result<TTestResult> {
    if n1 < 2 || n2 < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: n1.min(n2),
        });
    }
    let se1 = var1 / n1 as f64;
    let se2 = var2 / n2 as f64;
    let se = se1 + se2;
    if se <= 0.0 {
        return Err(StatsError::BadSample {
            reason: "both groups have zero variance",
        });
    }
    let t = (mean1 - mean2) / se.sqrt();
    let df = se * se / (se1 * se1 / (n1 as f64 - 1.0) + se2 * se2 / (n2 as f64 - 1.0));
    Ok(TTestResult {
        t,
        df,
        p_value: student_t_two_sided_p(t, df),
    })
}

/// Welch's two-sample *t* test directly from raw samples.
///
/// # Errors
///
/// As [`welch_t_test`].
pub fn welch_t_test_samples(a: &[f64], b: &[f64]) -> Result<TTestResult> {
    let sa = crate::summary::Summary::of(a)?;
    let sb = crate::summary::Summary::of(b)?;
    welch_t_test(sa.n, sa.mean, sa.variance, sb.n, sb.mean, sb.variance)
}

/// Result of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareResult {
    /// The chi-square statistic.
    pub statistic: f64,
    /// Degrees of freedom used.
    pub df: usize,
    /// Upper-tail p-value.
    pub p_value: f64,
}

impl ChiSquareResult {
    /// Whether the null hypothesis ("data follows the model") is rejected
    /// at significance level `alpha` (the paper uses 0.05).
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Chi-square goodness-of-fit of a sample against a continuous model.
///
/// Observations are binned into `bins` equal-probability bins under the
/// model (so expected counts are uniform, the textbook-recommended
/// binning); `fitted_params` degrees of freedom are deducted for
/// parameters estimated from the same data.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] unless the sample gives an
/// expected count of at least 5 per bin, and [`StatsError::BadParameter`]
/// for fewer than 3 bins or when no degrees of freedom remain.
pub fn chi_square_gof(
    data: &[f64],
    model: &dyn ContinuousDist,
    bins: usize,
    fitted_params: usize,
) -> Result<ChiSquareResult> {
    if bins < 3 {
        return Err(StatsError::BadParameter {
            name: "bins",
            value: bins as f64,
        });
    }
    let expected_per_bin = data.len() as f64 / bins as f64;
    if expected_per_bin < 5.0 {
        return Err(StatsError::NotEnoughData {
            needed: bins * 5,
            got: data.len(),
        });
    }
    if bins <= fitted_params + 1 {
        return Err(StatsError::BadParameter {
            name: "fitted_params",
            value: fitted_params as f64,
        });
    }

    // Count observations per equal-probability bin via the model CDF.
    let mut observed = vec![0u64; bins];
    for &x in data {
        let u = model.cdf(x).clamp(0.0, 1.0 - 1e-12);
        let idx = ((u * bins as f64) as usize).min(bins - 1);
        observed[idx] += 1;
    }
    let statistic: f64 = observed
        .iter()
        .map(|&o| {
            let d = o as f64 - expected_per_bin;
            d * d / expected_per_bin
        })
        .sum();
    let df = bins - 1 - fitted_params;
    Ok(ChiSquareResult {
        statistic,
        df,
        p_value: chi_square_sf(statistic, df as f64),
    })
}

/// Result of a Kolmogorov–Smirnov one-sample test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D = sup |F̂(x) − F(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution with the usual
    /// finite-sample correction).
    pub p_value: f64,
}

/// One-sample Kolmogorov–Smirnov test of a sample against a model CDF.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] for samples smaller than 5.
pub fn ks_test(data: &[f64], model: &dyn ContinuousDist) -> Result<KsResult> {
    if data.len() < 5 {
        return Err(StatsError::NotEnoughData {
            needed: 5,
            got: data.len(),
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = model.cdf(x);
        let above = (i as f64 + 1.0) / n - f;
        let below = f - i as f64 / n;
        d = d.max(above.max(below));
    }
    let lambda = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    // Q_KS(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²}
    let mut p = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64 * lambda).powi(2)).exp();
        p += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    Ok(KsResult {
        statistic: d,
        p_value: (2.0 * p).clamp(0.0, 1.0),
    })
}

/// A symmetric confidence interval around an estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub estimate: f64,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Confidence level, e.g. `0.995`.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval (the paper's "± x%" error bars).
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Whether the interval overlaps another.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lower <= other.upper && other.lower <= self.upper
    }
}

/// Confidence interval for a Poisson *rate* given `events` observed over
/// `exposure` units (normal approximation on the count; adequate for the
/// study's event counts, which are in the hundreds to thousands).
///
/// This is the interval behind the paper's AFR error bars: events are
/// failure counts, exposure is disk-years, the rate is the AFR.
///
/// # Errors
///
/// Returns [`StatsError::BadParameter`] for non-positive exposure or a
/// confidence level outside (0, 1).
pub fn poisson_rate_ci(events: u64, exposure: f64, confidence: f64) -> Result<ConfidenceInterval> {
    if !(exposure.is_finite() && exposure > 0.0) {
        return Err(StatsError::BadParameter {
            name: "exposure",
            value: exposure,
        });
    }
    if !(0.0 < confidence && confidence < 1.0) {
        return Err(StatsError::BadParameter {
            name: "confidence",
            value: confidence,
        });
    }
    let rate = events as f64 / exposure;
    let z = std_normal_quantile(0.5 + confidence / 2.0);
    let se = (events as f64).sqrt() / exposure;
    Ok(ConfidenceInterval {
        estimate: rate,
        lower: (rate - z * se).max(0.0),
        upper: rate + z * se,
        confidence,
    })
}

/// Two-sided test that two Poisson rates are equal, given event counts and
/// exposures (normal approximation).
///
/// Returns the z statistic and two-sided p-value.
///
/// # Errors
///
/// Returns [`StatsError::BadParameter`] for non-positive exposures, and
/// [`StatsError::NotEnoughData`] when both groups have zero events.
pub fn poisson_two_rate_test(
    events1: u64,
    exposure1: f64,
    events2: u64,
    exposure2: f64,
) -> Result<TTestResult> {
    for (name, e) in [("exposure1", exposure1), ("exposure2", exposure2)] {
        if !(e.is_finite() && e > 0.0) {
            return Err(StatsError::BadParameter { name, value: e });
        }
    }
    if events1 == 0 && events2 == 0 {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    let r1 = events1 as f64 / exposure1;
    let r2 = events2 as f64 / exposure2;
    let var = events1 as f64 / (exposure1 * exposure1) + events2 as f64 / (exposure2 * exposure2);
    let z = (r1 - r2) / var.sqrt();
    // Large-count normal approximation == t with huge df.
    let df = (events1 + events2) as f64;
    Ok(TTestResult {
        t: z,
        df,
        p_value: student_t_two_sided_p(z, df.max(30.0)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, Gamma};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn welch_t_test_detects_separated_means() {
        // Two clearly different groups.
        let r = welch_t_test(50, 10.0, 4.0, 50, 12.0, 4.0).unwrap();
        assert!(r.p_value < 1e-4, "p = {}", r.p_value);
        assert!(r.significant_at(0.999));
        // And identical groups are not significant.
        let r = welch_t_test(50, 10.0, 4.0, 50, 10.05, 4.0).unwrap();
        assert!(r.p_value > 0.5);
        assert!(!r.significant_at(0.95));
    }

    #[test]
    fn welch_t_is_symmetric() {
        let a = welch_t_test(30, 5.0, 1.0, 40, 6.0, 2.0).unwrap();
        let b = welch_t_test(40, 6.0, 2.0, 30, 5.0, 1.0).unwrap();
        assert!((a.t + b.t).abs() < 1e-12);
        assert!((a.p_value - b.p_value).abs() < 1e-12);
    }

    #[test]
    fn welch_t_rejects_degenerate_input() {
        assert!(welch_t_test(1, 1.0, 1.0, 10, 2.0, 1.0).is_err());
        assert!(welch_t_test(10, 1.0, 0.0, 10, 2.0, 0.0).is_err());
    }

    #[test]
    fn welch_from_samples_matches_summary_path() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 3.0, 4.0, 5.0, 9.0];
        let r1 = welch_t_test_samples(&a, &b).unwrap();
        let sa = crate::summary::Summary::of(&a).unwrap();
        let sb = crate::summary::Summary::of(&b).unwrap();
        let r2 = welch_t_test(sa.n, sa.mean, sa.variance, sb.n, sb.mean, sb.variance).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn chi_square_accepts_true_model_rejects_wrong_model() {
        let mut rng = StdRng::seed_from_u64(11);
        let truth = Gamma::new(2.0, 3.0).unwrap();
        let data: Vec<f64> = (0..5_000).map(|_| truth.sample(&mut rng)).collect();

        let good = chi_square_gof(&data, &truth, 20, 2).unwrap();
        assert!(
            !good.rejects_at(0.05),
            "true model rejected: p = {}",
            good.p_value
        );

        let wrong = Exponential::new(1.0 / truth.mean()).unwrap();
        let bad = chi_square_gof(&data, &wrong, 20, 1).unwrap();
        assert!(
            bad.rejects_at(0.05),
            "wrong model accepted: p = {}",
            bad.p_value
        );
        assert!(bad.statistic > good.statistic);
    }

    #[test]
    fn chi_square_guards_bin_counts() {
        let data = vec![1.0; 20];
        let model = Exponential::new(1.0).unwrap();
        assert!(chi_square_gof(&data, &model, 10, 1).is_err()); // <5 per bin
        assert!(chi_square_gof(&data, &model, 2, 0).is_err()); // too few bins
        assert!(chi_square_gof(&data, &model, 4, 3).is_err()); // df <= 0
    }

    #[test]
    fn ks_test_accepts_true_model_rejects_wrong_model() {
        let mut rng = StdRng::seed_from_u64(13);
        let truth = Exponential::new(0.5).unwrap();
        let data: Vec<f64> = (0..2_000).map(|_| truth.sample(&mut rng)).collect();

        let good = ks_test(&data, &truth).unwrap();
        assert!(
            good.p_value > 0.05,
            "true model rejected: p = {}",
            good.p_value
        );

        let wrong = Exponential::new(1.0).unwrap();
        let bad = ks_test(&data, &wrong).unwrap();
        assert!(bad.p_value < 1e-6);
        assert!(bad.statistic > good.statistic);
    }

    #[test]
    fn poisson_rate_ci_covers_true_rate() {
        // 500 events over 10_000 disk-years -> rate 5%.
        let ci = poisson_rate_ci(500, 10_000.0, 0.995).unwrap();
        assert!((ci.estimate - 0.05).abs() < 1e-12);
        assert!(ci.lower < 0.05 && ci.upper > 0.05);
        // Wider confidence -> wider interval.
        let narrow = poisson_rate_ci(500, 10_000.0, 0.90).unwrap();
        assert!(ci.half_width() > narrow.half_width());
        // Zero events -> interval pinned at zero below.
        let zero = poisson_rate_ci(0, 100.0, 0.95).unwrap();
        assert_eq!(zero.lower, 0.0);
        assert_eq!(zero.estimate, 0.0);
    }

    #[test]
    fn poisson_rate_ci_validates_inputs() {
        assert!(poisson_rate_ci(10, 0.0, 0.95).is_err());
        assert!(poisson_rate_ci(10, 100.0, 1.0).is_err());
    }

    #[test]
    fn two_rate_test_mirrors_figure_7_comparison() {
        // Figure 7(a): single path 1.82% vs dual path 0.91% interconnect
        // AFR. With the study's exposures these differ at 99.9%.
        let single = (1_820u64, 100_000.0); // 1.82% over 100k disk-years
        let dual = (455u64, 50_000.0); // 0.91% over 50k disk-years
        let r = poisson_two_rate_test(single.0, single.1, dual.0, dual.1).unwrap();
        assert!(r.significant_at(0.999), "p = {}", r.p_value);

        // Equal rates are not significant.
        let r = poisson_two_rate_test(500, 100_000.0, 251, 50_000.0).unwrap();
        assert!(!r.significant_at(0.95));
    }

    #[test]
    fn confidence_interval_overlap() {
        let a = ConfidenceInterval {
            estimate: 1.0,
            lower: 0.8,
            upper: 1.2,
            confidence: 0.95,
        };
        let b = ConfidenceInterval {
            estimate: 1.3,
            lower: 1.1,
            upper: 1.5,
            confidence: 0.95,
        };
        let c = ConfidenceInterval {
            estimate: 2.0,
            lower: 1.8,
            upper: 2.2,
            confidence: 0.95,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }
}
