//! Statistics substrate for storage failure analysis.
//!
//! The FAST'08 study leans on a small but specific statistical toolbox:
//! empirical CDFs of time-between-failures, maximum-likelihood fits of
//! exponential / Weibull / Gamma distributions with chi-square
//! goodness-of-fit tests, Student's *t* tests on failure rates, and
//! confidence intervals on annualized failure rates. None of the crates on
//! the approved dependency list provide these, so this crate implements them
//! from scratch on top of `rand`:
//!
//! - [`special`]: log-gamma, digamma/trigamma, erf, regularized incomplete
//!   gamma and beta functions, and their inverses.
//! - [`dist`]: continuous and discrete probability distributions with
//!   pdf/cdf/sampling.
//! - [`fit`]: maximum-likelihood estimation for the distributions the paper
//!   fits against disk-failure interarrival times.
//! - [`ecdf`]: empirical cumulative distribution functions.
//! - [`histogram`]: linear/log-binned histograms with text rendering.
//! - [`summary`]: descriptive statistics.
//! - [`hypothesis`]: chi-square GOF, Kolmogorov–Smirnov, Welch's *t*,
//!   and Poisson-rate tests/intervals.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use ssfa_stats::dist::{ContinuousDist, Gamma};
//! use ssfa_stats::fit::fit_gamma;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let g = Gamma::new(2.0, 3.0)?;
//! let data: Vec<f64> = (0..2000).map(|_| g.sample(&mut rng)).collect();
//! let fitted = fit_gamma(&data)?;
//! assert!((fitted.shape - 2.0).abs() < 0.2);
//! # Ok::<(), ssfa_stats::StatsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod ecdf;
pub mod fit;
pub mod histogram;
pub mod hypothesis;
pub mod special;
pub mod summary;

use std::fmt;

/// Errors produced by statistical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution parameter was outside its domain.
    BadParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The input sample was empty or too small for the routine.
    NotEnoughData {
        /// Minimum number of observations required.
        needed: usize,
        /// Number of observations provided.
        got: usize,
    },
    /// The input sample contained a value outside the routine's domain
    /// (e.g. non-positive observations for a Weibull fit).
    BadSample {
        /// Description of the domain violation.
        reason: &'static str,
    },
    /// An iterative routine failed to converge.
    NoConvergence {
        /// Which routine failed.
        routine: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::BadParameter { name, value } => {
                write!(f, "parameter `{name}` out of domain: {value}")
            }
            StatsError::NotEnoughData { needed, got } => {
                write!(f, "not enough data: needed {needed}, got {got}")
            }
            StatsError::BadSample { reason } => write!(f, "bad sample: {reason}"),
            StatsError::NoConvergence { routine } => {
                write!(f, "`{routine}` failed to converge")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;
