//! Descriptive statistics: means, variances, quantiles, and the
//! coefficient-of-variation summaries the paper reports (e.g. Finding 4's
//! "standard deviation of disk AFR is less than 11%").

use crate::{Result, StatsError};

/// Summary statistics of one sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance (n−1 denominator); 0 for n = 1.
    pub variance: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of a sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NotEnoughData`] for an empty sample and
    /// [`StatsError::BadSample`] if any observation is not finite.
    pub fn of(data: &[f64]) -> Result<Summary> {
        if data.is_empty() {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::BadSample {
                reason: "non-finite observation",
            });
        }
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let variance = if n > 1 {
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(Summary {
            n,
            mean,
            variance,
            min,
            max,
        })
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        self.stddev() / (self.n as f64).sqrt()
    }

    /// Coefficient of variation (stddev / mean) — the paper's
    /// "standard deviation of X%" relative measure. Returns `None` when the
    /// mean is zero.
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.stddev() / self.mean.abs())
        }
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample, by linear interpolation between
/// order statistics (type-7, the common default).
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] for an empty sample and
/// [`StatsError::BadParameter`] for `q` outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::BadParameter {
            name: "q",
            value: q,
        });
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Median (0.5-quantile) of a sample.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] for an empty sample.
pub fn median(data: &[f64]) -> Result<f64> {
    quantile(data, 0.5)
}

/// Mean of a sample as a plain helper (0 for an empty slice is *not*
/// returned — empty input is an error, matching [`Summary::of`]).
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] for an empty sample.
pub fn mean(data: &[f64]) -> Result<f64> {
    Summary::of(data).map(|s| s.mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic sample is 32/7.
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_rejects_empty_and_nan() {
        assert!(matches!(
            Summary::of(&[]),
            Err(StatsError::NotEnoughData { .. })
        ));
        assert!(matches!(
            Summary::of(&[1.0, f64::NAN]),
            Err(StatsError::BadSample { .. })
        ));
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.mean, 3.5);
    }

    #[test]
    fn coefficient_of_variation_matches_paper_usage() {
        // AFRs 0.6% .. 0.77% with ~8% relative spread (paper Finding 4).
        let afrs = [0.0060, 0.0065, 0.0070, 0.0077];
        let s = Summary::of(&afrs).unwrap();
        let cv = s.coefficient_of_variation().unwrap();
        assert!((0.05..0.15).contains(&cv), "cv = {cv}");
        let zero = Summary::of(&[0.0, 0.0]).unwrap();
        assert_eq!(zero.coefficient_of_variation(), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 4.0);
        assert!((quantile(&data, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!((quantile(&data, 0.25).unwrap() - 1.75).abs() < 1e-12);
        assert!(quantile(&data, 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn median_of_odd_sample_is_middle() {
        assert_eq!(median(&[5.0, 1.0, 3.0]).unwrap(), 3.0);
    }

    #[test]
    fn mean_helper_matches_summary() {
        assert!((mean(&[1.0, 2.0, 6.0]).unwrap() - 3.0).abs() < 1e-12);
        assert!(mean(&[]).is_err());
    }
}
