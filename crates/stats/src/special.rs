//! Special functions underpinning the distribution and test machinery.
//!
//! Implementations follow the classic numerically-stable formulations
//! (Lanczos approximation for `ln Γ`, Lentz continued fractions for the
//! incomplete gamma/beta functions, Acklam's rational approximation for the
//! normal quantile) and are accurate to ~1e-10 over the ranges the analysis
//! uses, which is far tighter than the sampling noise of any experiment.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients); absolute error
/// below 1e-10 for the analysis's range.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)`, for `x > 0`.
///
/// Recurrence to push the argument above 6, then the asymptotic series.
pub fn digamma(x: f64) -> f64 {
    let mut x = x;
    let mut result = 0.0;
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

/// Trigamma function `ψ'(x)`, for `x > 0`.
pub fn trigamma(x: f64) -> f64 {
    let mut x = x;
    let mut result = 0.0;
    while x < 6.0 {
        result += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result
        + inv
            * (1.0
                + 0.5 * inv
                + inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0 - inv2 / 30.0))))
}

/// Error function `erf(x)`, via the regularized incomplete gamma function.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else {
        lower_gamma_reg(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else {
        upper_gamma_reg(0.5, x * x)
    }
}

/// Standard normal CDF `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)` for `p ∈ (0, 1)` (Acklam's algorithm,
/// refined with one Halley step; relative error ≲ 1e-9).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "quantile probability must be in (0,1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Regularized lower incomplete gamma function `P(a, x)`, for `a > 0`,
/// `x ≥ 0`.
pub fn lower_gamma_reg(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        0.0
    } else if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn upper_gamma_reg(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        1.0
    } else if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_continued_fraction(a, x)
    }
}

/// Series representation of `P(a, x)` (converges fast for `x < a + 1`).
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of `Q(a, x)` (Lentz's method,
/// converges fast for `x ≥ a + 1`).
fn gamma_continued_fraction(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Inverse of the regularized lower incomplete gamma: solves
/// `P(a, x) = p` for `x`, given `a > 0`, `p ∈ [0, 1)`.
///
/// Used for chi-square quantiles. Newton iteration from a Wilson–Hilferty
/// starting point.
pub fn inverse_lower_gamma_reg(a: f64, p: f64) -> f64 {
    debug_assert!(a > 0.0 && (0.0..1.0).contains(&p));
    if p == 0.0 {
        return 0.0;
    }
    // Bracket the root: expand `hi` until P(a, hi) ≥ p.
    let mut lo = 0.0_f64;
    let mut hi = a.max(1.0);
    for _ in 0..200 {
        if lower_gamma_reg(a, hi) >= p {
            break;
        }
        hi *= 2.0;
    }
    // Wilson–Hilferty start, clamped into the bracket.
    let z = std_normal_quantile(p);
    let t = 1.0 - 2.0 / (9.0 * a) + z * (2.0 / (9.0 * a)).sqrt();
    let mut x = (a * t * t * t).clamp(1e-8, hi);
    let ln_ga = ln_gamma(a);
    // Newton with a bisection safeguard: the bracket always contains the
    // root, and any Newton step leaving it (the density underflows in the
    // far tails) falls back to bisection.
    for _ in 0..200 {
        let f = lower_gamma_reg(a, x) - p;
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        // dP/dx = x^{a-1} e^{-x} / Γ(a)
        let df = ((a - 1.0) * x.ln() - x - ln_ga).exp();
        let newton = if df > 0.0 && df.is_finite() {
            x - f / df
        } else {
            f64::NAN
        };
        let next = if newton.is_finite() && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
        let step = (next - x).abs();
        x = next;
        if step <= 1e-13 * x.max(1.0) || (hi - lo) <= 1e-13 * hi.max(1.0) {
            break;
        }
    }
    x
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `x ∈ [0, 1]` (continued fraction, Lentz's method).
pub fn incomplete_beta_reg(a: f64, b: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0 && (0.0..=1.0).contains(&x));
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry that keeps the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - incomplete_beta_reg(b, a, 1.0 - x)
    }
}

fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// Two-sided p-value of a Student's *t* statistic with `df` degrees of
/// freedom: `P(|T| ≥ |t|)`.
pub fn student_t_two_sided_p(t: f64, df: f64) -> f64 {
    debug_assert!(df > 0.0);
    let x = df / (df + t * t);
    incomplete_beta_reg(df / 2.0, 0.5, x)
}

/// Chi-square upper-tail probability `P(X ≥ x)` with `k` degrees of
/// freedom.
pub fn chi_square_sf(x: f64, k: f64) -> f64 {
    debug_assert!(k > 0.0 && x >= 0.0);
    upper_gamma_reg(k / 2.0, x / 2.0)
}

/// Chi-square quantile: the `p`-quantile of a chi-square with `k` degrees
/// of freedom.
pub fn chi_square_quantile(p: f64, k: f64) -> f64 {
    2.0 * inverse_lower_gamma_reg(k / 2.0, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0f64).ln(), 1e-10);
        close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-9);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-10);
        // Γ(3/2) = √π / 2
        close(
            ln_gamma(1.5),
            0.5 * std::f64::consts::PI.ln() - std::f64::consts::LN_2,
            1e-10,
        );
    }

    #[test]
    fn digamma_known_values() {
        const EULER: f64 = 0.577_215_664_901_532_9;
        close(digamma(1.0), -EULER, 1e-9);
        close(digamma(2.0), 1.0 - EULER, 1e-9);
        // ψ(1/2) = −γ − 2 ln 2
        close(digamma(0.5), -EULER - 2.0 * std::f64::consts::LN_2, 1e-9);
    }

    #[test]
    fn trigamma_known_values() {
        let pi2_6 = std::f64::consts::PI.powi(2) / 6.0;
        close(trigamma(1.0), pi2_6, 1e-9);
        close(trigamma(2.0), pi2_6 - 1.0, 1e-9);
    }

    #[test]
    fn digamma_is_derivative_of_ln_gamma() {
        for &x in &[0.7, 1.3, 2.5, 8.0, 25.0] {
            let h = 1e-6;
            let numeric = (ln_gamma(x + h) - ln_gamma(x - h)) / (2.0 * h);
            close(digamma(x), numeric, 1e-5);
        }
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-12);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-9);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-9);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-9);
        close(erfc(1.0), 1.0 - 0.842_700_792_949_714_9, 1e-9);
    }

    #[test]
    fn normal_cdf_and_quantile_invert() {
        for &p in &[1e-6, 0.001, 0.024, 0.2, 0.5, 0.8, 0.975, 0.999, 1.0 - 1e-6] {
            let x = std_normal_quantile(p);
            close(std_normal_cdf(x), p, 1e-9);
        }
        close(std_normal_quantile(0.975), 1.959_963_984_540_054, 1e-7);
        close(std_normal_quantile(0.995), 2.575_829_303_548_901, 1e-7);
    }

    #[test]
    fn incomplete_gamma_complementarity() {
        for &(a, x) in &[
            (0.5, 0.3),
            (1.0, 1.0),
            (3.5, 2.0),
            (10.0, 14.0),
            (2.0, 30.0),
        ] {
            close(lower_gamma_reg(a, x) + upper_gamma_reg(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn incomplete_gamma_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}.
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            close(lower_gamma_reg(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn inverse_gamma_inverts() {
        for &a in &[0.5, 1.0, 2.5, 10.0] {
            for &p in &[0.01, 0.2, 0.5, 0.9, 0.999] {
                let x = inverse_lower_gamma_reg(a, p);
                close(lower_gamma_reg(a, x), p, 1e-8);
            }
        }
    }

    #[test]
    fn incomplete_beta_symmetry_and_uniform_case() {
        // I_x(1,1) = x.
        for &x in &[0.1, 0.37, 0.9] {
            close(incomplete_beta_reg(1.0, 1.0, x), x, 1e-12);
        }
        // I_x(a,b) = 1 − I_{1−x}(b,a).
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.7), (5.0, 1.5, 0.2)] {
            close(
                incomplete_beta_reg(a, b, x),
                1.0 - incomplete_beta_reg(b, a, 1.0 - x),
                1e-10,
            );
        }
    }

    #[test]
    fn student_t_matches_known_critical_values() {
        // For df=10, t=2.228 is the 97.5% point: two-sided p = 0.05.
        close(student_t_two_sided_p(2.228_138_852, 10.0), 0.05, 1e-6);
        // df → large behaves like normal: t=1.96 ≈ p 0.05.
        close(student_t_two_sided_p(1.96, 100_000.0), 0.05, 1e-3);
    }

    #[test]
    fn chi_square_known_values() {
        // With k=1: P(X ≥ 3.841) ≈ 0.05.
        close(chi_square_sf(3.841_458_821, 1.0), 0.05, 1e-6);
        // With k=5: P(X ≥ 11.0705) ≈ 0.05.
        close(chi_square_sf(11.070_497_69, 5.0), 0.05, 1e-6);
        // Quantile inverts sf.
        for &k in &[1.0, 3.0, 7.0] {
            let q = chi_square_quantile(0.95, k);
            close(chi_square_sf(q, k), 0.05, 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "quantile probability")]
    fn quantile_rejects_out_of_range() {
        let _ = std_normal_quantile(1.5);
    }
}
