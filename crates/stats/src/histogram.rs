//! Histograms with linear or logarithmic binning and plain-text rendering.
//!
//! Time-between-failure data spans eight decades (seconds to years), so the
//! paper plots it on a log axis; [`Histogram::log`] bins the same way. The
//! text rendering gives experiment reports a quick visual of each
//! distribution without any plotting dependency.

use std::fmt;

use crate::{Result, StatsError};

/// How bin edges are spaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binning {
    /// Equal-width bins over `[lo, hi)`.
    Linear,
    /// Log-spaced bins over `[lo, hi)` (requires `lo > 0`).
    Log,
}

/// A fixed-bin histogram over `f64` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    binning: Binning,
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over
    /// `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] unless `lo < hi` (finite) and
    /// `bins ≥ 1`.
    pub fn linear(lo: f64, hi: f64, bins: usize) -> Result<Histogram> {
        Self::build(Binning::Linear, lo, hi, bins)
    }

    /// Creates an empty histogram with `bins` log-spaced bins over
    /// `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] unless `0 < lo < hi` (finite)
    /// and `bins ≥ 1`.
    pub fn log(lo: f64, hi: f64, bins: usize) -> Result<Histogram> {
        if lo <= 0.0 {
            return Err(StatsError::BadParameter {
                name: "lo",
                value: lo,
            });
        }
        Self::build(Binning::Log, lo, hi, bins)
    }

    fn build(binning: Binning, lo: f64, hi: f64, bins: usize) -> Result<Histogram> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(StatsError::BadParameter {
                name: "hi",
                value: hi,
            });
        }
        if bins == 0 {
            return Err(StatsError::BadParameter {
                name: "bins",
                value: 0.0,
            });
        }
        Ok(Histogram {
            binning,
            lo,
            hi,
            counts: vec![0; bins],
            below: 0,
            above: 0,
        })
    }

    /// Number of bins (excluding the under/overflow counters).
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// The bin index an observation falls into, or `None` for under/over
    /// flow.
    pub fn bin_of(&self, x: f64) -> Option<usize> {
        if !x.is_finite() || x < self.lo || x >= self.hi {
            return None;
        }
        let frac = match self.binning {
            Binning::Linear => (x - self.lo) / (self.hi - self.lo),
            Binning::Log => (x / self.lo).ln() / (self.hi / self.lo).ln(),
        };
        Some(((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1))
    }

    /// The `[start, end)` edges of a bin.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is out of range.
    pub fn edges(&self, bin: usize) -> (f64, f64) {
        assert!(bin < self.counts.len(), "bin {bin} out of range");
        let n = self.counts.len() as f64;
        match self.binning {
            Binning::Linear => {
                let w = (self.hi - self.lo) / n;
                (self.lo + bin as f64 * w, self.lo + (bin as f64 + 1.0) * w)
            }
            Binning::Log => {
                let r = (self.hi / self.lo).ln();
                (
                    self.lo * (r * bin as f64 / n).exp(),
                    self.lo * (r * (bin as f64 + 1.0) / n).exp(),
                )
            }
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        match self.bin_of(x) {
            Some(i) => self.counts[i] += 1,
            None if x < self.lo => self.below += 1,
            None => self.above += 1,
        }
    }

    /// Adds many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.add(x);
        }
    }

    /// Count in one bin.
    pub fn count(&self, bin: usize) -> u64 {
        self.counts[bin]
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.below
    }

    /// Observations at or above the range's upper edge.
    pub fn overflow(&self) -> u64 {
        self.above
    }

    /// Total observations, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.below + self.above
    }

    /// Renders a horizontal bar chart, `width` characters at full scale.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (a, b) = self.edges(i);
            let bar_len = ((c as f64 / max as f64) * width as f64).round() as usize;
            out.push_str(&format!(
                "{a:>12.3e} .. {b:>12.3e} |{:<width$}| {c}\n",
                "#".repeat(bar_len),
            ));
        }
        if self.below > 0 {
            out.push_str(&format!("{:>29} {}\n", "underflow:", self.below));
        }
        if self.above > 0 {
            out.push_str(&format!("{:>29} {}\n", "overflow:", self.above));
        }
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(40))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning_partitions_the_range() {
        let mut h = Histogram::linear(0.0, 10.0, 5).unwrap();
        h.extend([0.0, 1.9, 2.0, 5.5, 9.999, 10.0, -1.0]);
        assert_eq!(h.count(0), 2); // 0.0, 1.9
        assert_eq!(h.count(1), 1); // 2.0
        assert_eq!(h.count(2), 1); // 5.5
        assert_eq!(h.count(4), 1); // 9.999
        assert_eq!(h.overflow(), 1); // 10.0 (half-open)
        assert_eq!(h.underflow(), 1); // -1.0
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn log_binning_gives_equal_decades() {
        let h = Histogram::log(1.0, 1e4, 4).unwrap();
        // Each bin is one decade.
        for (i, expect) in [(0usize, (1.0, 10.0)), (3, (1e3, 1e4))] {
            let (a, b) = h.edges(i);
            assert!((a - expect.0).abs() / expect.0 < 1e-9);
            assert!((b - expect.1).abs() / expect.1 < 1e-9);
        }
        let mut h = h;
        h.extend([1.0, 5.0, 50.0, 5_000.0]);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(3), 1);
    }

    #[test]
    fn bin_of_matches_edges() {
        let h = Histogram::log(1.0, 1e8, 16).unwrap();
        for bin in 0..16 {
            let (a, b) = h.edges(bin);
            let mid = (a * b).sqrt();
            assert_eq!(h.bin_of(mid), Some(bin), "mid {mid} of bin {bin}");
            assert_eq!(h.bin_of(a), Some(bin), "left edge of bin {bin}");
        }
        assert_eq!(h.bin_of(f64::NAN), None);
        assert_eq!(h.bin_of(0.5), None);
        assert_eq!(h.bin_of(1e8), None);
    }

    #[test]
    fn constructors_reject_bad_ranges() {
        assert!(Histogram::linear(5.0, 5.0, 3).is_err());
        assert!(Histogram::linear(5.0, 1.0, 3).is_err());
        assert!(Histogram::linear(0.0, 1.0, 0).is_err());
        assert!(Histogram::log(0.0, 10.0, 3).is_err());
        assert!(Histogram::log(-1.0, 10.0, 3).is_err());
        assert!(Histogram::linear(0.0, f64::INFINITY, 3).is_err());
    }

    #[test]
    fn render_scales_bars_and_reports_flows() {
        let mut h = Histogram::linear(0.0, 3.0, 3).unwrap();
        h.extend([0.5, 0.6, 0.7, 1.5, 5.0]);
        let text = h.render(10);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // 3 bins + overflow
        assert!(lines[0].contains("##########")); // fullest bin at width
        assert!(lines[2].contains("| 0"));
        assert!(lines[3].contains("overflow: 1"));
        // Display uses the default width.
        assert!(!h.to_string().is_empty());
    }
}
