//! Probability distributions with pdf/cdf/moments/sampling.
//!
//! The paper fits exponential, Weibull, and Gamma distributions to
//! time-between-failure data (Figure 9) and the simulator samples from
//! exponential (hazard interarrivals), log-normal (episode durations),
//! Poisson (episode counts), and uniform (detection lag) distributions.
//! `rand` is only used for uniform bits; all shaping is done here.

use rand::Rng;

use crate::special::{ln_gamma, lower_gamma_reg, std_normal_cdf};
use crate::{Result, StatsError};

/// A continuous distribution over (a subset of) the real line.
///
/// Object safe so fitting harnesses can treat candidate models uniformly.
pub trait ContinuousDist {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative probability `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;
    /// Distribution mean.
    fn mean(&self) -> f64;
    /// Distribution variance.
    fn variance(&self) -> f64;
    /// Natural log of the density at `x` (more stable than `pdf(x).ln()`).
    fn ln_pdf(&self, x: f64) -> f64 {
        self.pdf(x).ln()
    }
    /// Draws one sample.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64;
    /// Short display name for reports ("Exponential", "Gamma", ...).
    fn name(&self) -> &'static str;
    /// The `p`-quantile (inverse CDF), `p ∈ (0, 1)`.
    ///
    /// The default implementation bisects the CDF, which converges for any
    /// monotone CDF; implementations override it with closed forms where
    /// they exist.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "quantile probability must be in (0,1), got {p}"
        );
        // Bracket the quantile starting from the mean.
        let mut lo = 0.0_f64;
        let mut hi = self.mean().max(1e-9);
        for _ in 0..200 {
            if self.cdf(hi) >= p {
                break;
            }
            hi *= 2.0;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) <= 1e-12 * hi.max(1.0) {
                break;
            }
        }
        0.5 * (lo + hi)
    }
}

fn check_positive(name: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(StatsError::BadParameter { name, value })
    }
}

/// Uniform sample in (0, 1), excluding exact zero so logs never blow up.
fn open_unit(rng: &mut dyn rand::RngCore) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            return u;
        }
    }
}

// ---------------------------------------------------------------------------
// Exponential
// ---------------------------------------------------------------------------

/// Exponential distribution with rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] unless `rate` is finite and
    /// positive.
    pub fn new(rate: f64) -> Result<Self> {
        Ok(Exponential {
            rate: check_positive("rate", rate)?,
        })
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDist for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.rate.ln() - self.rate * x
        }
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        -open_unit(rng).ln() / self.rate
    }

    fn name(&self) -> &'static str {
        "Exponential"
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "quantile probability must be in (0,1), got {p}"
        );
        -(1.0 - p).ln() / self.rate
    }
}

// ---------------------------------------------------------------------------
// Weibull
// ---------------------------------------------------------------------------

/// Weibull distribution with shape `k` and scale `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] unless both parameters are
    /// finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        Ok(Weibull {
            shape: check_positive("shape", shape)?,
            scale: check_positive("scale", scale)?,
        })
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl ContinuousDist for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return if self.shape < 1.0 {
                f64::INFINITY
            } else if self.shape == 1.0 {
                1.0 / self.scale
            } else {
                0.0
            };
        }
        self.ln_pdf(x).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-(x / self.scale).powf(self.shape)).exp_m1()
        }
    }

    fn mean(&self) -> f64 {
        self.scale * (ln_gamma(1.0 + 1.0 / self.shape)).exp()
    }

    fn variance(&self) -> f64 {
        let g1 = ln_gamma(1.0 + 1.0 / self.shape).exp();
        let g2 = ln_gamma(1.0 + 2.0 / self.shape).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = x / self.scale;
        self.shape.ln() - self.scale.ln() + (self.shape - 1.0) * z.ln() - z.powf(self.shape)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.scale * (-open_unit(rng).ln()).powf(1.0 / self.shape)
    }

    fn name(&self) -> &'static str {
        "Weibull"
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "quantile probability must be in (0,1), got {p}"
        );
        self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }
}

// ---------------------------------------------------------------------------
// Gamma
// ---------------------------------------------------------------------------

/// Gamma distribution with shape `k` and scale `θ` (mean `kθ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a Gamma distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] unless both parameters are
    /// finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        Ok(Gamma {
            shape: check_positive("shape", shape)?,
            scale: check_positive("scale", scale)?,
        })
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl ContinuousDist for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return if self.shape < 1.0 {
                f64::INFINITY
            } else if self.shape == 1.0 {
                1.0 / self.scale
            } else {
                0.0
            };
        }
        self.ln_pdf(x).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            lower_gamma_reg(self.shape, x / self.scale)
        }
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        (self.shape - 1.0) * x.ln()
            - x / self.scale
            - ln_gamma(self.shape)
            - self.shape * self.scale.ln()
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        // Marsaglia & Tsang (2000). For shape < 1, boost via
        // Gamma(k) = Gamma(k+1) · U^{1/k}.
        if self.shape < 1.0 {
            let boosted = Gamma {
                shape: self.shape + 1.0,
                scale: self.scale,
            };
            let u = open_unit(rng);
            return boosted.sample(rng) * u.powf(1.0 / self.shape);
        }
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            // Standard normal via Box-Muller.
            let u1 = open_unit(rng);
            let u2 = open_unit(rng);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let v = (1.0 + c * z).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = open_unit(rng);
            if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
                return d * v * self.scale;
            }
        }
    }

    fn name(&self) -> &'static str {
        "Gamma"
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "quantile probability must be in (0,1), got {p}"
        );
        self.scale * crate::special::inverse_lower_gamma_reg(self.shape, p)
    }
}

// ---------------------------------------------------------------------------
// Normal
// ---------------------------------------------------------------------------

/// Normal distribution with mean `μ` and standard deviation `σ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] unless `sigma` is finite and
    /// positive and `mu` is finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(StatsError::BadParameter {
                name: "mu",
                value: mu,
            });
        }
        Ok(Normal {
            mu,
            sigma: check_positive("sigma", sigma)?,
        })
    }

    /// The standard normal.
    pub fn standard() -> Self {
        Normal {
            mu: 0.0,
            sigma: 1.0,
        }
    }
}

impl ContinuousDist for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mu) / self.sigma)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u1 = open_unit(rng);
        let u2 = open_unit(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mu + self.sigma * z
    }

    fn name(&self) -> &'static str {
        "Normal"
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "quantile probability must be in (0,1), got {p}"
        );
        self.mu + self.sigma * crate::special::std_normal_quantile(p)
    }
}

// ---------------------------------------------------------------------------
// LogNormal
// ---------------------------------------------------------------------------

/// Log-normal distribution: `ln X ~ Normal(μ, σ²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution from the underlying normal's mean
    /// and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] unless `sigma` is finite and
    /// positive and `mu` is finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(StatsError::BadParameter {
                name: "mu",
                value: mu,
            });
        }
        Ok(LogNormal {
            mu,
            sigma: check_positive("sigma", sigma)?,
        })
    }

    /// Constructs the log-normal with a given median and a multiplicative
    /// spread factor (`sigma = ln(spread)`), a convenient parameterization
    /// for episode durations ("about 6 hours, within 3x either way").
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] for non-positive median/spread.
    pub fn from_median_spread(median: f64, spread: f64) -> Result<Self> {
        let median = check_positive("median", median)?;
        let spread = check_positive("spread", spread)?;
        if spread <= 1.0 {
            return Err(StatsError::BadParameter {
                name: "spread",
                value: spread,
            });
        }
        LogNormal::new(median.ln(), spread.ln())
    }
}

impl ContinuousDist for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u1 = open_unit(rng);
        let u2 = open_unit(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }

    fn name(&self) -> &'static str {
        "LogNormal"
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "quantile probability must be in (0,1), got {p}"
        );
        (self.mu + self.sigma * crate::special::std_normal_quantile(p)).exp()
    }
}

// ---------------------------------------------------------------------------
// Poisson
// ---------------------------------------------------------------------------

/// Poisson distribution with mean `λ` (a discrete distribution; provided
/// outside the [`ContinuousDist`] trait).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadParameter`] unless `lambda` is finite and
    /// positive.
    pub fn new(lambda: f64) -> Result<Self> {
        Ok(Poisson {
            lambda: check_positive("lambda", lambda)?,
        })
    }

    /// The mean `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Probability mass at `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        (k as f64 * self.lambda.ln() - self.lambda - ln_gamma(k as f64 + 1.0)).exp()
    }

    /// Cumulative probability `P(X ≤ k)`.
    pub fn cdf(&self, k: u64) -> f64 {
        crate::special::upper_gamma_reg(k as f64 + 1.0, self.lambda)
    }

    /// Draws one sample: Knuth's method for small means, normal
    /// approximation with continuity correction for large means.
    pub fn sample(&self, rng: &mut dyn rand::RngCore) -> u64 {
        if self.lambda < 30.0 {
            let limit = (-self.lambda).exp();
            let mut product: f64 = 1.0;
            let mut count = 0u64;
            loop {
                product *= open_unit(rng);
                if product <= limit {
                    return count;
                }
                count += 1;
            }
        } else {
            let u1 = open_unit(rng);
            let u2 = open_unit(rng);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let x = self.lambda + self.lambda.sqrt() * z;
            x.round().max(0.0) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD15C)
    }

    fn sample_mean_var(dist: &dyn ContinuousDist, n: usize) -> (f64, f64) {
        let mut rng = rng();
        let xs: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        (mean, var)
    }

    #[test]
    fn constructors_reject_bad_parameters() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-2.0, 1.0).is_err());
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
        assert!(LogNormal::from_median_spread(6.0, 0.9).is_err());
        assert!(Poisson::new(0.0).is_err());
    }

    #[test]
    fn exponential_moments_and_cdf() {
        let e = Exponential::new(2.0).unwrap();
        assert!((e.mean() - 0.5).abs() < 1e-12);
        assert!((e.variance() - 0.25).abs() < 1e-12);
        assert!((e.cdf(0.5) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert_eq!(e.cdf(-1.0), 0.0);
        let (m, v) = sample_mean_var(&e, 40_000);
        assert!((m - 0.5).abs() < 0.01, "mean {m}");
        assert!((v - 0.25).abs() < 0.02, "var {v}");
    }

    #[test]
    fn weibull_reduces_to_exponential_at_shape_one() {
        let w = Weibull::new(1.0, 2.0).unwrap();
        let e = Exponential::new(0.5).unwrap();
        for &x in &[0.1, 1.0, 3.0, 8.0] {
            assert!((w.cdf(x) - e.cdf(x)).abs() < 1e-12);
            assert!((w.pdf(x) - e.pdf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn weibull_moments_match_samples() {
        let w = Weibull::new(1.7, 3.0).unwrap();
        let (m, v) = sample_mean_var(&w, 40_000);
        assert!(
            (m - w.mean()).abs() / w.mean() < 0.02,
            "mean {m} vs {}",
            w.mean()
        );
        assert!((v - w.variance()).abs() / w.variance() < 0.08);
    }

    #[test]
    fn gamma_moments_match_samples_across_shapes() {
        for &(k, theta) in &[(0.5, 2.0), (1.0, 1.0), (2.5, 4.0), (9.0, 0.5)] {
            let g = Gamma::new(k, theta).unwrap();
            let (m, v) = sample_mean_var(&g, 60_000);
            assert!(
                (m - g.mean()).abs() / g.mean() < 0.03,
                "shape {k}: mean {m}"
            );
            assert!(
                (v - g.variance()).abs() / g.variance() < 0.10,
                "shape {k}: var {v}"
            );
        }
    }

    #[test]
    fn gamma_cdf_is_monotone_and_normalized() {
        let g = Gamma::new(3.0, 2.0).unwrap();
        let mut prev = 0.0;
        for i in 0..200 {
            let x = i as f64 * 0.25;
            let c = g.cdf(x);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!(g.cdf(100.0) > 0.999_999);
    }

    #[test]
    fn lognormal_median_spread_parameterization() {
        let d = LogNormal::from_median_spread(6.0, 3.0).unwrap();
        // Median of LogNormal(μ, σ) is e^μ.
        assert!((d.cdf(6.0) - 0.5).abs() < 1e-9);
        // One "spread" above the median is one sigma: Φ(1) ≈ 0.8413.
        assert!((d.cdf(18.0) - 0.841_344_746).abs() < 1e-6);
    }

    #[test]
    fn lognormal_moments_match_samples() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let (m, v) = sample_mean_var(&d, 60_000);
        assert!((m - d.mean()).abs() / d.mean() < 0.02);
        assert!((v - d.variance()).abs() / d.variance() < 0.15);
    }

    #[test]
    fn poisson_pmf_sums_to_one_and_sampling_matches() {
        let p = Poisson::new(4.2).unwrap();
        let total: f64 = (0..60).map(|k| p.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((p.cdf(4) - (0..=4).map(|k| p.pmf(k)).sum::<f64>()).abs() < 1e-9);

        let mut rng = rng();
        let n = 50_000;
        let mean = (0..n).map(|_| p.sample(&mut rng)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 4.2).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_uses_normal_branch_sanely() {
        let p = Poisson::new(200.0).unwrap();
        let mut rng = rng();
        let n = 20_000;
        let samples: Vec<u64> = (0..n).map(|_| p.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64;
        assert!((mean - 200.0).abs() < 1.0, "mean {mean}");
        assert!((var - 200.0).abs() < 15.0, "var {var}");
    }

    #[test]
    fn pdf_integrates_to_cdf_numerically() {
        // Trapezoidal check that ∫pdf ≈ cdf for a couple of distributions.
        let dists: Vec<Box<dyn ContinuousDist>> = vec![
            Box::new(Gamma::new(2.0, 1.5).unwrap()),
            Box::new(Weibull::new(2.0, 3.0).unwrap()),
            Box::new(LogNormal::new(0.0, 0.8).unwrap()),
        ];
        for d in &dists {
            let upper = 5.0;
            let n = 20_000;
            let h = upper / n as f64;
            let mut integral = 0.0;
            for i in 0..n {
                let x0 = i as f64 * h;
                let x1 = x0 + h;
                integral += 0.5 * (d.pdf(x0.max(1e-12)) + d.pdf(x1)) * h;
            }
            let err = (integral - d.cdf(upper)).abs();
            assert!(
                err < 1e-3,
                "{}: ∫pdf {integral} vs cdf {}",
                d.name(),
                d.cdf(upper)
            );
        }
    }

    #[test]
    fn quantiles_invert_cdfs() {
        let dists: Vec<Box<dyn ContinuousDist>> = vec![
            Box::new(Exponential::new(0.7).unwrap()),
            Box::new(Weibull::new(1.4, 2.0).unwrap()),
            Box::new(Gamma::new(2.5, 1.5).unwrap()),
            Box::new(Normal::new(3.0, 2.0).unwrap()),
            Box::new(LogNormal::new(0.5, 0.9).unwrap()),
        ];
        for d in &dists {
            for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
                let x = d.quantile(p);
                assert!(
                    (d.cdf(x) - p).abs() < 1e-7,
                    "{}: quantile({p}) = {x}, cdf back = {}",
                    d.name(),
                    d.cdf(x)
                );
            }
        }
    }

    #[test]
    fn default_bisection_quantile_matches_closed_form() {
        // Exercise the trait default by calling it through a shim type.
        struct Shim(Gamma);
        impl ContinuousDist for Shim {
            fn pdf(&self, x: f64) -> f64 {
                self.0.pdf(x)
            }
            fn cdf(&self, x: f64) -> f64 {
                self.0.cdf(x)
            }
            fn mean(&self) -> f64 {
                self.0.mean()
            }
            fn variance(&self) -> f64 {
                self.0.variance()
            }
            fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
                self.0.sample(rng)
            }
            fn name(&self) -> &'static str {
                "Shim"
            }
        }
        let g = Gamma::new(3.0, 2.0).unwrap();
        let shim = Shim(g);
        for &p in &[0.05, 0.5, 0.95] {
            assert!((shim.quantile(p) - g.quantile(p)).abs() < 1e-6);
        }
    }

    #[test]
    fn normal_moments_and_symmetry() {
        let n = Normal::new(5.0, 2.0).unwrap();
        assert_eq!(n.mean(), 5.0);
        assert_eq!(n.variance(), 4.0);
        assert!((n.cdf(5.0) - 0.5).abs() < 1e-12);
        assert!((n.cdf(7.0) + n.cdf(3.0) - 1.0).abs() < 1e-12);
        let (m, v) = sample_mean_var(&n, 40_000);
        assert!((m - 5.0).abs() < 0.05);
        assert!((v - 4.0).abs() < 0.15);
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        let std = Normal::standard();
        assert!((std.quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-7);
    }

    #[test]
    fn ln_pdf_agrees_with_pdf() {
        let g = Gamma::new(3.3, 0.7).unwrap();
        for &x in &[0.2, 1.0, 4.0] {
            assert!((g.ln_pdf(x) - g.pdf(x).ln()).abs() < 1e-9);
        }
        let w = Weibull::new(0.8, 2.0).unwrap();
        for &x in &[0.2, 1.0, 4.0] {
            assert!((w.ln_pdf(x) - w.pdf(x).ln()).abs() < 1e-9);
        }
    }
}
