//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a deterministic property-testing harness exposing the exact
//! subset of proptest's API its test suites use: the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`], the [`strategy::Strategy`] trait
//! with `prop_map`, numeric-range and string-pattern strategies, tuples,
//! [`collection::vec`], [`bool::ANY`], and [`char::range`].
//!
//! Differences from upstream are intentional and documented:
//!
//! - **No shrinking.** A failing case reports its inputs via the assertion
//!   message instead of minimizing them.
//! - **Deterministic seeding.** Each property derives its RNG seed from the
//!   property's name, so failures reproduce exactly across runs and
//!   machines. Set `PROPTEST_CASES` to change the case count (default 96).
//! - **String patterns** support the subset used here: `.`, `[a-z0-9 .:]`
//!   character classes (with ranges), and `{m,n}` repetition.

#![forbid(unsafe_code)]

/// Strategies: deterministic generators of arbitrary-ish values.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of values of type `Self::Value`.
    ///
    /// Mirrors `proptest::strategy::Strategy` minus shrinking: `generate`
    /// replaces the value-tree machinery.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.map)(self.source.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    numeric_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }

    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

/// The runner driving each property over its random cases.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        reason: String,
    }

    impl TestCaseError {
        /// Fails the current case with a reason.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError {
                reason: reason.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.reason)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Per-block case-count configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Cases to run per property.
        pub cases: u64,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases: cases as u64,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: case_count(),
            }
        }
    }

    /// FNV-1a over the property name: a stable per-property seed.
    fn name_seed(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Number of cases per property (`PROPTEST_CASES`, default 96).
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(96)
    }

    /// Runs one property over its deterministic case stream, panicking on
    /// the first failing case.
    pub fn run_cases<F>(name: &str, property: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        run_cases_with(name, ProptestConfig::default(), property)
    }

    /// [`run_cases`] with an explicit [`ProptestConfig`].
    pub fn run_cases_with<F>(name: &str, config: ProptestConfig, mut property: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let mut rng = StdRng::seed_from_u64(name_seed(name));
        let cases = config.cases;
        for case in 0..cases {
            if let Err(e) = property(&mut rng) {
                panic!("property '{name}' failed at case {case}/{cases}: {e}");
            }
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec()`]: an exact `usize` or a
    /// `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Uniform `true`/`false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen::<u64>() & 1 == 1
        }
    }

    /// A strategy for any `bool`.
    pub const ANY: Any = Any;
}

/// Character strategies (`proptest::char::range`).
pub mod char {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The strategy returned by [`range`].
    #[derive(Debug, Clone, Copy)]
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    impl Strategy for CharRange {
        type Value = char;

        fn generate(&self, rng: &mut StdRng) -> char {
            // Retry across the (tiny) surrogate gap.
            loop {
                if let Some(c) = char::from_u32(rng.gen_range(self.lo..=self.hi)) {
                    return c;
                }
            }
        }
    }

    /// Uniform `char` in `[lo, hi]` (inclusive).
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange {
            lo: lo as u32,
            hi: hi as u32,
        }
    }
}

/// String-pattern strategies: the `"regex"` shorthand.
pub mod string {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// One pattern atom: a set of candidate chars plus a repetition range.
    struct Atom {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Characters `.` can produce: printable ASCII plus a few multi-byte
    /// code points so UTF-8 boundary handling gets exercised.
    fn dot_choices() -> Vec<char> {
        let mut v: Vec<char> = (0x20u8..0x7F).map(|b| b as char).collect();
        v.extend(['é', 'Ω', '✓', '雲', '𝛼']);
        v
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut set = Vec::new();
        let mut pending: Option<char> = None;
        for c in chars.by_ref() {
            match c {
                ']' => {
                    if let Some(p) = pending {
                        set.push(p);
                    }
                    return set;
                }
                '-' => {
                    // Range if we have a left end and a right end follows;
                    // handled by peeking at the next loop step via marker.
                    if let Some(p) = pending {
                        pending = None;
                        set.push('\u{0}');
                        set.push(p); // sentinel pair resolved below
                    } else {
                        pending = Some('-');
                    }
                }
                c => {
                    // Resolve a pending range sentinel: [.., '\0', lo] + c.
                    if set.len() >= 2 && set[set.len() - 2] == '\u{0}' {
                        let lo = set.pop().expect("sentinel lo");
                        set.pop(); // sentinel
                        for u in (lo as u32)..=(c as u32) {
                            if let Some(ch) = char::from_u32(u) {
                                set.push(ch);
                            }
                        }
                    } else {
                        if let Some(p) = pending.take() {
                            set.push(p);
                        }
                        pending = Some(c);
                    }
                }
            }
        }
        if let Some(p) = pending {
            set.push(p);
        }
        set
    }

    fn parse_repetition(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut spec = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            spec.push(c);
        }
        match spec.split_once(',') {
            Some((m, n)) => (
                m.trim().parse().expect("repetition min"),
                n.trim().parse().expect("repetition max"),
            ),
            None => {
                let n = spec.trim().parse().expect("repetition count");
                (n, n)
            }
        }
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let choices = match c {
                '.' => dot_choices(),
                '[' => parse_class(&mut chars),
                other => vec![other],
            };
            let (min, max) = parse_repetition(&mut chars);
            atoms.push(Atom { choices, min, max });
        }
        atoms
    }

    /// Generates one string matching the (subset) pattern.
    ///
    /// # Panics
    ///
    /// Panics on pattern syntax outside the supported subset.
    pub fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for atom in parse(pattern) {
            assert!(
                !atom.choices.is_empty(),
                "empty character class in {pattern:?}"
            );
            let reps = rng.gen_range(atom.min..=atom.max);
            for _ in 0..reps {
                let idx = rng.gen_range(0usize..atom.choices.len());
                out.push(atom.choices[idx]);
            }
        }
        out
    }
}

/// The subset of proptest's prelude this workspace imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares deterministic property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     // (in a test module this would carry `#[test]`)
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() { addition_commutes(); }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases_with(stringify!($name), $config, |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts within a property, failing the case (not the process) on
/// violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn string_patterns_match_their_own_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = crate::string::generate_from_pattern("[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");

            let t = crate::string::generate_from_pattern("[A-Za-z0-9 :]{0,40}", &mut rng);
            assert!(t.chars().count() <= 40);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == ':'));

            let u = crate::string::generate_from_pattern("sys-[0-9]{1,3}", &mut rng);
            assert!(u.starts_with("sys-"), "{u:?}");
        }
    }

    #[test]
    fn dot_pattern_emits_multibyte_occasionally() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_multibyte = false;
        for _ in 0..200 {
            let s = crate::string::generate_from_pattern(".{0,20}", &mut rng);
            saw_multibyte |= s.bytes().any(|b| b >= 0x80);
        }
        assert!(saw_multibyte, "dot class never produced multi-byte UTF-8");
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(a in 0u64..100, b in 0u64..100) {
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u8..10, 0u8..10).prop_map(|(x, y)| (x as u16) + (y as u16)),
            flag in crate::bool::ANY,
            c in crate::char::range('a', 'f'),
            v in crate::collection::vec(0i32..5, 1..8),
        ) {
            prop_assert!(pair <= 18);
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(('a'..='f').contains(&c));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        crate::test_runner::run_cases("always_fails", |_rng| Err(TestCaseError::fail("nope")));
    }
}
