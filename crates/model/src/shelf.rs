//! Shelf enclosure models and the disk/shelf interoperability matrix.
//!
//! Shelf enclosures provide power, cooling and a prewired backplane for up to
//! 14 disks (paper §2.2). The study finds (Finding 6) that the shelf model
//! has a strong impact on *physical interconnect* failures — and that which
//! shelf model works best depends on the disk model mounted in it
//! (interoperability effects). The catalog here encodes three anonymized
//! shelf models `A`..`C` with interconnect-hazard factors and a small
//! interoperability table reproducing the paper's Figure 6 pattern.

use std::fmt;

use crate::disk::DiskModelId;

/// Maximum number of disk bays per shelf across all studied models.
pub const SHELF_BAYS: u8 = 14;

/// An anonymized shelf enclosure model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShelfModel {
    /// Shelf enclosure model A (used with low-end systems).
    A,
    /// Shelf enclosure model B (used with low-end, mid-range, and high-end).
    B,
    /// Shelf enclosure model C (used with near-line and mid-range systems).
    C,
}

impl ShelfModel {
    /// All shelf models in the study.
    pub const ALL: [ShelfModel; 3] = [ShelfModel::A, ShelfModel::B, ShelfModel::C];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ShelfModel::A => "Shelf Enclosure Model A",
            ShelfModel::B => "Shelf Enclosure Model B",
            ShelfModel::C => "Shelf Enclosure Model C",
        }
    }

    /// Single-letter tag.
    pub fn letter(self) -> char {
        match self {
            ShelfModel::A => 'A',
            ShelfModel::B => 'B',
            ShelfModel::C => 'C',
        }
    }

    /// Parses the single-letter tag.
    pub fn from_letter(c: char) -> Option<ShelfModel> {
        match c {
            'A' => Some(ShelfModel::A),
            'B' => Some(ShelfModel::B),
            'C' => Some(ShelfModel::C),
            _ => None,
        }
    }
}

impl fmt::Display for ShelfModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Reliability characteristics of a shelf enclosure model.
#[derive(Debug, Clone, PartialEq)]
pub struct ShelfModelSpec {
    /// Which model this spec describes.
    pub model: ShelfModel,
    /// Multiplier on the class base physical-interconnect hazard contributed
    /// by this shelf's backplane/power/FC-driver design (1.0 = neutral).
    pub interconnect_factor: f64,
    /// Multiplier on shelf-episode arrival rate (cooling/backplane
    /// transients); shakier enclosures see more correlated bursts.
    pub episode_rate_factor: f64,
}

/// The catalog of shelf models plus the disk-model interoperability matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ShelfCatalog {
    specs: Vec<ShelfModelSpec>,
    /// `(shelf, disk family letter, capacity point, multiplier)` —
    /// interconnect-hazard adjustments for specific pairings (Finding 6:
    /// different shelves work better with different disk models).
    interop: Vec<(ShelfModel, DiskModelId, f64)>,
}

impl ShelfCatalog {
    /// Builds the calibrated catalog for the paper's three shelf models.
    ///
    /// The interoperability entries encode Figure 6's observed pattern for
    /// low-end systems: with disk `A-2`, shelf B is the more reliable choice
    /// (2.18% vs 2.66% interconnect AFR), while for `A-3`, `D-2` and `D-3`
    /// shelf A wins.
    pub fn paper() -> Self {
        let m = DiskModelId::parse;
        ShelfCatalog {
            specs: vec![
                ShelfModelSpec {
                    model: ShelfModel::A,
                    interconnect_factor: 1.00,
                    episode_rate_factor: 1.00,
                },
                ShelfModelSpec {
                    model: ShelfModel::B,
                    interconnect_factor: 1.08,
                    episode_rate_factor: 1.10,
                },
                ShelfModelSpec {
                    model: ShelfModel::C,
                    interconnect_factor: 0.92,
                    episode_rate_factor: 0.95,
                },
            ],
            interop: vec![
                // Figure 6(a): A-2 pairs badly with shelf A, well with B.
                (ShelfModel::A, m("A-2").expect("valid"), 1.32),
                (ShelfModel::B, m("A-2").expect("valid"), 0.92),
                // Figure 6(b)-(d): A-3, D-2, D-3 pair better with shelf A.
                (ShelfModel::A, m("A-3").expect("valid"), 0.90),
                (ShelfModel::B, m("A-3").expect("valid"), 1.18),
                (ShelfModel::A, m("D-2").expect("valid"), 0.88),
                (ShelfModel::B, m("D-2").expect("valid"), 1.22),
                (ShelfModel::A, m("D-3").expect("valid"), 0.90),
                (ShelfModel::B, m("D-3").expect("valid"), 1.20),
            ],
        }
    }

    /// Looks up the spec for a shelf model.
    pub fn get(&self, model: ShelfModel) -> Option<&ShelfModelSpec> {
        self.specs.iter().find(|s| s.model == model)
    }

    /// Interconnect-hazard multiplier for a (shelf model, disk model)
    /// pairing: the shelf's own factor times any interoperability
    /// adjustment (1.0 when the pairing has no special entry).
    pub fn interconnect_multiplier(&self, shelf: ShelfModel, disk: DiskModelId) -> f64 {
        let base = self.get(shelf).map_or(1.0, |s| s.interconnect_factor);
        let interop = self
            .interop
            .iter()
            .find(|(s, d, _)| *s == shelf && *d == disk)
            .map_or(1.0, |(_, _, f)| *f);
        base * interop
    }

    /// Iterates all shelf specs.
    pub fn iter(&self) -> impl Iterator<Item = &ShelfModelSpec> {
        self.specs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_models_all_within_14_bays() {
        let cat = ShelfCatalog::paper();
        assert_eq!(cat.iter().count(), 3);
        assert_eq!(SHELF_BAYS, 14);
    }

    #[test]
    fn letters_round_trip() {
        for model in ShelfModel::ALL {
            assert_eq!(ShelfModel::from_letter(model.letter()), Some(model));
        }
        assert_eq!(ShelfModel::from_letter('Z'), None);
    }

    #[test]
    fn interop_reproduces_figure_6_pattern() {
        let cat = ShelfCatalog::paper();
        let a2 = DiskModelId::parse("A-2").unwrap();
        let a3 = DiskModelId::parse("A-3").unwrap();
        let d2 = DiskModelId::parse("D-2").unwrap();
        let d3 = DiskModelId::parse("D-3").unwrap();
        // For A-2 shelf B is better (lower multiplier)...
        assert!(
            cat.interconnect_multiplier(ShelfModel::B, a2)
                < cat.interconnect_multiplier(ShelfModel::A, a2)
        );
        // ...while for A-3, D-2, D-3 shelf A is better.
        for disk in [a3, d2, d3] {
            assert!(
                cat.interconnect_multiplier(ShelfModel::A, disk)
                    < cat.interconnect_multiplier(ShelfModel::B, disk),
                "{disk}"
            );
        }
    }

    #[test]
    fn unlisted_pairings_fall_back_to_shelf_factor() {
        let cat = ShelfCatalog::paper();
        let e1 = DiskModelId::parse("E-1").unwrap();
        let spec_b = cat.get(ShelfModel::B).unwrap();
        assert!(
            (cat.interconnect_multiplier(ShelfModel::B, e1) - spec_b.interconnect_factor).abs()
                < 1e-12
        );
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ShelfModel::A.label(), "Shelf Enclosure Model A");
    }
}
