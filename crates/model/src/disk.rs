//! Disk families, models, and the anonymized disk catalog of the study.
//!
//! The paper (§2.2, §4.1) anonymizes disk products as *families* `A`..`K`
//! (e.g. "Seagate Cheetah 10k.7") with numbered capacity points forming
//! *models* (e.g. `A-2`). Twenty models appear across the four system
//! classes; family `H` is a known problematic family whose subsystems show
//! roughly twice the average failure rate (Finding 3).
//!
//! Reliability characteristics attached to each model are *calibration
//! targets* in failures per disk-year, chosen so the synthetic fleet
//! reproduces the shapes reported in the paper: FC models below 1% disk AFR,
//! SATA models around 1.9%, and family H far above its peers with elevated
//! protocol/performance couplings.

use std::fmt;

/// Disk interface technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiskType {
    /// Fibre Channel (enterprise) disks, used by primary storage classes.
    Fc,
    /// SATA (near-line) disks, used by backup/archival systems.
    Sata,
}

impl fmt::Display for DiskType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DiskType::Fc => "FC",
            DiskType::Sata => "SATA",
        })
    }
}

/// An anonymized disk family (a particular disk product line), `A`..`K`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DiskFamily(pub char);

impl DiskFamily {
    /// The problematic family called out by the paper (Finding 3 and its ref. \[2\]).
    pub const PROBLEMATIC: DiskFamily = DiskFamily('H');

    /// Whether this is the problematic family `H`.
    pub fn is_problematic(self) -> bool {
        self == Self::PROBLEMATIC
    }
}

impl fmt::Display for DiskFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Disk {}", self.0)
    }
}

/// A disk model: a family plus a capacity point, e.g. `H-2`.
///
/// Within a family, larger `capacity_point` means larger capacity
/// (paper §4.1: "the relative capacity within a family is ordered by the
/// number").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DiskModelId {
    /// The product family.
    pub family: DiskFamily,
    /// 1-based capacity index within the family.
    pub capacity_point: u8,
}

impl DiskModelId {
    /// Creates a model id from a family letter and capacity point.
    pub fn new(family: char, capacity_point: u8) -> Self {
        DiskModelId {
            family: DiskFamily(family),
            capacity_point,
        }
    }

    /// Parses the paper's notation, e.g. `"H-2"` or `"Disk H-2"`.
    pub fn parse(s: &str) -> Option<DiskModelId> {
        let s = s.trim().strip_prefix("Disk ").unwrap_or(s.trim());
        let (fam, num) = s.split_once('-')?;
        let fam = fam.trim();
        if fam.len() != 1 {
            return None;
        }
        let family = fam.chars().next()?;
        if !family.is_ascii_uppercase() {
            return None;
        }
        let capacity_point: u8 = num.trim().parse().ok()?;
        if capacity_point == 0 {
            return None;
        }
        Some(DiskModelId::new(family, capacity_point))
    }
}

impl fmt::Display for DiskModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.family.0, self.capacity_point)
    }
}

/// Reliability and identity characteristics of a disk model.
///
/// Rates are expressed in expected failures per disk-year (i.e. AFR as a
/// fraction) and act as *base hazards*; the simulator layers shared-factor
/// shock processes on top of them.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskModelSpec {
    /// Which model this spec describes.
    pub id: DiskModelId,
    /// Interface technology.
    pub disk_type: DiskType,
    /// Formatted capacity in gigabytes (used only for realism in snapshots).
    pub capacity_gb: u32,
    /// Base disk-failure hazard, failures per disk-year.
    pub disk_afr: f64,
    /// Multiplier applied to the class protocol-failure hazard for disks of
    /// this model (problematic firmware triggers corner-case protocol bugs,
    /// paper Finding 3 discussion).
    pub protocol_factor: f64,
    /// Multiplier applied to the class performance-failure hazard (failing
    /// disks spend time in recovery and respond slowly).
    pub performance_factor: f64,
}

impl DiskModelSpec {
    /// Whether the model belongs to the problematic family `H`.
    pub fn is_problematic(&self) -> bool {
        self.id.family.is_problematic()
    }
}

/// The catalog of the twenty disk models used across the studied fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskCatalog {
    specs: Vec<DiskModelSpec>,
}

impl DiskCatalog {
    /// Builds the calibrated catalog of the paper's twenty models.
    ///
    /// FC families `A`..`G` sit at 0.6–0.95% disk AFR (vendor-datasheet
    /// territory, Finding: FC disk AFR consistently below 1%); the `H`
    /// family is problematic (≈3× the AFR of its peers, with protocol and
    /// performance couplings); SATA families `I`..`K` sit around 1.8–2.0%.
    pub fn paper() -> Self {
        let fc = |fam: char, point: u8, cap: u32, afr: f64| DiskModelSpec {
            id: DiskModelId::new(fam, point),
            disk_type: DiskType::Fc,
            capacity_gb: cap,
            disk_afr: afr,
            protocol_factor: 1.0,
            performance_factor: 1.0,
        };
        let problematic = |point: u8, cap: u32, afr: f64| DiskModelSpec {
            id: DiskModelId::new('H', point),
            disk_type: DiskType::Fc,
            capacity_gb: cap,
            disk_afr: afr,
            protocol_factor: 2.6,
            performance_factor: 2.8,
        };
        let sata = |fam: char, point: u8, cap: u32, afr: f64| DiskModelSpec {
            id: DiskModelId::new(fam, point),
            disk_type: DiskType::Sata,
            capacity_gb: cap,
            disk_afr: afr,
            protocol_factor: 1.0,
            performance_factor: 1.0,
        };
        DiskCatalog {
            specs: vec![
                // FC primary-storage families. Note D-2 is calibrated *below*
                // D-1 so that AFR visibly does not grow with capacity
                // (Finding 5).
                fc('A', 1, 72, 0.0095),
                fc('A', 2, 144, 0.0085),
                fc('A', 3, 300, 0.0080),
                fc('B', 1, 72, 0.0090),
                fc('C', 1, 72, 0.0075),
                fc('C', 2, 144, 0.0070),
                fc('D', 1, 72, 0.0082),
                fc('D', 2, 144, 0.0068),
                fc('D', 3, 300, 0.0073),
                fc('E', 1, 144, 0.0075),
                fc('F', 1, 144, 0.0070),
                fc('F', 2, 300, 0.0065),
                fc('G', 1, 72, 0.0085),
                problematic(1, 144, 0.0260),
                problematic(2, 300, 0.0290),
                // SATA near-line families.
                sata('I', 1, 250, 0.0200),
                sata('I', 2, 500, 0.0180),
                sata('J', 1, 250, 0.0190),
                sata('J', 2, 500, 0.0185),
                sata('K', 1, 320, 0.0195),
            ],
        }
    }

    /// Looks up the spec for a model id.
    pub fn get(&self, id: DiskModelId) -> Option<&DiskModelSpec> {
        self.specs.iter().find(|s| s.id == id)
    }

    /// Iterates all specs in catalog order.
    pub fn iter(&self) -> impl Iterator<Item = &DiskModelSpec> {
        self.specs.iter()
    }

    /// Number of models in the catalog.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All models of a given interface technology.
    pub fn models_of_type(&self, ty: DiskType) -> Vec<DiskModelId> {
        self.specs
            .iter()
            .filter(|s| s.disk_type == ty)
            .map(|s| s.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_twenty_models_fifteen_fc_five_sata() {
        let cat = DiskCatalog::paper();
        assert_eq!(cat.len(), 20);
        assert_eq!(cat.models_of_type(DiskType::Fc).len(), 15);
        assert_eq!(cat.models_of_type(DiskType::Sata).len(), 5);
    }

    #[test]
    fn family_h_is_problematic_and_much_worse() {
        let cat = DiskCatalog::paper();
        let h1 = cat.get(DiskModelId::new('H', 1)).unwrap();
        let h2 = cat.get(DiskModelId::new('H', 2)).unwrap();
        assert!(h1.is_problematic() && h2.is_problematic());
        // Problematic family at least 2.5x the worst healthy FC model.
        let worst_healthy = cat
            .iter()
            .filter(|s| s.disk_type == DiskType::Fc && !s.is_problematic())
            .map(|s| s.disk_afr)
            .fold(0.0, f64::max);
        assert!(h1.disk_afr > 2.5 * worst_healthy);
        assert!(h1.protocol_factor > 2.0 && h1.performance_factor > 2.0);
    }

    #[test]
    fn healthy_fc_models_sit_below_one_percent() {
        let cat = DiskCatalog::paper();
        for spec in cat
            .iter()
            .filter(|s| s.disk_type == DiskType::Fc && !s.is_problematic())
        {
            assert!(
                spec.disk_afr < 0.01,
                "{} has AFR {}",
                spec.id,
                spec.disk_afr
            );
            assert!(spec.disk_afr > 0.004);
        }
    }

    #[test]
    fn sata_models_sit_near_two_percent() {
        let cat = DiskCatalog::paper();
        for spec in cat.iter().filter(|s| s.disk_type == DiskType::Sata) {
            assert!((0.017..0.021).contains(&spec.disk_afr), "{}", spec.id);
        }
    }

    #[test]
    fn afr_does_not_grow_with_capacity_in_family_d() {
        // Finding 5: D-2 (bigger than D-1) has lower AFR.
        let cat = DiskCatalog::paper();
        let d1 = cat.get(DiskModelId::new('D', 1)).unwrap();
        let d2 = cat.get(DiskModelId::new('D', 2)).unwrap();
        assert!(d2.capacity_gb > d1.capacity_gb);
        assert!(d2.disk_afr < d1.disk_afr);
    }

    #[test]
    fn model_notation_parses_and_displays() {
        let id = DiskModelId::new('H', 2);
        assert_eq!(id.to_string(), "H-2");
        assert_eq!(DiskModelId::parse("H-2"), Some(id));
        assert_eq!(DiskModelId::parse("Disk H-2"), Some(id));
        assert_eq!(
            DiskModelId::parse(" A - 1 "),
            Some(DiskModelId::new('A', 1))
        );
        assert_eq!(DiskModelId::parse("h-2"), None);
        assert_eq!(DiskModelId::parse("H2"), None);
        assert_eq!(DiskModelId::parse("H-0"), None);
        assert_eq!(DiskModelId::parse("HH-1"), None);
    }

    #[test]
    fn capacity_ordering_within_families_is_monotonic() {
        let cat = DiskCatalog::paper();
        for fam in ['A', 'C', 'D', 'F', 'H', 'I', 'J'] {
            let mut caps: Vec<(u8, u32)> = cat
                .iter()
                .filter(|s| s.id.family.0 == fam)
                .map(|s| (s.id.capacity_point, s.capacity_gb))
                .collect();
            caps.sort();
            for pair in caps.windows(2) {
                assert!(
                    pair[1].1 > pair[0].1,
                    "capacity not increasing within family {fam}"
                );
            }
        }
    }
}
