//! Domain model for storage subsystem failure analysis.
//!
//! This crate defines the vocabulary shared by the whole `ssfa` workspace: the
//! four-way failure taxonomy of the FAST'08 study ("Are Disks the Dominant
//! Contributor for Storage Failures?"), typed identifiers for every component
//! of a storage subsystem (systems, shelf enclosures, disk slots, disks, FC
//! loops, RAID groups), catalogs of disk and shelf-enclosure models with their
//! reliability characteristics, and a fleet configuration + builder that
//! materializes a synthetic fleet mirroring the composition of the study's
//! Table 1.
//!
//! # Example
//!
//! ```
//! use ssfa_model::{FleetConfig, Fleet};
//!
//! // A 1%-scale replica of the fleet studied in the paper.
//! let config = FleetConfig::paper().scaled(0.01);
//! let fleet = Fleet::build(&config, 42);
//! assert!(fleet.systems().len() > 300);
//! assert!(fleet.disk_count() > 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod class;
pub mod config;
pub mod disk;
pub mod failure;
pub mod fleet;
pub mod id;
pub mod layout;
pub mod raid;
pub mod shelf;
pub mod time;

pub use class::{PathConfig, SystemClass};
pub use config::{ClassConfig, FleetConfig};
pub use disk::{DiskCatalog, DiskFamily, DiskModelId, DiskModelSpec, DiskType};
pub use failure::{FailureCounts, FailureRecord, FailureType};
pub use fleet::{DiskInstall, FcLoop, Fleet, FleetClassStats, RaidGroup, Shelf, StorageSystem};
pub use id::{DeviceAddr, DiskInstanceId, LoopId, RaidGroupId, ShelfId, SlotAddr, SystemId};
pub use layout::LayoutPolicy;
pub use raid::RaidType;
pub use shelf::{ShelfCatalog, ShelfModel, ShelfModelSpec};
pub use time::{CivilDateTime, SimDuration, SimTime};
