//! Disk-to-RAID-group layout policies (paper §5, Figure 8).
//!
//! It is common practice to build a RAID group from disks spanning multiple
//! shelf enclosures so that no single shelf is a single point of failure for
//! the whole group; the study finds spanning also reduces how *bursty* the
//! failures hitting one RAID group are (Finding 9). The simulator supports
//! both layouts so the comparison can be reproduced as an ablation.

use crate::id::{ShelfId, SlotAddr};

/// How RAID groups are carved out of a set of shelves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LayoutPolicy {
    /// Interleave group members across the shelves of an FC loop (the
    /// common practice, and the study's observed average of ~3 shelves per
    /// RAID group). This is the layout in the paper's Figure 8.
    #[default]
    SpanShelves,
    /// Fill each RAID group from a single shelf (the less resilient
    /// alternative the paper argues against).
    SameShelf,
}

impl LayoutPolicy {
    /// Assigns every bay of the given shelves to RAID groups of (at most)
    /// `group_size` disks, returning one slot list per group.
    ///
    /// `bays_per_shelf` bays are populated on each shelf. Remainder slots
    /// form a final, smaller group; groups are never empty.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero or `bays_per_shelf` is zero while
    /// shelves are non-empty.
    pub fn assign(
        self,
        shelves: &[ShelfId],
        bays_per_shelf: u8,
        group_size: u8,
    ) -> Vec<Vec<SlotAddr>> {
        assert!(group_size > 0, "group_size must be positive");
        if shelves.is_empty() {
            return Vec::new();
        }
        assert!(bays_per_shelf > 0, "bays_per_shelf must be positive");
        match self {
            // Bay-major order: bay 0 of every shelf, then bay 1 of every
            // shelf, ... so consecutive slots live on different shelves and
            // a chunk of `group_size` spans min(group_size, #shelves)
            // shelves.
            LayoutPolicy::SpanShelves => {
                let slots: Vec<SlotAddr> = (0..bays_per_shelf)
                    .flat_map(|bay| shelves.iter().map(move |&shelf| SlotAddr { shelf, bay }))
                    .collect();
                slots
                    .chunks(group_size as usize)
                    .map(<[SlotAddr]>::to_vec)
                    .collect()
            }
            // Chunk *within* each shelf so no group ever crosses a shelf
            // boundary, even when bays don't divide evenly by group size.
            LayoutPolicy::SameShelf => shelves
                .iter()
                .flat_map(|&shelf| {
                    let slots: Vec<SlotAddr> = (0..bays_per_shelf)
                        .map(|bay| SlotAddr { shelf, bay })
                        .collect();
                    slots
                        .chunks(group_size as usize)
                        .map(<[SlotAddr]>::to_vec)
                        .collect::<Vec<_>>()
                })
                .collect(),
        }
    }

    /// Display label for reports.
    pub fn label(self) -> &'static str {
        match self {
            LayoutPolicy::SpanShelves => "span-shelves",
            LayoutPolicy::SameShelf => "same-shelf",
        }
    }
}

impl std::fmt::Display for LayoutPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Number of distinct shelves touched by a slot list.
pub fn shelves_spanned(slots: &[SlotAddr]) -> usize {
    let mut shelves: Vec<ShelfId> = slots.iter().map(|s| s.shelf).collect();
    shelves.sort_unstable();
    shelves.dedup();
    shelves.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shelves(n: u32) -> Vec<ShelfId> {
        (0..n).map(ShelfId).collect()
    }

    #[test]
    fn span_layout_spreads_groups_across_shelves() {
        let groups = LayoutPolicy::SpanShelves.assign(&shelves(3), 12, 7);
        // 36 slots -> 6 groups (5 of 7, 1 of 1).
        assert_eq!(groups.len(), 6);
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 36);
        // A full group spans all 3 shelves.
        assert_eq!(shelves_spanned(&groups[0]), 3);
    }

    #[test]
    fn same_shelf_layout_keeps_groups_on_one_shelf() {
        let groups = LayoutPolicy::SameShelf.assign(&shelves(3), 12, 6);
        assert_eq!(groups.len(), 6);
        for g in &groups {
            assert_eq!(shelves_spanned(g), 1, "group crosses shelves: {g:?}");
        }
    }

    #[test]
    fn all_slots_assigned_exactly_once() {
        for policy in [LayoutPolicy::SpanShelves, LayoutPolicy::SameShelf] {
            let groups = policy.assign(&shelves(4), 13, 9);
            let mut all: Vec<SlotAddr> = groups.into_iter().flatten().collect();
            assert_eq!(all.len(), 4 * 13);
            all.sort();
            all.dedup();
            assert_eq!(all.len(), 4 * 13, "{policy}: duplicate slot assignment");
        }
    }

    #[test]
    fn single_shelf_degenerates_gracefully() {
        let groups = LayoutPolicy::SpanShelves.assign(&shelves(1), 7, 7);
        assert_eq!(groups.len(), 1);
        assert_eq!(shelves_spanned(&groups[0]), 1);
    }

    #[test]
    fn empty_shelf_list_yields_no_groups() {
        assert!(LayoutPolicy::SpanShelves.assign(&[], 12, 7).is_empty());
    }

    #[test]
    fn no_group_is_empty_and_none_exceeds_size() {
        let groups = LayoutPolicy::SpanShelves.assign(&shelves(5), 11, 8);
        for g in &groups {
            assert!(!g.is_empty());
            assert!(g.len() <= 8);
        }
    }

    #[test]
    #[should_panic(expected = "group_size")]
    fn zero_group_size_panics() {
        let _ = LayoutPolicy::SpanShelves.assign(&shelves(2), 12, 0);
    }
}
