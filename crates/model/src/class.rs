//! Storage system classes (paper §2.2, §2.4).
//!
//! The study covers four commercially-deployed classes: near-line (backup)
//! systems built from SATA disks, and low-end / mid-range / high-end primary
//! systems built from FC disks. Classes differ in scale, component quality,
//! and which redundancy mechanisms (multipathing) they support.

use std::fmt;

use crate::disk::DiskType;

/// The capability/usage class of a storage system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SystemClass {
    /// Cost-efficient archival or backup systems using SATA disks.
    NearLine,
    /// Primary storage with embedded storage heads; FC disks.
    LowEnd,
    /// Primary storage with external shelves; FC disks; supports dual paths.
    MidRange,
    /// Largest primary systems; FC disks; supports dual paths.
    HighEnd,
}

impl SystemClass {
    /// All four classes, in the paper's canonical presentation order.
    pub const ALL: [SystemClass; 4] = [
        SystemClass::NearLine,
        SystemClass::LowEnd,
        SystemClass::MidRange,
        SystemClass::HighEnd,
    ];

    /// Stable dense index (0..4) for array-keyed tallies.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            SystemClass::NearLine => 0,
            SystemClass::LowEnd => 1,
            SystemClass::MidRange => 2,
            SystemClass::HighEnd => 3,
        }
    }

    /// Display label as used in the paper's tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            SystemClass::NearLine => "Near-line",
            SystemClass::LowEnd => "Low-end",
            SystemClass::MidRange => "Mid-range",
            SystemClass::HighEnd => "High-end",
        }
    }

    /// Short machine-friendly tag used in config log records.
    pub fn tag(self) -> &'static str {
        match self {
            SystemClass::NearLine => "nearline",
            SystemClass::LowEnd => "lowend",
            SystemClass::MidRange => "midrange",
            SystemClass::HighEnd => "highend",
        }
    }

    /// Parses the short tag produced by [`SystemClass::tag`].
    pub fn from_tag(tag: &str) -> Option<SystemClass> {
        SystemClass::ALL.into_iter().find(|c| c.tag() == tag)
    }

    /// The disk technology this class is built from.
    pub fn disk_type(self) -> DiskType {
        match self {
            SystemClass::NearLine => DiskType::Sata,
            _ => DiskType::Fc,
        }
    }

    /// Whether FC drivers of this class support active/passive multipathing
    /// (paper §4.3: only mid-range and high-end systems do).
    pub fn supports_multipathing(self) -> bool {
        matches!(self, SystemClass::MidRange | SystemClass::HighEnd)
    }
}

impl fmt::Display for SystemClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Interconnect configuration of a storage subsystem: one FC network, or two
/// independent networks with active/passive failover (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PathConfig {
    /// Shelves are connected through a single FC network.
    SinglePath,
    /// Shelves are connected to two independent FC networks; I/O is
    /// redirected through the redundant network on component failure.
    DualPath,
}

impl PathConfig {
    /// Both configurations.
    pub const ALL: [PathConfig; 2] = [PathConfig::SinglePath, PathConfig::DualPath];

    /// Display label as used in the paper's Figure 7.
    pub fn label(self) -> &'static str {
        match self {
            PathConfig::SinglePath => "Single Path",
            PathConfig::DualPath => "Dual Paths",
        }
    }

    /// Number of independent FC networks.
    pub fn paths(self) -> u8 {
        match self {
            PathConfig::SinglePath => 1,
            PathConfig::DualPath => 2,
        }
    }
}

impl fmt::Display for PathConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_are_dense_and_ordered() {
        let idx: Vec<usize> = SystemClass::ALL.iter().map(|c| c.index()).collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn nearline_uses_sata_primaries_use_fc() {
        assert_eq!(SystemClass::NearLine.disk_type(), DiskType::Sata);
        assert_eq!(SystemClass::LowEnd.disk_type(), DiskType::Fc);
        assert_eq!(SystemClass::MidRange.disk_type(), DiskType::Fc);
        assert_eq!(SystemClass::HighEnd.disk_type(), DiskType::Fc);
    }

    #[test]
    fn only_mid_and_high_end_support_multipathing() {
        assert!(!SystemClass::NearLine.supports_multipathing());
        assert!(!SystemClass::LowEnd.supports_multipathing());
        assert!(SystemClass::MidRange.supports_multipathing());
        assert!(SystemClass::HighEnd.supports_multipathing());
    }

    #[test]
    fn path_config_labels_match_figure_7() {
        assert_eq!(PathConfig::SinglePath.label(), "Single Path");
        assert_eq!(PathConfig::DualPath.label(), "Dual Paths");
        assert_eq!(PathConfig::SinglePath.paths(), 1);
        assert_eq!(PathConfig::DualPath.paths(), 2);
    }
}
