//! Simulation time: seconds since the start of the study period.
//!
//! The study window runs from 2004-01-01 00:00:00 UTC for 44 months
//! (January 2004 through August 2007). [`SimTime`] is an absolute instant in
//! that window, measured in whole seconds; [`SimDuration`] is a difference of
//! instants. [`CivilDateTime`] converts instants to calendar fields for log
//! rendering, using the proleptic-Gregorian `days_from_civil` algorithm, so
//! the crate needs no external date/time dependency.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Calendar instant of `SimTime::ZERO`: 2004-01-01 00:00:00 UTC.
pub const STUDY_EPOCH: (i32, u8, u8) = (2004, 1, 1);

/// Length of the study window in months (January 2004 .. September 2007).
pub const STUDY_MONTHS: u32 = 44;

/// Seconds per hour.
pub const SECS_PER_HOUR: u64 = 3_600;
/// Seconds per day.
pub const SECS_PER_DAY: u64 = 86_400;
/// Seconds per (Julian) year, used for annualizing failure rates.
pub const SECS_PER_YEAR: u64 = 31_557_600; // 365.25 days

/// An absolute instant within the study window, in seconds since
/// 2004-01-01 00:00:00 UTC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The start of the study window.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from a count of seconds since the study epoch.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Creates an instant from fractional hours since the study epoch.
    pub fn from_hours(hours: f64) -> Self {
        SimTime((hours * SECS_PER_HOUR as f64).round() as u64)
    }

    /// Creates an instant from fractional days since the study epoch.
    pub fn from_days(days: f64) -> Self {
        SimTime((days * SECS_PER_DAY as f64).round() as u64)
    }

    /// Creates an instant from fractional years since the study epoch.
    pub fn from_years(years: f64) -> Self {
        SimTime((years * SECS_PER_YEAR as f64).round() as u64)
    }

    /// Returns the instant as whole seconds since the study epoch.
    #[inline]
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional years since the study epoch.
    #[inline]
    pub fn as_years(self) -> f64 {
        self.0 as f64 / SECS_PER_YEAR as f64
    }

    /// The end of the 44-month study window.
    pub fn study_end() -> SimTime {
        // 44 months = 3 years (2004..2007) + 8 months (Jan..Aug 2007).
        let days = days_from_civil(2007, 9, 1) - days_from_civil(2004, 1, 1);
        SimTime(days as u64 * SECS_PER_DAY)
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Parses a support-log timestamp straight to a [`SimTime`] —
    /// equivalent to `CivilDateTime::parse_log_timestamp(s)?.to_sim_time()`
    /// but fused: the calendar conversion runs once and the weekday
    /// derivation (which the sim-time offset never needs) is skipped.
    /// This is the line parser's hot path.
    // lint: zero-alloc
    pub fn parse_log_timestamp(s: &str) -> Option<SimTime> {
        let (year, month, day, hour, minute, second) = parse_log_fields(s)?;
        let days = days_from_civil(year, month, day) - days_from_civil(2004, 1, 1);
        if days < 0 {
            return None;
        }
        Some(SimTime(
            days as u64 * SECS_PER_DAY
                + hour as u64 * SECS_PER_HOUR
                + minute as u64 * 60
                + second as u64,
        ))
    }

    /// Converts to calendar fields for display.
    pub fn civil(self) -> CivilDateTime {
        let total_days = self.0 / SECS_PER_DAY;
        let tod = self.0 % SECS_PER_DAY;
        let epoch_days = days_from_civil(STUDY_EPOCH.0, STUDY_EPOCH.1, STUDY_EPOCH.2);
        let (year, month, day) = civil_from_days(epoch_days + total_days as i64);
        CivilDateTime {
            year,
            month,
            day,
            hour: (tod / SECS_PER_HOUR) as u8,
            minute: ((tod % SECS_PER_HOUR) / 60) as u8,
            second: (tod % 60) as u8,
            weekday: weekday_from_days(epoch_days + total_days as i64),
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.civil().fmt(f)
    }
}

/// A non-negative span of simulation time, in whole seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Creates a duration from fractional hours.
    pub fn from_hours(hours: f64) -> Self {
        SimDuration((hours * SECS_PER_HOUR as f64).round() as u64)
    }

    /// Creates a duration from fractional days.
    pub fn from_days(days: f64) -> Self {
        SimDuration((days * SECS_PER_DAY as f64).round() as u64)
    }

    /// Creates a duration from fractional years (365.25-day years).
    pub fn from_years(years: f64) -> Self {
        SimDuration((years * SECS_PER_YEAR as f64).round() as u64)
    }

    /// Returns the duration in whole seconds.
    #[inline]
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Returns the duration in fractional hours.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / SECS_PER_HOUR as f64
    }

    /// Returns the duration in fractional years.
    #[inline]
    pub fn as_years(self) -> f64 {
        self.0 as f64 / SECS_PER_YEAR as f64
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s < 60 {
            write!(f, "{s}s")
        } else if s < SECS_PER_HOUR {
            write!(f, "{}m{}s", s / 60, s % 60)
        } else if s < SECS_PER_DAY {
            write!(f, "{}h{}m", s / SECS_PER_HOUR, (s % SECS_PER_HOUR) / 60)
        } else {
            write!(
                f,
                "{}d{}h",
                s / SECS_PER_DAY,
                (s % SECS_PER_DAY) / SECS_PER_HOUR
            )
        }
    }
}

/// Calendar fields of a [`SimTime`], for rendering support-log timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CivilDateTime {
    /// Gregorian year, e.g. 2006.
    pub year: i32,
    /// Month 1..=12.
    pub month: u8,
    /// Day of month 1..=31.
    pub day: u8,
    /// Hour 0..=23.
    pub hour: u8,
    /// Minute 0..=59.
    pub minute: u8,
    /// Second 0..=59.
    pub second: u8,
    /// Day of week, 0 = Sunday .. 6 = Saturday.
    pub weekday: u8,
}

const WEEKDAY_NAMES: [&str; 7] = ["Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"];
const MONTH_NAMES: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

impl CivilDateTime {
    /// Three-letter weekday name (`Sun`..`Sat`).
    pub fn weekday_name(&self) -> &'static str {
        WEEKDAY_NAMES[self.weekday as usize % 7]
    }

    /// Three-letter month name (`Jan`..`Dec`).
    pub fn month_name(&self) -> &'static str {
        MONTH_NAMES[(self.month as usize - 1) % 12]
    }

    /// Converts calendar fields back to a [`SimTime`].
    ///
    /// Returns `None` for instants before the study epoch.
    pub fn to_sim_time(&self) -> Option<SimTime> {
        let days = days_from_civil(self.year, self.month, self.day) - days_from_civil(2004, 1, 1);
        if days < 0 {
            return None;
        }
        Some(SimTime(
            days as u64 * SECS_PER_DAY
                + self.hour as u64 * SECS_PER_HOUR
                + self.minute as u64 * 60
                + self.second as u64,
        ))
    }

    /// Parses the support-log timestamp layout, e.g.
    /// `Sun Jul 23 05:43:36 PDT 2006`.
    ///
    /// A fixed-offset fast path handles the exact byte layout the renderer
    /// emits (`Www Mmm dd HH:MM:SS TZm yyyy`, day space-padded to width 2);
    /// anything that deviates falls back to the token-by-token parser, so
    /// the accepted language and produced fields are identical either way.
    pub fn parse_log_timestamp(s: &str) -> Option<CivilDateTime> {
        let (year, month, day, hour, minute, second) = parse_log_fields(s)?;
        let epoch_days = days_from_civil(2004, 1, 1);
        let days = days_from_civil(year, month, day);
        let weekday = weekday_from_days(days.max(epoch_days));
        Some(CivilDateTime {
            year,
            month,
            day,
            hour,
            minute,
            second,
            weekday,
        })
    }
}

/// Validated timestamp fields shared by both parse entry points:
/// `(year, month, day, hour, minute, second)`, ranges already checked.
type LogFields = (i32, u8, u8, u8, u8, u8);

/// Field extraction behind [`CivilDateTime::parse_log_timestamp`] and
/// [`SimTime::parse_log_timestamp`]: canonical fixed-offset fast path
/// first, token-by-token fallback for anything else.
// lint: zero-alloc
fn parse_log_fields(s: &str) -> Option<LogFields> {
    if let Some(fields) = parse_canonical_fields(s) {
        return Some(fields);
    }
    let mut parts = s.split_whitespace();
    let _weekday = parts.next()?;
    let month_name = parts.next()?;
    let day: u8 = parts.next()?.parse().ok()?;
    let hms = parts.next()?;
    let _tz = parts.next()?;
    let year: i32 = parts.next()?.parse().ok()?;
    let month = MONTH_NAMES.iter().position(|m| *m == month_name)? as u8 + 1;
    let mut hms_parts = hms.split(':');
    let hour: u8 = hms_parts.next()?.parse().ok()?;
    let minute: u8 = hms_parts.next()?.parse().ok()?;
    let second: u8 = hms_parts.next()?.parse().ok()?;
    if hms_parts.next().is_some() {
        return None;
    }
    check_log_fields((year, month, day, hour, minute, second))
}

/// Fast path for the renderer's canonical layout; `None` means "not
/// canonical, let the general parser decide", never "invalid".
// lint: zero-alloc
// lint: fast-path(parse_log_fields)
fn parse_canonical_fields(s: &str) -> Option<LogFields> {
    let b = s.as_bytes();
    // 28 bytes = "Www Mmm dd HH:MM:SS TZm yyyy" with a 4-digit year;
    // longer years (or any other layout) take the general path.
    if b.len() != 28 || !s.is_ascii() {
        return None;
    }
    if b[3] != b' '
        || b[7] != b' '
        || b[10] != b' '
        || b[13] != b':'
        || b[16] != b':'
        || b[19] != b' '
        || b[23] != b' '
    {
        return None;
    }
    // Weekday and timezone tokens: contents are ignored (matching the
    // general parser) but must be single whitespace-free tokens.
    if b[..3].iter().chain(&b[20..23]).any(|&c| ascii_space(c)) {
        return None;
    }
    let month = match &b[4..7] {
        b"Jan" => 1,
        b"Feb" => 2,
        b"Mar" => 3,
        b"Apr" => 4,
        b"May" => 5,
        b"Jun" => 6,
        b"Jul" => 7,
        b"Aug" => 8,
        b"Sep" => 9,
        b"Oct" => 10,
        b"Nov" => 11,
        b"Dec" => 12,
        _ => return None,
    };
    let day = match (b[8], digit(b[9])?) {
        (b' ', lo) => lo,
        (hi, lo) => digit(hi)? * 10 + lo,
    };
    let hour = digit(b[11])? * 10 + digit(b[12])?;
    let minute = digit(b[14])? * 10 + digit(b[15])?;
    let second = digit(b[17])? * 10 + digit(b[18])?;
    let year = b[24..]
        .iter()
        .try_fold(0i32, |acc, &c| Some(acc * 10 + digit(c)? as i32))?;
    check_log_fields((year, month, day, hour, minute, second))
}

/// The range checks both parse paths share.
fn check_log_fields(fields: LogFields) -> Option<LogFields> {
    let (_, month, day, hour, minute, second) = fields;
    if month == 0 || day == 0 || day > 31 || hour > 23 || minute > 59 || second > 59 {
        return None;
    }
    Some(fields)
}

/// ASCII bytes `char::is_whitespace` treats as whitespace (the only ones
/// relevant below 0x80): tab, LF, VT, FF, CR, space.
#[inline]
fn ascii_space(c: u8) -> bool {
    matches!(c, b'\t' | b'\n' | 0x0b | 0x0c | b'\r' | b' ')
}

/// Decimal digit value of an ASCII byte, or `None`.
#[inline]
fn digit(c: u8) -> Option<u8> {
    c.is_ascii_digit().then(|| c - b'0')
}

/// Appends `v`'s decimal digits to `out` without going through `fmt`.
fn push_decimal(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII"));
}

impl CivilDateTime {
    /// Appends the support-log timestamp to `out`, byte-for-byte
    /// identical to this type's `Display` (`Sun Jul 23 05:43:36 PDT
    /// 2006`) but via direct digit pushes instead of the `fmt`
    /// machinery — the corpus renderer's hot path. Equivalence with
    /// `Display` is pinned by a sweep test below.
    pub fn push_into(&self, out: &mut String) {
        // In-range fields (every rendered study instant) assemble the
        // whole 28-byte canonical layout in one stack buffer and append
        // it with a single push; out-of-range fields (callers with
        // degenerate hand-built values) keep the general pushes below.
        if self.day >= 1 && self.day <= 31 && self.hour < 24 && self.minute < 60 && self.second < 60
        {
            if let (1000..=9999, 1..=12) = (self.year, self.month) {
                let mut buf = *b"Www Mmm dd HH:MM:SS PDT yyyy";
                buf[..3].copy_from_slice(self.weekday_name().as_bytes());
                buf[4..7].copy_from_slice(self.month_name().as_bytes());
                buf[8] = if self.day < 10 {
                    b' '
                } else {
                    b'0' + self.day / 10
                };
                buf[9] = b'0' + self.day % 10;
                for (at, v) in [(11, self.hour), (14, self.minute), (17, self.second)] {
                    buf[at] = b'0' + v / 10;
                    buf[at + 1] = b'0' + v % 10;
                }
                let mut y = self.year as u16;
                for slot in buf[24..28].iter_mut().rev() {
                    *slot = b'0' + (y % 10) as u8;
                    y /= 10;
                }
                out.push_str(std::str::from_utf8(&buf).expect("canonical layout is ASCII"));
                return;
            }
        }
        out.push_str(self.weekday_name());
        out.push(' ');
        out.push_str(self.month_name());
        out.push(' ');
        // `{:2}`: space-pad the day to width 2.
        if self.day < 10 {
            out.push(' ');
        }
        push_decimal(out, self.day as u64);
        out.push(' ');
        // `{:02}`: zero-pad each clock field to width 2.
        for (i, field) in [self.hour, self.minute, self.second]
            .into_iter()
            .enumerate()
        {
            if i > 0 {
                out.push(':');
            }
            if field < 10 {
                out.push('0');
            }
            push_decimal(out, field as u64);
        }
        out.push_str(" PDT ");
        if self.year < 0 {
            out.push('-');
            push_decimal(out, (self.year as i64).unsigned_abs());
        } else {
            push_decimal(out, self.year as u64);
        }
    }
}

impl fmt::Display for CivilDateTime {
    /// Renders in the support-log layout: `Sun Jul 23 05:43:36 PDT 2006`.
    ///
    /// The study systems logged in a fixed zone; we follow suit with a fixed
    /// `PDT` label as seen in the paper's Figure 3.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {:2} {:02}:{:02}:{:02} PDT {}",
            self.weekday_name(),
            self.month_name(),
            self.day,
            self.hour,
            self.minute,
            self.second,
            self.year
        )
    }
}

/// Days since 1970-01-01 for a proleptic-Gregorian date
/// (Howard Hinnant's `days_from_civil`).
pub fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // [0, 11], Mar=0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

/// Day of week for days-since-epoch: 0 = Sunday .. 6 = Saturday.
pub fn weekday_from_days(z: i64) -> u8 {
    // 1970-01-01 was a Thursday (4).
    (((z % 7) + 7 + 4) % 7) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_jan_2004() {
        let c = SimTime::ZERO.civil();
        assert_eq!((c.year, c.month, c.day), (2004, 1, 1));
        assert_eq!((c.hour, c.minute, c.second), (0, 0, 0));
        // 2004-01-01 was a Thursday.
        assert_eq!(c.weekday_name(), "Thu");
    }

    #[test]
    fn study_end_is_sep_2007() {
        let c = SimTime::study_end().civil();
        assert_eq!((c.year, c.month, c.day), (2007, 9, 1));
    }

    #[test]
    fn study_window_is_44_months() {
        let years = SimTime::study_end().as_years();
        assert!((years - 44.0 / 12.0).abs() < 0.01, "window = {years} years");
    }

    #[test]
    fn civil_round_trip_across_leap_years() {
        // 2004 is a leap year; sweep across it day by day.
        for day in 0..1500i64 {
            let z = days_from_civil(2004, 1, 1) + day;
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
        }
    }

    #[test]
    fn leap_day_2004_exists() {
        let z = days_from_civil(2004, 2, 29);
        assert_eq!(civil_from_days(z), (2004, 2, 29));
        assert_eq!(civil_from_days(z + 1), (2004, 3, 1));
    }

    #[test]
    fn display_matches_paper_layout() {
        // The paper's Figure 3 shows: "Sun Jul 23 05:43:36 PDT".
        let t = CivilDateTime {
            year: 2006,
            month: 7,
            day: 23,
            hour: 5,
            minute: 43,
            second: 36,
            weekday: 0,
        };
        assert_eq!(t.to_string(), "Sun Jul 23 05:43:36 PDT 2006");
    }

    #[test]
    fn push_into_matches_display_across_the_study_window() {
        // Sweep odd offsets across the whole window so every weekday,
        // month, single/double-digit day, and clock-field padding case
        // is exercised.
        let end = SimTime::study_end().as_secs();
        let mut out = String::new();
        let mut t = 0u64;
        while t < end {
            let civil = SimTime::from_secs(t).civil();
            out.clear();
            civil.push_into(&mut out);
            assert_eq!(out, civil.to_string(), "at t={t}");
            t += 86_399 * 3 + 7; // step ~3 days, drifting through times of day
        }
        // Degenerate field values still match Display.
        let weird = CivilDateTime {
            year: -44,
            month: 12,
            day: 31,
            hour: 0,
            minute: 0,
            second: 59,
            weekday: 6,
        };
        out.clear();
        weird.push_into(&mut out);
        assert_eq!(out, weird.to_string());
    }

    #[test]
    fn jul_23_2006_was_a_sunday() {
        let t = CivilDateTime {
            year: 2006,
            month: 7,
            day: 23,
            hour: 5,
            minute: 43,
            second: 36,
            weekday: 0,
        }
        .to_sim_time()
        .unwrap();
        assert_eq!(t.civil().weekday_name(), "Sun");
    }

    #[test]
    fn timestamp_parse_round_trip() {
        let t = SimTime::from_secs(79_876_543);
        let rendered = t.civil().to_string();
        let parsed = CivilDateTime::parse_log_timestamp(&rendered).unwrap();
        assert_eq!(parsed.to_sim_time().unwrap(), t);
    }

    #[test]
    fn timestamp_parse_rejects_malformed() {
        assert!(CivilDateTime::parse_log_timestamp("not a date").is_none());
        assert!(CivilDateTime::parse_log_timestamp("Sun Jul 23").is_none());
        assert!(CivilDateTime::parse_log_timestamp("Sun Xxx 23 05:43:36 PDT 2006").is_none());
        assert!(CivilDateTime::parse_log_timestamp("Sun Jul 23 25:43:36 PDT 2006").is_none());
    }

    #[test]
    fn duration_display_picks_sane_units() {
        assert_eq!(SimDuration::from_secs(42).to_string(), "42s");
        assert_eq!(SimDuration::from_secs(90).to_string(), "1m30s");
        assert_eq!(SimDuration::from_hours(2.5).to_string(), "2h30m");
        assert_eq!(SimDuration::from_days(1.5).to_string(), "1d12h");
    }

    #[test]
    fn arithmetic_is_saturating_on_subtraction() {
        let a = SimTime::from_secs(100);
        let b = SimTime::from_secs(300);
        assert_eq!((a - b).as_secs(), 0);
        assert_eq!((b - a).as_secs(), 200);
        assert_eq!(a.saturating_sub(SimDuration::from_secs(500)), SimTime::ZERO);
    }

    #[test]
    fn unit_conversions_are_consistent() {
        assert_eq!(SimTime::from_hours(1.0).as_secs(), 3600);
        assert_eq!(SimTime::from_days(2.0).as_secs(), 2 * 86_400);
        let one_year = SimDuration::from_years(1.0);
        assert!((one_year.as_years() - 1.0).abs() < 1e-9);
    }
}
