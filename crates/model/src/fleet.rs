//! Materialized fleet: systems, shelves, loops, RAID groups, and the initial
//! disk population.
//!
//! [`Fleet::build`] turns a [`FleetConfig`] into a concrete topology,
//! deterministically from a seed. The fleet is *static* — it describes
//! layout and the initial installs; disk replacements over the study period
//! are managed by the simulator, which allocates fresh
//! [`DiskInstanceId`]s beyond the initial range.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::class::{PathConfig, SystemClass};
use crate::config::{ClassConfig, FleetConfig};
use crate::disk::DiskModelId;
use crate::id::{DeviceAddr, DiskInstanceId, LoopId, RaidGroupId, ShelfId, SlotAddr, SystemId};
use crate::raid::RaidType;
use crate::shelf::ShelfModel;
use crate::time::SimTime;

/// An FC loop: the physical interconnect shared by a chain of shelves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FcLoop {
    /// Fleet-unique loop id.
    pub id: LoopId,
    /// Owning system.
    pub system: SystemId,
    /// Shelves chained on this loop, in chain order.
    pub shelves: Vec<ShelfId>,
}

/// One shelf enclosure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shelf {
    /// Fleet-unique shelf id.
    pub id: ShelfId,
    /// Owning system.
    pub system: SystemId,
    /// Enclosure product model.
    pub model: ShelfModel,
    /// The FC loop this shelf is chained on.
    pub fc_loop: LoopId,
    /// Host adapter number within the system (identifies the loop in logs).
    pub adapter: u8,
    /// Position of this shelf on its loop (0-based), used to derive
    /// device target numbers.
    pub loop_position: u8,
    /// Number of populated bays.
    pub bays: u8,
}

impl Shelf {
    /// Adapter-relative device address of a bay on this shelf, as printed
    /// in support logs (e.g. `8.24`).
    pub fn device_addr(&self, bay: u8) -> DeviceAddr {
        DeviceAddr::new(self.adapter, self.loop_position * 16 + bay)
    }
}

/// One RAID group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaidGroup {
    /// Fleet-unique RAID group id.
    pub id: RaidGroupId,
    /// Owning system.
    pub system: SystemId,
    /// RAID level.
    pub raid_type: RaidType,
    /// Member slots (data + parity).
    pub slots: Vec<SlotAddr>,
}

/// One storage system: a head plus its storage subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageSystem {
    /// Fleet-unique system id.
    pub id: SystemId,
    /// Capability class.
    pub class: SystemClass,
    /// The (single) disk model this system is populated with.
    pub disk_model: DiskModelId,
    /// The (single) shelf enclosure model this system uses.
    pub shelf_model: ShelfModel,
    /// Single or dual FC paths.
    pub path_config: PathConfig,
    /// When the system entered the field.
    pub installed_at: SimTime,
    /// Shelves belonging to this system.
    pub shelves: Vec<ShelfId>,
    /// FC loops belonging to this system.
    pub loops: Vec<LoopId>,
    /// RAID groups belonging to this system.
    pub raid_groups: Vec<RaidGroupId>,
}

/// A disk instance installed in a slot at some time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskInstall {
    /// Instance id (initial installs are `0..Fleet::disk_count()`).
    pub id: DiskInstanceId,
    /// Disk product model.
    pub model: DiskModelId,
    /// Physical position.
    pub slot: SlotAddr,
    /// RAID group membership of the slot.
    pub raid_group: RaidGroupId,
    /// Install time (= system install time for initial installs).
    pub installed_at: SimTime,
}

/// A complete, materialized fleet.
#[derive(Debug, Clone)]
pub struct Fleet {
    systems: Vec<StorageSystem>,
    shelves: Vec<Shelf>,
    loops: Vec<FcLoop>,
    raid_groups: Vec<RaidGroup>,
    initial_disks: Vec<DiskInstall>,
    slot_to_group: HashMap<SlotAddr, RaidGroupId>,
    disk_catalog: crate::disk::DiskCatalog,
    shelf_catalog: crate::shelf::ShelfCatalog,
}

impl Fleet {
    /// Materializes a fleet from a configuration, deterministically for a
    /// given seed.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`FleetConfig::validate`].
    pub fn build(config: &FleetConfig, seed: u64) -> Fleet {
        config.validate().expect("invalid fleet config");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5f5f_f1ee_7000_0001);
        let study_end = SimTime::study_end().as_secs();

        let mut fleet = Fleet {
            systems: Vec::new(),
            shelves: Vec::new(),
            loops: Vec::new(),
            raid_groups: Vec::new(),
            initial_disks: Vec::new(),
            slot_to_group: HashMap::new(),
            disk_catalog: config.disk_catalog.clone(),
            shelf_catalog: config.shelf_catalog.clone(),
        };

        for class_cfg in &config.classes {
            for _ in 0..class_cfg.n_systems {
                fleet.add_system(class_cfg, study_end, &mut rng);
            }
        }
        fleet
    }

    fn add_system(&mut self, cfg: &ClassConfig, study_end: u64, rng: &mut StdRng) {
        let sys_id = SystemId(self.systems.len() as u32);
        let (shelf_model, disk_model) = pick_weighted2(&cfg.mix, rng);
        let path_config = cfg.path_config_for(rng.gen::<f64>());
        let (w0, w1) = cfg.install_window;
        let frac = rng.gen_range(w0..w1.max(w0 + 1e-9));
        let installed_at = SimTime::from_secs((frac * study_end as f64) as u64);

        // Shelf count: mean ± 40%, at least one.
        let spread = cfg.shelves_per_system * 0.4;
        let n_shelves = (rng
            .gen_range(cfg.shelves_per_system - spread..=cfg.shelves_per_system + spread)
            .round() as i64)
            .max(1) as u32;

        let mut shelf_ids = Vec::with_capacity(n_shelves as usize);
        let mut loop_ids = Vec::new();
        // Chain shelves onto loops of `shelves_per_loop`.
        let mut pos_on_loop: u8 = 0;
        let mut adapter: u8 = 7; // first FC adapter number, for log realism
        let mut current_loop: Option<usize> = None;
        for _ in 0..n_shelves {
            if current_loop.is_none() || pos_on_loop >= cfg.shelves_per_loop {
                let loop_id = LoopId(self.loops.len() as u32);
                self.loops.push(FcLoop {
                    id: loop_id,
                    system: sys_id,
                    shelves: Vec::new(),
                });
                loop_ids.push(loop_id);
                current_loop = Some(loop_id.index());
                pos_on_loop = 0;
                adapter = adapter.wrapping_add(1);
            }
            let loop_idx = current_loop.expect("loop allocated above");
            let shelf_id = ShelfId(self.shelves.len() as u32);
            self.shelves.push(Shelf {
                id: shelf_id,
                system: sys_id,
                model: shelf_model,
                fc_loop: LoopId(loop_idx as u32),
                adapter,
                loop_position: pos_on_loop,
                bays: cfg.disks_per_shelf,
            });
            self.loops[loop_idx].shelves.push(shelf_id);
            shelf_ids.push(shelf_id);
            pos_on_loop += 1;
        }

        // Carve RAID groups loop by loop so spanning groups share an
        // interconnect, as in the studied systems.
        let mut raid_group_ids = Vec::new();
        for loop_id in &loop_ids {
            let loop_shelves = &self.loops[loop_id.index()].shelves;
            for slots in cfg
                .layout
                .assign(loop_shelves, cfg.disks_per_shelf, cfg.raid_group_size)
            {
                let rg_id = RaidGroupId(self.raid_groups.len() as u32);
                let raid_type = if rng.gen::<f64>() < cfg.raid6_fraction {
                    RaidType::Raid6
                } else {
                    RaidType::Raid4
                };
                for slot in &slots {
                    self.slot_to_group.insert(*slot, rg_id);
                    self.initial_disks.push(DiskInstall {
                        id: DiskInstanceId(self.initial_disks.len() as u64),
                        model: disk_model,
                        slot: *slot,
                        raid_group: rg_id,
                        installed_at,
                    });
                }
                self.raid_groups.push(RaidGroup {
                    id: rg_id,
                    system: sys_id,
                    raid_type,
                    slots,
                });
                raid_group_ids.push(rg_id);
            }
        }

        self.systems.push(StorageSystem {
            id: sys_id,
            class: cfg.class,
            disk_model,
            shelf_model,
            path_config,
            installed_at,
            shelves: shelf_ids,
            loops: loop_ids,
            raid_groups: raid_group_ids,
        });
    }

    /// All systems, indexed by [`SystemId`].
    pub fn systems(&self) -> &[StorageSystem] {
        &self.systems
    }

    /// All shelves, indexed by [`ShelfId`].
    pub fn shelves(&self) -> &[Shelf] {
        &self.shelves
    }

    /// All FC loops, indexed by [`LoopId`].
    pub fn loops(&self) -> &[FcLoop] {
        &self.loops
    }

    /// All RAID groups, indexed by [`RaidGroupId`].
    pub fn raid_groups(&self) -> &[RaidGroup] {
        &self.raid_groups
    }

    /// The initial disk population (instance ids `0..disk_count()`).
    pub fn initial_disks(&self) -> &[DiskInstall] {
        &self.initial_disks
    }

    /// Number of initially-installed disks.
    pub fn disk_count(&self) -> usize {
        self.initial_disks.len()
    }

    /// System owning a shelf.
    pub fn system_of_shelf(&self, shelf: ShelfId) -> &StorageSystem {
        &self.systems[self.shelves[shelf.index()].system.index()]
    }

    /// Shelf record for an id.
    pub fn shelf(&self, id: ShelfId) -> &Shelf {
        &self.shelves[id.index()]
    }

    /// System record for an id.
    pub fn system(&self, id: SystemId) -> &StorageSystem {
        &self.systems[id.index()]
    }

    /// RAID group record for an id.
    pub fn raid_group(&self, id: RaidGroupId) -> &RaidGroup {
        &self.raid_groups[id.index()]
    }

    /// RAID group that a slot belongs to.
    pub fn raid_group_of(&self, slot: SlotAddr) -> Option<RaidGroupId> {
        self.slot_to_group.get(&slot).copied()
    }

    /// Device address of a slot as printed in logs.
    pub fn device_addr(&self, slot: SlotAddr) -> DeviceAddr {
        self.shelf(slot.shelf).device_addr(slot.bay)
    }

    /// The disk catalog this fleet was built against.
    pub fn disk_catalog(&self) -> &crate::disk::DiskCatalog {
        &self.disk_catalog
    }

    /// The shelf catalog this fleet was built against.
    pub fn shelf_catalog(&self) -> &crate::shelf::ShelfCatalog {
        &self.shelf_catalog
    }

    /// Iterates systems of one class.
    pub fn systems_of_class(
        &self,
        class: SystemClass,
    ) -> impl Iterator<Item = &StorageSystem> + '_ {
        self.systems.iter().filter(move |s| s.class == class)
    }

    /// Composition summary per class, for reports and sanity checks.
    pub fn stats(&self) -> Vec<FleetClassStats> {
        SystemClass::ALL
            .into_iter()
            .filter_map(|class| {
                let systems: Vec<&StorageSystem> = self.systems_of_class(class).collect();
                if systems.is_empty() {
                    return None;
                }
                let shelves: usize = systems.iter().map(|s| s.shelves.len()).sum();
                let raid_groups: usize = systems.iter().map(|s| s.raid_groups.len()).sum();
                let slots: usize = systems
                    .iter()
                    .flat_map(|s| s.shelves.iter())
                    .map(|&sh| self.shelf(sh).bays as usize)
                    .sum();
                let dual = systems
                    .iter()
                    .filter(|s| s.path_config == crate::class::PathConfig::DualPath)
                    .count();
                let spans: Vec<usize> = systems
                    .iter()
                    .flat_map(|s| s.raid_groups.iter())
                    .map(|&rg| crate::layout::shelves_spanned(&self.raid_group(rg).slots))
                    .collect();
                let avg_span = spans.iter().sum::<usize>() as f64 / spans.len() as f64;
                Some(FleetClassStats {
                    class,
                    systems: systems.len(),
                    shelves,
                    slots,
                    raid_groups,
                    dual_path_systems: dual,
                    avg_shelves_per_system: shelves as f64 / systems.len() as f64,
                    avg_raid_group_span: avg_span,
                })
            })
            .collect()
    }
}

/// Composition summary of one class within a fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetClassStats {
    /// The class summarized.
    pub class: SystemClass,
    /// Systems of this class.
    pub systems: usize,
    /// Shelf enclosures.
    pub shelves: usize,
    /// Populated disk slots (= initial disk installs).
    pub slots: usize,
    /// RAID groups.
    pub raid_groups: usize,
    /// Systems configured with dual paths.
    pub dual_path_systems: usize,
    /// Mean shelves per system.
    pub avg_shelves_per_system: f64,
    /// Mean number of distinct shelves a RAID group spans.
    pub avg_raid_group_span: f64,
}

/// Draws one pair from a weighted joint mix (weights need not be
/// normalized).
fn pick_weighted2<A: Copy, B: Copy>(mix: &[(A, B, f64)], rng: &mut StdRng) -> (A, B) {
    let total: f64 = mix.iter().map(|(_, _, w)| w).sum();
    debug_assert!(total > 0.0, "mix weights must not all be zero");
    let mut u = rng.gen::<f64>() * total;
    for (a, b, w) in mix {
        u -= w;
        if u <= 0.0 {
            return (*a, *b);
        }
    }
    let last = mix.last().expect("non-empty mix");
    (last.0, last.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{shelves_spanned, LayoutPolicy};

    fn small_fleet() -> Fleet {
        Fleet::build(&FleetConfig::paper().scaled(0.002), 7)
    }

    #[test]
    fn build_is_deterministic_for_a_seed() {
        let cfg = FleetConfig::paper().scaled(0.001);
        let a = Fleet::build(&cfg, 42);
        let b = Fleet::build(&cfg, 42);
        assert_eq!(a.systems(), b.systems());
        assert_eq!(a.initial_disks(), b.initial_disks());
        let c = Fleet::build(&cfg, 43);
        assert!(
            !(a.initial_disks().len() == c.initial_disks().len()
                && a.systems()[0].disk_model == c.systems()[0].disk_model
                && a.systems()[0].installed_at == c.systems()[0].installed_at),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn ids_are_dense_and_consistent() {
        let fleet = small_fleet();
        for (i, sys) in fleet.systems().iter().enumerate() {
            assert_eq!(sys.id.index(), i);
            for &shelf_id in &sys.shelves {
                assert_eq!(fleet.shelf(shelf_id).system, sys.id);
            }
            for &rg_id in &sys.raid_groups {
                assert_eq!(fleet.raid_group(rg_id).system, sys.id);
            }
        }
        for (i, disk) in fleet.initial_disks().iter().enumerate() {
            assert_eq!(disk.id.index(), i);
            assert_eq!(fleet.raid_group_of(disk.slot), Some(disk.raid_group));
        }
    }

    #[test]
    fn every_slot_belongs_to_exactly_one_raid_group() {
        let fleet = small_fleet();
        let total_slots: usize = fleet.shelves().iter().map(|s| s.bays as usize).sum();
        assert_eq!(fleet.disk_count(), total_slots);
        let in_groups: usize = fleet.raid_groups().iter().map(|g| g.slots.len()).sum();
        assert_eq!(in_groups, total_slots);
    }

    #[test]
    fn raid_groups_span_multiple_shelves_by_default() {
        let fleet = small_fleet();
        // Average spanning should be close to shelves_per_loop (~2-3) for
        // groups larger than one shelf's share.
        let mut spans = Vec::new();
        for rg in fleet.raid_groups().iter().filter(|g| g.slots.len() >= 6) {
            spans.push(shelves_spanned(&rg.slots));
        }
        let avg = spans.iter().sum::<usize>() as f64 / spans.len() as f64;
        assert!(avg > 1.8, "average span {avg} too low");
    }

    #[test]
    fn same_shelf_layout_produces_single_shelf_groups() {
        let cfg = FleetConfig::paper()
            .scaled(0.002)
            .with_layout(LayoutPolicy::SameShelf);
        let fleet = Fleet::build(&cfg, 7);
        for rg in fleet.raid_groups() {
            assert_eq!(shelves_spanned(&rg.slots), 1);
        }
    }

    #[test]
    fn class_proportions_roughly_match_table_1() {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.01), 11);
        let nearline = fleet.systems_of_class(SystemClass::NearLine).count();
        let low_end = fleet.systems_of_class(SystemClass::LowEnd).count();
        // Low-end systems outnumber near-line roughly 4.5 : 1.
        let ratio = low_end as f64 / nearline as f64;
        assert!((3.5..5.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn install_times_fall_inside_study_window() {
        let fleet = small_fleet();
        let end = SimTime::study_end();
        for sys in fleet.systems() {
            assert!(sys.installed_at < end);
        }
        for disk in fleet.initial_disks() {
            assert!(disk.installed_at < end);
        }
    }

    #[test]
    fn device_addresses_are_unique_within_a_system() {
        let fleet = small_fleet();
        for sys in fleet.systems() {
            let mut addrs = Vec::new();
            for &shelf_id in &sys.shelves {
                let shelf = fleet.shelf(shelf_id);
                for bay in 0..shelf.bays {
                    addrs.push(shelf.device_addr(bay));
                }
            }
            let n = addrs.len();
            addrs.sort();
            addrs.dedup();
            assert_eq!(addrs.len(), n, "duplicate device address in {}", sys.id);
        }
    }

    #[test]
    fn loops_partition_system_shelves() {
        let fleet = small_fleet();
        for sys in fleet.systems() {
            let via_loops: usize = sys
                .loops
                .iter()
                .map(|l| fleet.loops()[l.index()].shelves.len())
                .sum();
            assert_eq!(via_loops, sys.shelves.len());
        }
    }

    #[test]
    fn one_disk_and_shelf_model_per_system_drawn_from_mix() {
        let fleet = small_fleet();
        let cfg = FleetConfig::paper();
        for sys in fleet.systems() {
            let class_cfg = cfg.class(sys.class).unwrap();
            assert!(class_cfg
                .mix
                .iter()
                .any(|(s, m, _)| *s == sys.shelf_model && *m == sys.disk_model));
        }
    }

    #[test]
    fn fleet_stats_summarize_composition() {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.01), 13);
        let stats = fleet.stats();
        assert_eq!(stats.len(), 4);
        let total_systems: usize = stats.iter().map(|s| s.systems).sum();
        assert_eq!(total_systems, fleet.systems().len());
        let total_slots: usize = stats.iter().map(|s| s.slots).sum();
        assert_eq!(total_slots, fleet.disk_count());
        for s in &stats {
            assert!(s.avg_shelves_per_system >= 1.0);
            assert!(s.avg_raid_group_span >= 1.0);
            if !s.class.supports_multipathing() {
                assert_eq!(s.dual_path_systems, 0);
            }
        }
        // Near-line and mid/high-end systems are multi-shelf; RAID groups
        // span shelves on average.
        let nl = stats
            .iter()
            .find(|s| s.class == SystemClass::NearLine)
            .unwrap();
        assert!(nl.avg_shelves_per_system > 4.0);
        assert!(nl.avg_raid_group_span > 1.5);
    }

    #[test]
    fn dual_path_only_on_supporting_classes_and_about_a_third() {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.01), 3);
        for sys in fleet.systems() {
            if sys.path_config == PathConfig::DualPath {
                assert!(sys.class.supports_multipathing());
            }
        }
        let mid: Vec<_> = fleet.systems_of_class(SystemClass::MidRange).collect();
        let dual = mid
            .iter()
            .filter(|s| s.path_config == PathConfig::DualPath)
            .count();
        let frac = dual as f64 / mid.len() as f64;
        assert!((0.2..0.5).contains(&frac), "dual-path fraction {frac}");
    }
}
