//! Fleet configuration: per-class population specs mirroring the paper's
//! Table 1.
//!
//! [`FleetConfig::paper`] reproduces the studied fleet's composition —
//! ~39,000 systems across four classes, ~155,000 shelves, ~1.8 M disks —
//! and [`FleetConfig::scaled`] shrinks it proportionally for tests and
//! benches. Disk/shelf model mixes per class follow the combinations shown
//! in the paper's Figure 5.

use crate::class::{PathConfig, SystemClass};
use crate::disk::{DiskCatalog, DiskModelId};
use crate::layout::LayoutPolicy;
use crate::shelf::{ShelfCatalog, ShelfModel, SHELF_BAYS};

/// Population and composition parameters for one system class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassConfig {
    /// Which class this config describes.
    pub class: SystemClass,
    /// Number of systems of this class in the fleet.
    pub n_systems: u32,
    /// Mean number of shelf enclosures per system (sampled per system with
    /// ±40% spread, minimum 1).
    pub shelves_per_system: f64,
    /// Populated bays per shelf (≤ [`SHELF_BAYS`]).
    pub disks_per_shelf: u8,
    /// Target RAID group size in disks.
    pub raid_group_size: u8,
    /// Shelves chained on one FC loop (the paper's RAID groups span about
    /// 3 shelves, which share an interconnect).
    pub shelves_per_loop: u8,
    /// Fraction of RAID groups built as RAID6 (the rest are RAID4).
    pub raid6_fraction: f64,
    /// Fraction of subsystems configured with dual paths (only meaningful
    /// for classes that support multipathing; ~1/3 in the study §4.3).
    pub dual_path_fraction: f64,
    /// Joint (shelf model, disk model) mix: one combination per system is
    /// drawn. Joint, because the paper's Figure 5 shows that which disk
    /// models appear with which shelf models is *not* independent (e.g.
    /// mid-range Shelf C hosts only disks B-1/C-1/G-1/H-1).
    pub mix: Vec<(ShelfModel, DiskModelId, f64)>,
    /// System install window as fractions of the study period `[start, end)`.
    pub install_window: (f64, f64),
    /// How RAID groups are carved out of shelves.
    pub layout: LayoutPolicy,
}

impl ClassConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.disks_per_shelf == 0 || self.disks_per_shelf > SHELF_BAYS {
            return Err(format!(
                "{}: disks_per_shelf {} outside 1..={SHELF_BAYS}",
                self.class, self.disks_per_shelf
            ));
        }
        if self.raid_group_size == 0 {
            return Err(format!("{}: raid_group_size must be positive", self.class));
        }
        if self.shelves_per_loop == 0 {
            return Err(format!("{}: shelves_per_loop must be positive", self.class));
        }
        if self.shelves_per_system < 1.0 {
            return Err(format!("{}: shelves_per_system must be >= 1", self.class));
        }
        if !(0.0..=1.0).contains(&self.raid6_fraction) {
            return Err(format!("{}: raid6_fraction outside [0,1]", self.class));
        }
        if !(0.0..=1.0).contains(&self.dual_path_fraction) {
            return Err(format!("{}: dual_path_fraction outside [0,1]", self.class));
        }
        if self.dual_path_fraction > 0.0 && !self.class.supports_multipathing() {
            return Err(format!("{} does not support multipathing", self.class));
        }
        if self.mix.is_empty() {
            return Err(format!("{}: empty shelf/disk mix", self.class));
        }
        if self.mix.iter().any(|(_, _, w)| *w < 0.0) {
            return Err(format!("{}: negative mix weight", self.class));
        }
        let (start, end) = self.install_window;
        if !(0.0..=1.0).contains(&start) || !(start..=1.0).contains(&end) {
            return Err(format!(
                "{}: install window [{start},{end}] invalid",
                self.class
            ));
        }
        Ok(())
    }

    /// Expected number of shelves contributed by this class.
    pub fn expected_shelves(&self) -> f64 {
        self.n_systems as f64 * self.shelves_per_system
    }

    /// Expected number of initially-installed disks contributed by this
    /// class (replacements during the study add more instances on top).
    pub fn expected_disks(&self) -> f64 {
        self.expected_shelves() * self.disks_per_shelf as f64
    }

    /// The paths configuration drawn for a uniform sample `u ∈ [0,1)`.
    pub fn path_config_for(&self, u: f64) -> PathConfig {
        if self.class.supports_multipathing() && u < self.dual_path_fraction {
            PathConfig::DualPath
        } else {
            PathConfig::SinglePath
        }
    }
}

/// Configuration for a whole synthetic fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Per-class population specs.
    pub classes: Vec<ClassConfig>,
    /// Disk model catalog in effect.
    pub disk_catalog: DiskCatalog,
    /// Shelf model catalog in effect.
    pub shelf_catalog: ShelfCatalog,
}

impl FleetConfig {
    /// The full-scale configuration mirroring the paper's Table 1:
    /// ~39,000 systems, ~155,000 shelves, ~1.8 M disks across four classes.
    pub fn paper() -> Self {
        let m = |s: &str| DiskModelId::parse(s).expect("catalog model id");
        let nearline = ClassConfig {
            class: SystemClass::NearLine,
            n_systems: 4_927,
            shelves_per_system: 6.8,
            disks_per_shelf: 13,
            raid_group_size: 7,
            shelves_per_loop: 3,
            raid6_fraction: 0.35,
            dual_path_fraction: 0.0,
            mix: vec![
                (ShelfModel::C, m("I-1"), 0.24),
                (ShelfModel::C, m("J-1"), 0.22),
                (ShelfModel::C, m("J-2"), 0.20),
                (ShelfModel::C, m("K-1"), 0.18),
                (ShelfModel::C, m("I-2"), 0.16),
            ],
            install_window: (0.20, 0.95),
            layout: LayoutPolicy::SpanShelves,
        };
        let low_end = ClassConfig {
            class: SystemClass::LowEnd,
            n_systems: 22_031,
            shelves_per_system: 1.7,
            disks_per_shelf: 7,
            raid_group_size: 6,
            shelves_per_loop: 2,
            raid6_fraction: 0.30,
            dual_path_fraction: 0.0,
            mix: vec![
                // Figure 5(b)/(c): the same five disk models appear with
                // both low-end shelf models.
                (ShelfModel::A, m("A-2"), 0.13),
                (ShelfModel::A, m("A-3"), 0.12),
                (ShelfModel::A, m("D-2"), 0.11),
                (ShelfModel::A, m("D-3"), 0.10),
                (ShelfModel::A, m("H-2"), 0.04),
                (ShelfModel::B, m("A-2"), 0.13),
                (ShelfModel::B, m("A-3"), 0.12),
                (ShelfModel::B, m("D-2"), 0.11),
                (ShelfModel::B, m("D-3"), 0.10),
                (ShelfModel::B, m("H-2"), 0.04),
            ],
            install_window: (0.25, 0.95),
            layout: LayoutPolicy::SpanShelves,
        };
        let mid_range = ClassConfig {
            class: SystemClass::MidRange,
            n_systems: 7_154,
            shelves_per_system: 7.4,
            disks_per_shelf: 11,
            raid_group_size: 7,
            shelves_per_loop: 3,
            raid6_fraction: 0.35,
            dual_path_fraction: 1.0 / 3.0,
            mix: vec![
                // Shelf C combination (Figure 5d): B-1, C-1, G-1, H-1 only.
                (ShelfModel::C, m("B-1"), 0.11),
                (ShelfModel::C, m("C-1"), 0.10),
                (ShelfModel::C, m("G-1"), 0.09),
                (ShelfModel::C, m("H-1"), 0.05),
                // Shelf B combination (Figure 5e).
                (ShelfModel::B, m("A-1"), 0.07),
                (ShelfModel::B, m("A-2"), 0.09),
                (ShelfModel::B, m("C-1"), 0.08),
                (ShelfModel::B, m("C-2"), 0.08),
                (ShelfModel::B, m("D-1"), 0.06),
                (ShelfModel::B, m("D-2"), 0.10),
                (ShelfModel::B, m("D-3"), 0.06),
                (ShelfModel::B, m("E-1"), 0.05),
                (ShelfModel::B, m("H-1"), 0.03),
                (ShelfModel::B, m("H-2"), 0.03),
            ],
            install_window: (0.10, 0.90),
            layout: LayoutPolicy::SpanShelves,
        };
        let high_end = ClassConfig {
            class: SystemClass::HighEnd,
            n_systems: 5_003,
            shelves_per_system: 6.7,
            disks_per_shelf: 13,
            raid_group_size: 9,
            shelves_per_loop: 3,
            raid6_fraction: 0.40,
            dual_path_fraction: 1.0 / 3.0,
            mix: vec![
                (ShelfModel::B, m("A-2"), 0.12),
                (ShelfModel::B, m("A-3"), 0.12),
                (ShelfModel::B, m("C-2"), 0.11),
                (ShelfModel::B, m("D-2"), 0.13),
                (ShelfModel::B, m("D-3"), 0.11),
                (ShelfModel::B, m("E-1"), 0.10),
                (ShelfModel::B, m("F-1"), 0.11),
                (ShelfModel::B, m("F-2"), 0.11),
                (ShelfModel::B, m("H-1"), 0.05),
                (ShelfModel::B, m("H-2"), 0.04),
            ],
            install_window: (0.05, 0.90),
            layout: LayoutPolicy::SpanShelves,
        };
        FleetConfig {
            classes: vec![nearline, low_end, mid_range, high_end],
            disk_catalog: DiskCatalog::paper(),
            shelf_catalog: ShelfCatalog::paper(),
        }
    }

    /// Returns a copy with every class population multiplied by `factor`
    /// (rounded, minimum 1 system per class).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        for class in &mut self.classes {
            class.n_systems = ((class.n_systems as f64 * factor).round() as u32).max(1);
        }
        self
    }

    /// Returns a copy with every class using the given layout policy
    /// (for the RAID-layout ablation).
    pub fn with_layout(mut self, layout: LayoutPolicy) -> Self {
        for class in &mut self.classes {
            class.layout = layout;
        }
        self
    }

    /// Returns a copy restricted to the given classes.
    pub fn only_classes(mut self, keep: &[SystemClass]) -> Self {
        self.classes.retain(|c| keep.contains(&c.class));
        self
    }

    /// The config for one class, if present.
    pub fn class(&self, class: SystemClass) -> Option<&ClassConfig> {
        self.classes.iter().find(|c| c.class == class)
    }

    /// Validates all class configs and that every referenced disk/shelf
    /// model exists in the catalogs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.classes.is_empty() {
            return Err("no classes configured".to_owned());
        }
        for class in &self.classes {
            class.validate()?;
            for (shelf, model, _) in &class.mix {
                if self.disk_catalog.get(*model).is_none() {
                    return Err(format!("{}: unknown disk model {model}", class.class));
                }
                let expected = class.class.disk_type();
                let actual = self.disk_catalog.get(*model).expect("checked").disk_type;
                if actual != expected {
                    return Err(format!(
                        "{}: disk model {model} is {actual} but class uses {expected}",
                        class.class
                    ));
                }
                if self.shelf_catalog.get(*shelf).is_none() {
                    return Err(format!("{}: unknown shelf model {shelf}", class.class));
                }
            }
        }
        Ok(())
    }

    /// Total expected initial disk population.
    pub fn expected_disks(&self) -> f64 {
        self.classes.iter().map(ClassConfig::expected_disks).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_validates() {
        FleetConfig::paper()
            .validate()
            .expect("paper config is valid");
    }

    #[test]
    fn paper_scale_matches_table_1() {
        let cfg = FleetConfig::paper();
        let systems: u32 = cfg.classes.iter().map(|c| c.n_systems).sum();
        assert_eq!(systems, 4_927 + 22_031 + 7_154 + 5_003); // ~39k

        let shelves: f64 = cfg.classes.iter().map(ClassConfig::expected_shelves).sum();
        assert!(
            (140_000.0..175_000.0).contains(&shelves),
            "shelves = {shelves}"
        );

        let disks = cfg.expected_disks();
        assert!(
            (1_300_000.0..1_900_000.0).contains(&disks),
            "disks = {disks}"
        );
    }

    #[test]
    fn scaling_shrinks_proportionally_with_floor_of_one() {
        let cfg = FleetConfig::paper().scaled(0.01);
        let le = cfg.class(SystemClass::LowEnd).unwrap();
        assert_eq!(le.n_systems, 220);
        let tiny = FleetConfig::paper().scaled(1e-9);
        for class in &tiny.classes {
            assert_eq!(class.n_systems, 1);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = FleetConfig::paper().scaled(0.0);
    }

    #[test]
    fn validation_rejects_cross_type_disk_mix() {
        let mut cfg = FleetConfig::paper();
        // Put a SATA model into the low-end (FC) mix.
        cfg.classes[1]
            .mix
            .push((ShelfModel::A, DiskModelId::new('I', 1), 0.5));
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_multipathing_on_low_end() {
        let mut cfg = FleetConfig::paper();
        cfg.classes[1].dual_path_fraction = 0.5;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("multipathing"), "{err}");
    }

    #[test]
    fn validation_rejects_overfull_shelves() {
        let mut cfg = FleetConfig::paper();
        cfg.classes[0].disks_per_shelf = 15;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_install_window() {
        let mut cfg = FleetConfig::paper();
        cfg.classes[0].install_window = (0.9, 0.2);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn path_config_sampling_respects_class_support() {
        let cfg = FleetConfig::paper();
        let le = cfg.class(SystemClass::LowEnd).unwrap();
        assert_eq!(le.path_config_for(0.0), PathConfig::SinglePath);
        let mr = cfg.class(SystemClass::MidRange).unwrap();
        assert_eq!(mr.path_config_for(0.0), PathConfig::DualPath);
        assert_eq!(mr.path_config_for(0.99), PathConfig::SinglePath);
    }

    #[test]
    fn only_classes_filters() {
        let cfg = FleetConfig::paper().only_classes(&[SystemClass::MidRange]);
        assert_eq!(cfg.classes.len(), 1);
        assert_eq!(cfg.classes[0].class, SystemClass::MidRange);
    }

    #[test]
    fn with_layout_applies_everywhere() {
        let cfg = FleetConfig::paper().with_layout(LayoutPolicy::SameShelf);
        assert!(cfg
            .classes
            .iter()
            .all(|c| c.layout == LayoutPolicy::SameShelf));
    }
}
