//! The four-way failure taxonomy of the study and classified failure records.
//!
//! The study partitions storage subsystem failures along the I/O request path
//! (paper §2.3): **disk failures** (media/mechanics, or proactive fail-outs),
//! **physical interconnect failures** (HBA, cables, shelf power/backplane —
//! disks appear *missing*), **protocol failures** (driver/firmware
//! incompatibilities and bugs — disks visible but requests misbehave), and
//! **performance failures** (disks too slow while none of the former apply).

use std::fmt;

use crate::id::{DeviceAddr, DiskInstanceId, LoopId, RaidGroupId, ShelfId, SystemId};
use crate::time::SimTime;

/// One of the four storage subsystem failure types of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FailureType {
    /// Failure triggered by mechanisms internal to a disk (imperfect media,
    /// loose particles, rotational vibration), including proactive fail-outs
    /// based on on-disk health monitoring.
    Disk,
    /// Failure of the network connecting disks and storage heads: HBA
    /// failures, broken cables, shelf power outage, backplane errors, shelf
    /// FC driver errors. Affected disks appear missing.
    PhysicalInterconnect,
    /// Incompatibility between protocols in disk drivers / shelves / storage
    /// heads, or software bugs in disk drivers. Disks stay visible but I/O
    /// requests are not correctly responded to.
    Protocol,
    /// A disk cannot serve I/O in a timely manner while none of the other
    /// three failure types is detected (partial failures, unstable
    /// connectivity, heavy disk-level recovery).
    Performance,
}

impl FailureType {
    /// All four failure types, in the paper's canonical order.
    pub const ALL: [FailureType; 4] = [
        FailureType::Disk,
        FailureType::PhysicalInterconnect,
        FailureType::Protocol,
        FailureType::Performance,
    ];

    /// Stable dense index (0..4) for array-keyed tallies.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FailureType::Disk => 0,
            FailureType::PhysicalInterconnect => 1,
            FailureType::Protocol => 2,
            FailureType::Performance => 3,
        }
    }

    /// Human-readable label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            FailureType::Disk => "Disk Failure",
            FailureType::PhysicalInterconnect => "Physical Interconnect Failure",
            FailureType::Protocol => "Protocol Failure",
            FailureType::Performance => "Performance Failure",
        }
    }

    /// Short machine-friendly tag used in log records and report keys.
    pub fn tag(self) -> &'static str {
        match self {
            FailureType::Disk => "disk",
            FailureType::PhysicalInterconnect => "interconnect",
            FailureType::Protocol => "protocol",
            FailureType::Performance => "performance",
        }
    }

    /// Parses the short tag produced by [`FailureType::tag`].
    pub fn from_tag(tag: &str) -> Option<FailureType> {
        FailureType::ALL.into_iter().find(|t| t.tag() == tag)
    }
}

impl fmt::Display for FailureType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A per-failure-type tally; the workhorse accumulator of the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FailureCounts {
    counts: [u64; 4],
}

impl FailureCounts {
    /// An all-zero tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the tally for `ty` by one.
    pub fn record(&mut self, ty: FailureType) {
        self.counts[ty.index()] += 1;
    }

    /// Adds `n` events of type `ty`.
    pub fn add(&mut self, ty: FailureType, n: u64) {
        self.counts[ty.index()] += n;
    }

    /// Count for one failure type.
    #[inline]
    pub fn get(&self, ty: FailureType) -> u64 {
        self.counts[ty.index()]
    }

    /// Total events across all four types.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(type, count)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (FailureType, u64)> + '_ {
        FailureType::ALL
            .into_iter()
            .map(move |ty| (ty, self.get(ty)))
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &FailureCounts) {
        for (slot, v) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot += v;
        }
    }
}

impl FromIterator<FailureType> for FailureCounts {
    fn from_iter<I: IntoIterator<Item = FailureType>>(iter: I) -> Self {
        let mut counts = FailureCounts::new();
        for ty in iter {
            counts.record(ty);
        }
        counts
    }
}

impl Extend<FailureType> for FailureCounts {
    fn extend<I: IntoIterator<Item = FailureType>>(&mut self, iter: I) {
        for ty in iter {
            self.record(ty);
        }
    }
}

/// A fully-attributed storage subsystem failure, as produced either by the
/// simulator (ground truth) or by the log classifier (re-derived).
///
/// This is the study's unit of analysis: one RAID-layer-visible failure event
/// tagged with its type, the affected disk, and the disk's placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FailureRecord {
    /// When the failure was *detected* (occurrence + scrub lag, paper §2.5).
    pub detected_at: SimTime,
    /// Which of the four failure types this event is.
    pub failure_type: FailureType,
    /// The disk instance affected by (or reporting) the failure.
    pub disk: DiskInstanceId,
    /// The storage system the disk belongs to.
    pub system: SystemId,
    /// The shelf enclosure hosting the disk.
    pub shelf: ShelfId,
    /// The RAID group the disk belongs to.
    pub raid_group: RaidGroupId,
    /// The FC loop (physical interconnect) the shelf is attached to.
    pub fc_loop: LoopId,
    /// Adapter-relative device address as printed in logs.
    pub device: DeviceAddr,
}

impl FailureRecord {
    /// Orders records by detection time (ties broken by disk id), the order
    /// in which the analysis pipeline expects streams.
    pub fn chronological(a: &FailureRecord, b: &FailureRecord) -> std::cmp::Ordering {
        a.detected_at.cmp(&b.detected_at).then(a.disk.cmp(&b.disk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_types_in_canonical_order() {
        let idx: Vec<usize> = FailureType::ALL.iter().map(|t| t.index()).collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn tags_round_trip() {
        for ty in FailureType::ALL {
            assert_eq!(FailureType::from_tag(ty.tag()), Some(ty));
        }
        assert_eq!(FailureType::from_tag("gremlin"), None);
    }

    #[test]
    fn labels_match_paper_terms() {
        assert_eq!(FailureType::Disk.label(), "Disk Failure");
        assert_eq!(
            FailureType::PhysicalInterconnect.label(),
            "Physical Interconnect Failure"
        );
        assert_eq!(FailureType::Protocol.label(), "Protocol Failure");
        assert_eq!(FailureType::Performance.label(), "Performance Failure");
    }

    #[test]
    fn counts_accumulate_and_merge() {
        let mut a = FailureCounts::new();
        a.record(FailureType::Disk);
        a.record(FailureType::Disk);
        a.record(FailureType::Protocol);
        let mut b = FailureCounts::new();
        b.add(FailureType::PhysicalInterconnect, 5);
        a.merge(&b);
        assert_eq!(a.get(FailureType::Disk), 2);
        assert_eq!(a.get(FailureType::PhysicalInterconnect), 5);
        assert_eq!(a.get(FailureType::Protocol), 1);
        assert_eq!(a.get(FailureType::Performance), 0);
        assert_eq!(a.total(), 8);
    }

    #[test]
    fn counts_collect_from_iterator() {
        let counts: FailureCounts = [
            FailureType::Disk,
            FailureType::Performance,
            FailureType::Performance,
        ]
        .into_iter()
        .collect();
        assert_eq!(counts.get(FailureType::Performance), 2);
        assert_eq!(counts.total(), 3);
    }

    #[test]
    fn chronological_order_breaks_ties_by_disk() {
        use crate::id::*;
        let rec = |t: u64, d: u64| FailureRecord {
            detected_at: SimTime::from_secs(t),
            failure_type: FailureType::Disk,
            disk: DiskInstanceId(d),
            system: SystemId(0),
            shelf: ShelfId(0),
            raid_group: RaidGroupId(0),
            fc_loop: LoopId(0),
            device: DeviceAddr::new(0, 0),
        };
        let mut v = [rec(5, 2), rec(5, 1), rec(1, 9)];
        v.sort_by(FailureRecord::chronological);
        assert_eq!(v[0].disk, DiskInstanceId(9));
        assert_eq!(v[1].disk, DiskInstanceId(1));
        assert_eq!(v[2].disk, DiskInstanceId(2));
    }
}
