//! RAID resiliency types supported by the studied systems.
//!
//! All four system classes support RAID4 and RAID6 (paper Table 1). RAID is
//! the resiliency mechanism sitting *on top of* the storage subsystem; the
//! study's point is that it is designed for disk failures and is challenged
//! by the other three failure types' bursty, correlated behaviour.

use std::fmt;

/// RAID level of a RAID group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RaidType {
    /// Single dedicated parity disk; tolerates one concurrent disk failure.
    Raid4,
    /// Double parity (row-diagonal); tolerates two concurrent disk failures.
    Raid6,
}

impl RaidType {
    /// Both RAID types in the study.
    pub const ALL: [RaidType; 2] = [RaidType::Raid4, RaidType::Raid6];

    /// Number of parity disks in a group of this type.
    pub fn parity_disks(self) -> u8 {
        match self {
            RaidType::Raid4 => 1,
            RaidType::Raid6 => 2,
        }
    }

    /// Number of concurrent whole-disk losses the group survives.
    pub fn fault_tolerance(self) -> u8 {
        self.parity_disks()
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            RaidType::Raid4 => "RAID4",
            RaidType::Raid6 => "RAID6",
        }
    }
}

impl fmt::Display for RaidType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_counts() {
        assert_eq!(RaidType::Raid4.parity_disks(), 1);
        assert_eq!(RaidType::Raid6.parity_disks(), 2);
        assert_eq!(RaidType::Raid4.fault_tolerance(), 1);
        assert_eq!(RaidType::Raid6.fault_tolerance(), 2);
    }

    #[test]
    fn labels() {
        assert_eq!(RaidType::Raid4.to_string(), "RAID4");
        assert_eq!(RaidType::Raid6.to_string(), "RAID6");
    }
}
