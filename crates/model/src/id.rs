//! Typed identifiers for storage subsystem components.
//!
//! Every component that can appear in a log line or an analysis grouping key
//! gets its own newtype so the compiler keeps shelf indexes, RAID-group
//! indexes, and disk-instance numbers from being confused with one another
//! (C-NEWTYPE).

use std::fmt;

macro_rules! index_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }
    };
}

index_id!(
    /// Identifier of a storage system (a head plus its storage subsystem),
    /// unique across the whole fleet.
    SystemId,
    "sys-"
);
index_id!(
    /// Identifier of a shelf enclosure, unique across the whole fleet.
    ShelfId,
    "shelf-"
);
index_id!(
    /// Identifier of a RAID group, unique across the whole fleet.
    RaidGroupId,
    "rg-"
);
index_id!(
    /// Identifier of an FC loop (a physical interconnect shared by one or
    /// more shelves), unique across the whole fleet.
    LoopId,
    "loop-"
);

/// Identifier of one physical disk *instance*.
///
/// A disk slot can host several instances over the study period as failed
/// disks are replaced; each replacement gets a fresh `DiskInstanceId`. The
/// study's "number of disks" (Table 1) counts instances, not slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DiskInstanceId(pub u64);

impl DiskInstanceId {
    /// Returns the raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Renders the manufacturer-style serial number used in support logs,
    /// e.g. `3EL0000042AB`.
    pub fn serial(self) -> String {
        // Base-36-ish encoding with a family prefix so serials look like the
        // real thing but stay deterministic and collision-free.
        const ALPHABET: &[u8] = b"0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";
        let mut n = self.0;
        let mut tail = [b'0'; 8];
        for slot in tail.iter_mut().rev() {
            *slot = ALPHABET[(n % 36) as usize];
            n /= 36;
        }
        format!("3EL{}", std::str::from_utf8(&tail).expect("ascii"))
    }

    /// Decodes a serial number produced by [`DiskInstanceId::serial`].
    pub fn from_serial(serial: &str) -> Option<DiskInstanceId> {
        let tail = serial.strip_prefix("3EL")?;
        if tail.len() != 8 {
            return None;
        }
        let mut n: u64 = 0;
        for c in tail.bytes() {
            let digit = match c {
                b'0'..=b'9' => (c - b'0') as u64,
                b'A'..=b'Z' => (c - b'A') as u64 + 10,
                _ => return None,
            };
            n = n * 36 + digit;
        }
        Some(DiskInstanceId(n))
    }
}

impl fmt::Display for DiskInstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "disk-{}", self.0)
    }
}

/// Physical position of a disk: a shelf plus a bay (0-based, < 14 for all
/// shelf models in the study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotAddr {
    /// The shelf enclosure holding the bay.
    pub shelf: ShelfId,
    /// The bay number within the shelf (0-based).
    pub bay: u8,
}

impl fmt::Display for SlotAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/bay{}", self.shelf, self.bay)
    }
}

/// Host-adapter-relative device address as printed in support logs,
/// e.g. `8.24` (adapter 8, target 24).
///
/// The adapter number identifies the FC host adapter (and therefore the loop)
/// within a system; the target number is the device's loop ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceAddr {
    /// FC host adapter number within the storage system.
    pub adapter: u8,
    /// SCSI/FC target (loop ID) of the device on that adapter.
    pub target: u8,
}

impl DeviceAddr {
    /// Creates a device address from adapter and target numbers.
    pub fn new(adapter: u8, target: u8) -> Self {
        DeviceAddr { adapter, target }
    }
}

impl fmt::Display for DeviceAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.adapter, self.target)
    }
}

impl std::str::FromStr for DeviceAddr {
    type Err = ParseDeviceAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, t) = s.split_once('.').ok_or(ParseDeviceAddrError)?;
        Ok(DeviceAddr {
            adapter: a.parse().map_err(|_| ParseDeviceAddrError)?,
            target: t.parse().map_err(|_| ParseDeviceAddrError)?,
        })
    }
}

/// Error returned when a device address string is not of the form
/// `<adapter>.<target>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseDeviceAddrError;

impl fmt::Display for ParseDeviceAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid device address syntax, expected `adapter.target`")
    }
}

impl std::error::Error for ParseDeviceAddrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(SystemId(7).to_string(), "sys-7");
        assert_eq!(ShelfId(0).to_string(), "shelf-0");
        assert_eq!(RaidGroupId(12).to_string(), "rg-12");
        assert_eq!(LoopId(3).to_string(), "loop-3");
        assert_eq!(DiskInstanceId(99).to_string(), "disk-99");
        assert_eq!(DeviceAddr::new(8, 24).to_string(), "8.24");
    }

    #[test]
    fn serials_are_unique_and_fixed_width() {
        let a = DiskInstanceId(0).serial();
        let b = DiskInstanceId(1).serial();
        let c = DiskInstanceId(36u64.pow(8) - 1).serial();
        assert_ne!(a, b);
        assert_eq!(a.len(), 11);
        assert_eq!(b.len(), 11);
        assert_eq!(c.len(), 11);
        assert!(a.starts_with("3EL"));
    }

    #[test]
    fn serials_round_trip() {
        for raw in [0u64, 1, 42, 1_800_000, 36u64.pow(8) - 1] {
            let id = DiskInstanceId(raw);
            assert_eq!(DiskInstanceId::from_serial(&id.serial()), Some(id));
        }
        assert_eq!(DiskInstanceId::from_serial("XYZ00000000"), None);
        assert_eq!(DiskInstanceId::from_serial("3EL0000"), None);
        assert_eq!(DiskInstanceId::from_serial("3EL0000000!"), None);
    }

    #[test]
    fn device_addr_round_trips_through_str() {
        let addr = DeviceAddr::new(8, 24);
        let parsed: DeviceAddr = addr.to_string().parse().unwrap();
        assert_eq!(parsed, addr);
    }

    #[test]
    fn device_addr_rejects_garbage() {
        assert!("824".parse::<DeviceAddr>().is_err());
        assert!("8.x".parse::<DeviceAddr>().is_err());
        assert!("".parse::<DeviceAddr>().is_err());
        assert!("8.24.1".parse::<DeviceAddr>().is_err());
    }

    #[test]
    fn ids_order_by_index() {
        assert!(SystemId(1) < SystemId(2));
        assert!(DiskInstanceId(10) > DiskInstanceId(9));
    }

    #[test]
    fn slot_addr_display() {
        let slot = SlotAddr {
            shelf: ShelfId(4),
            bay: 11,
        };
        assert_eq!(slot.to_string(), "shelf-4/bay11");
    }
}
