//! Typed evaluation of the paper's Findings 1–11.
//!
//! Each finding is re-checked against the analyzed data with explicit,
//! slightly-loosened acceptance bands (the paper's numbers come from one
//! particular fleet; the bands accept any dataset exhibiting the same
//! *shape*). The evidence string records the actual measurements so
//! reports stay auditable.

use ssfa_model::{FailureType, SimDuration, SystemClass};

use crate::correlation::Scope;
use crate::study::Study;
use crate::tbf::BURST_THRESHOLD_SECS;

/// One evaluated finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The paper's finding number (1–11).
    pub id: u8,
    /// Short restatement of the claim.
    pub title: &'static str,
    /// Whether the analyzed data exhibits the claimed shape.
    pub pass: bool,
    /// The measurements backing the verdict.
    pub evidence: String,
}

/// All eleven findings evaluated against one study.
#[derive(Debug, Clone)]
pub struct FindingsReport {
    /// The findings in paper order.
    pub findings: Vec<Finding>,
}

impl FindingsReport {
    /// Evaluates Findings 1–11.
    pub fn evaluate(study: &Study) -> FindingsReport {
        let findings = vec![
            finding_1(study),
            finding_2(study),
            finding_3(study),
            finding_4(study),
            finding_5(study),
            finding_6(study),
            finding_7(study),
            finding_8(study),
            finding_9(study),
            finding_10(study),
            finding_11(study),
        ];
        FindingsReport { findings }
    }

    /// Whether every finding passed.
    pub fn all_pass(&self) -> bool {
        self.findings.iter().all(|f| f.pass)
    }

    /// The findings that failed.
    pub fn failed(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| !f.pass).collect()
    }
}

fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Finding 1: disk failures contribute 20–55%; physical interconnect
/// 27–68%; protocol and performance failures are noticeable.
fn finding_1(study: &Study) -> Finding {
    let by_class = study.afr_by_class(false);
    let mut pass = true;
    let mut parts = Vec::new();
    for class in SystemClass::ALL {
        let Some(b) = by_class.get(&class) else {
            continue;
        };
        let disk = b.share(FailureType::Disk).unwrap_or(0.0);
        let ic = b.share(FailureType::PhysicalInterconnect).unwrap_or(0.0);
        let proto = b.share(FailureType::Protocol).unwrap_or(0.0);
        let perf = b.share(FailureType::Performance).unwrap_or(0.0);
        // Slightly widened paper bands.
        pass &= (0.15..=0.62).contains(&disk);
        pass &= (0.22..=0.75).contains(&ic);
        pass &= proto > 0.01;
        pass &= perf > 0.002;
        parts.push(format!(
            "{}: disk {} ic {} proto {} perf {}",
            class.label(),
            pct(disk),
            pct(ic),
            pct(proto),
            pct(perf)
        ));
    }
    Finding {
        id: 1,
        title: "Disk failures are 20-55% of subsystem failures; interconnect 27-68%",
        pass,
        evidence: parts.join("; "),
    }
}

/// Finding 2: near-line disks fail more than low-end disks, yet near-line
/// *subsystems* fail less than low-end subsystems.
fn finding_2(study: &Study) -> Finding {
    let by_class = study.afr_by_class(false);
    let (Some(nl), Some(le)) = (
        by_class.get(&SystemClass::NearLine),
        by_class.get(&SystemClass::LowEnd),
    ) else {
        return Finding {
            id: 2,
            title: "Disk AFR is not indicative of subsystem AFR",
            pass: false,
            evidence: "missing class data".into(),
        };
    };
    let nl_disk = nl.afr(FailureType::Disk);
    let le_disk = le.afr(FailureType::Disk);
    let pass = nl_disk > le_disk && nl.total_afr() < le.total_afr();
    Finding {
        id: 2,
        title: "Disk AFR is not indicative of subsystem AFR",
        pass,
        evidence: format!(
            "near-line disk {} vs low-end disk {}; near-line subsystem {} vs low-end {}",
            pct(nl_disk),
            pct(le_disk),
            pct(nl.total_afr()),
            pct(le.total_afr())
        ),
    }
}

/// Finding 3: subsystems using the problematic family show about twice the
/// AFR of their peers.
fn finding_3(study: &Study) -> Finding {
    let env = study.afr_by_environment();
    let mut h = crate::afr::AfrBreakdown::empty();
    let mut rest = crate::afr::AfrBreakdown::empty();
    for ((class, _, model), b) in &env {
        if *class == SystemClass::NearLine {
            continue; // family H is an FC family
        }
        if model.family.is_problematic() {
            h.merge(b);
        } else {
            rest.merge(b);
        }
    }
    let ratio = if rest.total_afr() > 0.0 {
        h.total_afr() / rest.total_afr()
    } else {
        0.0
    };
    Finding {
        id: 3,
        title: "The problematic disk family doubles subsystem AFR",
        pass: ratio > 1.5,
        evidence: format!(
            "family-H subsystems {} vs others {} (x{ratio:.1})",
            pct(h.total_afr()),
            pct(rest.total_afr())
        ),
    }
}

/// Finding 4: a disk model's disk AFR is stable across environments, but
/// its subsystem AFR varies strongly.
fn finding_4(study: &Study) -> Finding {
    // Homogeneity chi-square per model: disk failure rates should be
    // consistent with one pooled rate across environments (homogeneous),
    // while subsystem rates should not. This is noise-robust, unlike raw
    // CV comparisons, because the test accounts for per-cell exposure.
    let tests = study.disk_model_homogeneity(1_000.0);
    if tests.is_empty() {
        return Finding {
            id: 4,
            title: "Disk AFR is stable across environments; subsystem AFR is not",
            pass: false,
            evidence: "no disk model spans multiple environments with enough exposure".into(),
        };
    }
    let n = tests.len();
    let disk_rejects = tests.iter().filter(|t| t.disk_p < 0.05).count();
    let subsystem_rejects = tests.iter().filter(|t| t.subsystem_p < 0.05).count();
    Finding {
        id: 4,
        title: "Disk AFR is stable across environments; subsystem AFR is not",
        // Disk rates rarely reject homogeneity; subsystem rates mostly do.
        pass: disk_rejects * 3 <= n && subsystem_rejects * 2 >= n,
        evidence: format!(
            "rate-homogeneity rejected (p<0.05) for {disk_rejects}/{n} models on disk AFR \
             vs {subsystem_rejects}/{n} on subsystem AFR"
        ),
    }
}

/// Finding 5: AFR does not grow with disk capacity within a family.
fn finding_5(study: &Study) -> Finding {
    let env = study.afr_by_environment();
    // Compare disk AFRs of capacity-adjacent models of the same family
    // within the same environment.
    let mut comparisons = 0usize;
    let mut increases = 0usize;
    let mut evidence = Vec::new();
    for ((class, shelf, model), b) in &env {
        if b.disk_years() < 200.0 {
            continue;
        }
        let bigger = ssfa_model::DiskModelId {
            family: model.family,
            capacity_point: model.capacity_point + 1,
        };
        if let Some(nb) = env.get(&(*class, *shelf, bigger)) {
            if nb.disk_years() < 200.0 {
                continue;
            }
            comparisons += 1;
            let small_afr = b.afr(FailureType::Disk);
            let big_afr = nb.afr(FailureType::Disk);
            // Count as an increase only if clearly above sampling noise.
            if big_afr > small_afr * 1.3 {
                increases += 1;
                evidence.push(format!(
                    "{model}->{bigger} ({} -> {})",
                    pct(small_afr),
                    pct(big_afr)
                ));
            }
        }
    }
    Finding {
        id: 5,
        title: "AFR does not increase with disk capacity",
        pass: comparisons > 0 && increases * 2 <= comparisons,
        evidence: format!(
            "{increases}/{comparisons} capacity steps show a clear AFR increase{}",
            if evidence.is_empty() {
                String::new()
            } else {
                format!(" ({})", evidence.join(", "))
            }
        ),
    }
}

/// Finding 6: the shelf enclosure model significantly shifts interconnect
/// failures, and the better shelf depends on the disk model.
fn finding_6(study: &Study) -> Finding {
    let panels = study.fig6_panels();
    let mut a_wins = 0usize;
    let mut b_wins = 0usize;
    let mut significant = 0usize;
    let mut parts = Vec::new();
    for p in &panels {
        let ic = |i: usize| p.rows[i].1.afr(FailureType::PhysicalInterconnect);
        if ic(0) < ic(1) {
            a_wins += 1;
        } else {
            b_wins += 1;
        }
        if let Some(t) = &p.interconnect_test {
            if t.significant_at(0.995) {
                significant += 1;
            }
        }
        parts.push(format!(
            "{}: {}={} {}={}",
            p.disk_model,
            p.rows[0].0.letter(),
            pct(ic(0)),
            p.rows[1].0.letter(),
            pct(ic(1))
        ));
    }
    Finding {
        id: 6,
        title: "Shelf model strongly impacts interconnect failures; best shelf differs by disk model",
        pass: a_wins >= 1 && b_wins >= 1 && significant >= 1,
        evidence: format!(
            "{} panels, shelf A wins {a_wins}, shelf B wins {b_wins}, {significant} significant at 99.5%: {}",
            panels.len(),
            parts.join("; ")
        ),
    }
}

/// Finding 7: dual paths cut interconnect AFR 50–60% and subsystem AFR
/// 30–40%, at high significance.
fn finding_7(study: &Study) -> Finding {
    let panels = study.fig7_panels();
    let mut pass = !panels.is_empty();
    let mut parts = Vec::new();
    for p in &panels {
        let ty = FailureType::PhysicalInterconnect;
        let ic_cut = 1.0 - p.dual.afr(ty) / p.single.afr(ty).max(1e-12);
        let total_cut = 1.0 - p.dual.total_afr() / p.single.total_afr().max(1e-12);
        let significant = p
            .interconnect_test
            .as_ref()
            .map(|t| t.significant_at(0.999))
            .unwrap_or(false);
        pass &= (0.35..=0.75).contains(&ic_cut);
        pass &= (0.15..=0.60).contains(&total_cut);
        pass &= significant;
        parts.push(format!(
            "{}: interconnect -{:.0}% subsystem -{:.0}% (99.9% significant: {})",
            p.class.label(),
            ic_cut * 100.0,
            total_cut * 100.0,
            significant
        ));
    }
    Finding {
        id: 7,
        title: "Dual paths cut interconnect AFR 50-60% and subsystem AFR 30-40%",
        pass,
        evidence: parts.join("; "),
    }
}

/// Finding 8: interconnect/protocol/performance failures are much more
/// bursty than disk failures (shelf scope).
fn finding_8(study: &Study) -> Finding {
    let tbf = study.tbf(Scope::Shelf);
    let frac = |ty: FailureType| tbf.for_type(ty).fraction_within(BURST_THRESHOLD_SECS);
    let disk = frac(FailureType::Disk);
    let ic = frac(FailureType::PhysicalInterconnect);
    let proto = frac(FailureType::Protocol);
    let perf = frac(FailureType::Performance);
    let overall = tbf.overall().fraction_within(BURST_THRESHOLD_SECS);
    Finding {
        id: 8,
        title: "Non-disk failure types show much stronger temporal locality than disk failures",
        pass: ic > disk + 0.15 && proto > disk && perf > disk && overall > 0.25,
        evidence: format!(
            "P(gap<10^4s): disk {} ic {} proto {} perf {} overall {}",
            pct(disk),
            pct(ic),
            pct(proto),
            pct(perf),
            pct(overall)
        ),
    }
}

/// Finding 9: RAID-group failures are less bursty than shelf failures.
fn finding_9(study: &Study) -> Finding {
    let shelf = study
        .tbf(Scope::Shelf)
        .overall()
        .fraction_within(BURST_THRESHOLD_SECS);
    let rg = study
        .tbf(Scope::RaidGroup)
        .overall()
        .fraction_within(BURST_THRESHOLD_SECS);
    Finding {
        id: 9,
        title: "RAID groups spanning shelves see less bursty failures than shelves",
        pass: rg < shelf,
        evidence: format!(
            "P(gap<10^4s): shelf {} vs RAID group {}",
            pct(shelf),
            pct(rg)
        ),
    }
}

/// Finding 10: RAID-group failures still show strong temporal locality.
fn finding_10(study: &Study) -> Finding {
    let rg = study
        .tbf(Scope::RaidGroup)
        .overall()
        .fraction_within(BURST_THRESHOLD_SECS);
    Finding {
        id: 10,
        title: "RAID-group failures still exhibit strong temporal locality",
        pass: rg > 0.10,
        evidence: format!("P(gap<10^4s) within a RAID group: {}", pct(rg)),
    }
}

/// Finding 11: for every failure type, empirical P(2) far exceeds the
/// independence prediction.
fn finding_11(study: &Study) -> Finding {
    let results = study.correlation(Scope::Shelf, SimDuration::from_years(1.0));
    let mut pass = true;
    let mut parts = Vec::new();
    for r in &results {
        let inflation = r.inflation.unwrap_or(0.0);
        pass &= inflation > 2.0;
        pass &= r.significant_at(0.995);
        parts.push(format!(
            "{}: empirical {} vs theoretical {} (x{:.1})",
            r.failure_type.tag(),
            pct(r.empirical_p2),
            pct(r.theoretical_p2),
            inflation
        ));
    }
    Finding {
        id: 11,
        title: "Failures are not independent: P(2) far exceeds P(1)^2/2",
        pass,
        evidence: parts.join("; "),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssfa_logs::classify::classify;
    use ssfa_logs::render::render_support_log;
    use ssfa_logs::CascadeStyle;
    use ssfa_model::{Fleet, FleetConfig};
    use ssfa_sim::Simulator;

    #[test]
    fn findings_report_has_eleven_entries_with_evidence() {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.004), 41);
        let out = Simulator::default().run(&fleet, 41);
        let book = render_support_log(&fleet, &out, CascadeStyle::RaidOnly);
        let study = Study::new(classify(&book).unwrap());
        let report = FindingsReport::evaluate(&study);
        assert_eq!(report.findings.len(), 11);
        for f in &report.findings {
            assert!(!f.evidence.is_empty(), "finding {} has no evidence", f.id);
            assert!(!f.title.is_empty());
        }
        let ids: Vec<u8> = report.findings.iter().map(|f| f.id).collect();
        assert_eq!(ids, (1..=11).collect::<Vec<u8>>());
    }
}
