//! Disk-failure prediction from low-layer precursor events — the paper's
//! second future-work direction ("design storage failure prediction
//! algorithms based on component errors", §7).
//!
//! The support log contains more than RAID-layer failures: the SCSI layer
//! reports medium errors as sectors go bad (§2.5). Disks that are about to
//! be failed out accumulate these precursors over their final days, while
//! healthy disks emit them only occasionally. The [`PrecursorPredictor`]
//! raises an alarm when a device accumulates `threshold` medium errors
//! within an `accumulation` window; [`evaluate_predictor`] scores alarms
//! against the corpus's actual disk failures.

use std::collections::{BTreeMap, HashMap};

use ssfa_logs::{AnalysisInput, LogBook, LogEvent};
use ssfa_model::{DeviceAddr, FailureType, SimDuration, SimTime, SystemId};

/// A threshold predictor over per-device medium-error counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecursorPredictor {
    /// Number of medium errors within the accumulation window that raises
    /// an alarm.
    pub threshold: u32,
    /// How far back errors count toward the threshold.
    pub accumulation: SimDuration,
    /// How far ahead an alarm claims a failure will happen (alarms are
    /// scored true if the device's disk fails within this horizon).
    pub horizon: SimDuration,
    /// Cool-down after an alarm before the same device may alarm again
    /// (prevents one error burst from raising a volley of alarms).
    pub cooldown: SimDuration,
}

impl Default for PrecursorPredictor {
    fn default() -> Self {
        PrecursorPredictor {
            threshold: 3,
            accumulation: SimDuration::from_days(30.0),
            horizon: SimDuration::from_days(21.0),
            cooldown: SimDuration::from_days(30.0),
        }
    }
}

/// One raised alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alarm {
    /// System the device belongs to.
    pub system: SystemId,
    /// The device predicted to fail.
    pub device: DeviceAddr,
    /// When the alarm was raised.
    pub at: SimTime,
}

/// Evaluation of a predictor against the corpus's actual disk failures.
#[derive(Debug, Clone)]
pub struct PredictionEval {
    /// The predictor evaluated.
    pub predictor: PrecursorPredictor,
    /// Every alarm raised.
    pub alarms: Vec<Alarm>,
    /// Alarms followed by a disk failure of the same device within the
    /// horizon.
    pub true_positives: usize,
    /// Alarms with no such failure.
    pub false_positives: usize,
    /// Disk failures preceded by at least one true alarm.
    pub detected_failures: usize,
    /// All disk failures in the corpus.
    pub total_failures: usize,
    /// Lead times (alarm → failure) of true positives, in hours.
    pub lead_times_hours: Vec<f64>,
}

impl PredictionEval {
    /// Fraction of alarms that were right.
    pub fn precision(&self) -> Option<f64> {
        let n = self.true_positives + self.false_positives;
        if n == 0 {
            None
        } else {
            Some(self.true_positives as f64 / n as f64)
        }
    }

    /// Fraction of disk failures that were predicted.
    pub fn recall(&self) -> Option<f64> {
        if self.total_failures == 0 {
            None
        } else {
            Some(self.detected_failures as f64 / self.total_failures as f64)
        }
    }

    /// Median warning time before failure, in hours.
    pub fn median_lead_time_hours(&self) -> Option<f64> {
        if self.lead_times_hours.is_empty() {
            return None;
        }
        let mut sorted = self.lead_times_hours.clone();
        sorted.sort_by(f64::total_cmp);
        Some(sorted[sorted.len() / 2])
    }
}

/// Runs the predictor over a corpus and scores it against the classified
/// disk failures.
///
/// The predictor sees only what a real one would: the stream of
/// `disk.ioMediumError` lines, keyed by `(system, device)`. Ground truth
/// comes from `input.failures` (the RAID-layer disk-failure records of the
/// same corpus).
pub fn evaluate_predictor(
    book: &LogBook,
    input: &AnalysisInput,
    predictor: PrecursorPredictor,
) -> PredictionEval {
    // --- Raise alarms ------------------------------------------------------
    let mut recent: HashMap<(SystemId, DeviceAddr), Vec<SimTime>> = HashMap::new();
    let mut cooldown_until: HashMap<(SystemId, DeviceAddr), SimTime> = HashMap::new();
    let mut alarms: Vec<Alarm> = Vec::new();

    for line in book {
        let LogEvent::DiskMediumError { device, .. } = &line.event else {
            continue;
        };
        let key = (line.host, *device);
        if cooldown_until
            .get(&key)
            .is_some_and(|&until| line.at < until)
        {
            continue;
        }
        let times = recent.entry(key).or_default();
        times.push(line.at);
        let cutoff = line.at.saturating_sub(predictor.accumulation);
        times.retain(|&t| t >= cutoff);
        if times.len() >= predictor.threshold as usize {
            alarms.push(Alarm {
                system: line.host,
                device: *device,
                at: line.at,
            });
            cooldown_until.insert(key, line.at + predictor.cooldown);
            times.clear();
        }
    }

    // --- Score against actual disk failures --------------------------------
    let mut failures_by_device: BTreeMap<(SystemId, DeviceAddr), Vec<SimTime>> = BTreeMap::new();
    let mut total_failures = 0usize;
    for rec in &input.failures {
        if rec.failure_type == FailureType::Disk {
            total_failures += 1;
            failures_by_device
                .entry((rec.system, rec.device))
                .or_default()
                .push(rec.detected_at);
        }
    }
    for times in failures_by_device.values_mut() {
        times.sort_unstable();
    }

    let mut true_positives = 0usize;
    let mut false_positives = 0usize;
    let mut lead_times_hours = Vec::new();
    let mut detected: HashMap<(SystemId, DeviceAddr, SimTime), bool> = HashMap::new();

    for alarm in &alarms {
        let key = (alarm.system, alarm.device);
        let hit = failures_by_device.get(&key).and_then(|times| {
            let idx = times.partition_point(|&t| t < alarm.at);
            times
                .get(idx)
                .filter(|&&t| t <= alarm.at + predictor.horizon)
                .copied()
        });
        match hit {
            Some(failure_at) => {
                true_positives += 1;
                lead_times_hours.push(failure_at.duration_since(alarm.at).as_hours());
                detected.insert((alarm.system, alarm.device, failure_at), true);
            }
            None => false_positives += 1,
        }
    }

    PredictionEval {
        predictor,
        alarms,
        true_positives,
        false_positives,
        detected_failures: detected.len(),
        total_failures,
        lead_times_hours,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssfa_logs::{classify, render_support_log_noisy, CascadeStyle, LogLine, NoiseParams};
    use ssfa_model::{Fleet, FleetConfig};
    use ssfa_sim::Simulator;

    fn corpus(noise: NoiseParams) -> (LogBook, AnalysisInput) {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.004), 60);
        let out = Simulator::default().run(&fleet, 60);
        let book = render_support_log_noisy(&fleet, &out, CascadeStyle::Full, noise, 60);
        let input = classify(&book).unwrap();
        (book, input)
    }

    #[test]
    fn predictor_catches_most_failures_on_a_clean_corpus() {
        let (book, input) = corpus(NoiseParams::none());
        let eval = evaluate_predictor(&book, &input, PrecursorPredictor::default());
        assert!(eval.total_failures > 50, "need failures to score against");
        let recall = eval.recall().expect("failures exist");
        assert!(recall > 0.8, "recall {recall}");
        let precision = eval.precision().expect("alarms exist");
        assert!(precision > 0.8, "precision {precision} with zero noise");
        // Hours-to-days of warning: the third precursor lands between
        // 5 minutes and 2 days before the failure depending on how loudly
        // the disk degrades.
        let lead = eval.median_lead_time_hours().expect("true positives exist");
        assert!(lead > 1.0, "median lead {lead}h");
        // Lowering the threshold buys much longer warnings.
        let early = evaluate_predictor(
            &book,
            &input,
            PrecursorPredictor {
                threshold: 2,
                ..PrecursorPredictor::default()
            },
        );
        assert!(early.median_lead_time_hours().unwrap() > lead);
    }

    #[test]
    fn noise_costs_precision_but_not_recall() {
        let (book, input) = corpus(NoiseParams::realistic());
        let default_eval = evaluate_predictor(&book, &input, PrecursorPredictor::default());
        let recall = default_eval.recall().expect("failures exist");
        assert!(recall > 0.75, "recall under noise {recall}");
        let precision = default_eval.precision().expect("alarms exist");
        // Noise produces some false alarms, but a 30-day x3 threshold
        // stays usable.
        assert!(precision > 0.5, "precision under noise {precision}");

        // A hair-trigger threshold drowns in false alarms.
        let trigger_happy = evaluate_predictor(
            &book,
            &input,
            PrecursorPredictor {
                threshold: 1,
                ..PrecursorPredictor::default()
            },
        );
        assert!(
            trigger_happy.precision().expect("alarms exist") < precision,
            "threshold 1 should be less precise"
        );
        // It fires far more alarms (recall can even *drop*: an early noise
        // alarm puts the device in cooldown through its real precursors).
        assert!(trigger_happy.alarms.len() > default_eval.alarms.len() * 2);
    }

    #[test]
    fn cooldown_suppresses_alarm_volleys() {
        let (book, input) = corpus(NoiseParams::none());
        let with_cooldown = evaluate_predictor(&book, &input, PrecursorPredictor::default());
        let without = evaluate_predictor(
            &book,
            &input,
            PrecursorPredictor {
                cooldown: SimDuration::from_secs(1),
                ..PrecursorPredictor::default()
            },
        );
        assert!(without.alarms.len() >= with_cooldown.alarms.len());
    }

    #[test]
    fn empty_corpus_scores_cleanly() {
        let book = LogBook::new();
        let input = AnalysisInput::default();
        let eval = evaluate_predictor(&book, &input, PrecursorPredictor::default());
        assert_eq!(eval.alarms.len(), 0);
        assert_eq!(eval.precision(), None);
        assert_eq!(eval.recall(), None);
        assert_eq!(eval.median_lead_time_hours(), None);
    }

    #[test]
    fn alarms_are_chronological_per_device_stream() {
        let (book, input) = corpus(NoiseParams::none());
        let eval = evaluate_predictor(&book, &input, PrecursorPredictor::default());
        // Lines are scanned in corpus (chronological) order, so alarms are
        // globally ordered too.
        for pair in eval.alarms.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        let _ = LogLine::parse; // keep import used in all cfgs
    }
}
