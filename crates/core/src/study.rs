//! The [`Study`] orchestrator: computes every table and figure of the
//! paper from one [`AnalysisInput`].

use std::collections::BTreeMap;

use ssfa_logs::classify::SystemMeta;
use ssfa_logs::AnalysisInput;
use ssfa_model::{
    DiskModelId, FailureCounts, PathConfig, ShelfModel, SimDuration, SystemClass, SystemId,
};
use ssfa_stats::hypothesis::{poisson_two_rate_test, TTestResult};

use crate::afr::AfrBreakdown;
use crate::correlation::{correlation_by_type, CorrelationResult, GroupWindow, Scope};
use crate::tbf::TbfAnalysis;

/// One row of the paper's Table 1 (fleet overview per system class).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// System class.
    pub class: SystemClass,
    /// Number of systems.
    pub systems: usize,
    /// Number of shelf enclosures.
    pub shelves: usize,
    /// Number of disks ever installed (instances, incl. replacements).
    pub disks: usize,
    /// Number of RAID groups.
    pub raid_groups: usize,
    /// Whether any subsystem of the class runs dual paths.
    pub has_dual_path: bool,
    /// Exposure in disk-years.
    pub disk_years: f64,
    /// Failure events per type.
    pub counts: FailureCounts,
}

/// One panel of Figure 5: AFR by disk model for a (class, shelf) pairing.
#[derive(Debug, Clone)]
pub struct Fig5Panel {
    /// System class of the panel.
    pub class: SystemClass,
    /// Shelf model of the panel.
    pub shelf_model: ShelfModel,
    /// Rows: one breakdown per disk model, sorted by model id.
    pub rows: Vec<(DiskModelId, AfrBreakdown)>,
}

/// One panel of Figure 6: AFR by shelf model for one disk model (low-end).
#[derive(Debug, Clone)]
pub struct Fig6Panel {
    /// The disk model held fixed.
    pub disk_model: DiskModelId,
    /// Breakdowns per shelf model, sorted by model.
    pub rows: Vec<(ShelfModel, AfrBreakdown)>,
    /// Significance test on the physical-interconnect rate between the
    /// first two shelf models (`None` with fewer than two rows).
    pub interconnect_test: Option<TTestResult>,
}

/// One panel of Figure 7: AFR by path configuration for one class.
#[derive(Debug, Clone)]
pub struct Fig7Panel {
    /// The system class (mid-range or high-end).
    pub class: SystemClass,
    /// Breakdown for single-path subsystems.
    pub single: AfrBreakdown,
    /// Breakdown for dual-path subsystems.
    pub dual: AfrBreakdown,
    /// Significance test on the physical-interconnect rate.
    pub interconnect_test: Option<TTestResult>,
}

/// The analysis orchestrator.
#[derive(Debug, Clone)]
pub struct Study {
    input: AnalysisInput,
}

/// Incremental form of [`Study::from_partials`]: push per-shard (or
/// per-chunk) [`AnalysisInput`] partials one at a time — in shard order —
/// and finish into a [`Study`].
///
/// The fold absorbs each partial as it arrives (topology maps union,
/// lifetimes/failures append) and re-establishes canonical order exactly
/// once at [`StudyFold::finish`], so the result is bit-identical to
/// buffering every partial and calling [`Study::from_partials`] — without
/// ever holding more than the running accumulator. This is the `Reduce`
/// stage seam the streaming pipeline folds into.
#[derive(Debug, Clone, Default)]
pub struct StudyFold {
    acc: AnalysisInput,
    partials: usize,
}

impl StudyFold {
    /// An empty fold. Finishing it immediately yields the empty study
    /// that [`Study::from_partials`]`([])` produces.
    pub fn new() -> StudyFold {
        StudyFold::default()
    }

    /// Folds one partial into the accumulator.
    pub fn push(&mut self, partial: AnalysisInput) {
        self.acc.absorb(partial);
        self.partials += 1;
    }

    /// Number of partials folded so far.
    pub fn len(&self) -> usize {
        self.partials
    }

    /// Whether no partial has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.partials == 0
    }

    /// Merges another fold into this one: topology maps union,
    /// lifetime/failure vectors append, partial counts add.
    ///
    /// `merge` is **associative** — the property that makes fold state a
    /// legitimate persistent artifact. Both constituent operations are:
    /// map union with last-writer-wins (every writer stores the same
    /// value for a given key, since each system's topology is rendered
    /// once) and vector append (concatenation). `(a ⊕ b) ⊕ c` and
    /// `a ⊕ (b ⊕ c)` therefore produce byte-identical accumulators even
    /// *before* canonicalization; the snapshot tests pin this at the
    /// serialized-byte level.
    pub fn merge(&mut self, other: StudyFold) {
        self.acc.absorb(other.acc);
        self.partials += other.partials;
    }

    /// Canonicalizes the accumulator and wraps it as a [`Study`].
    pub fn finish(mut self) -> Study {
        self.acc.canonicalize();
        Study::new(self.acc)
    }

    /// The raw accumulator, for the snapshot codec.
    pub(crate) fn acc_ref(&self) -> &AnalysisInput {
        &self.acc
    }

    /// Reassembles a fold from its decoded parts (snapshot restore).
    pub(crate) fn from_parts(acc: AnalysisInput, partials: usize) -> StudyFold {
        StudyFold { acc, partials }
    }
}

impl Study {
    /// Wraps an analysis input (typically produced by
    /// [`ssfa_logs::classify()`]).
    pub fn new(input: AnalysisInput) -> Study {
        Study { input }
    }

    /// Assembles a study from per-shard partial inputs, as produced by
    /// classifying each system's log shard independently (in shard
    /// order). Exact, not approximate: for shards of one fleet history
    /// this yields the same study as classifying the monolithic corpus.
    ///
    /// For incremental assembly — folding partials in as they arrive
    /// instead of buffering them — use [`StudyFold`], which is
    /// bit-identical to this batched form.
    pub fn from_partials(partials: impl IntoIterator<Item = AnalysisInput>) -> Study {
        Study::new(AnalysisInput::merge(partials))
    }

    /// The underlying input.
    pub fn input(&self) -> &AnalysisInput {
        &self.input
    }

    fn system_meta(&self, id: SystemId) -> Option<&SystemMeta> {
        self.input.topology.systems.get(&id)
    }

    /// Groups exposure and failure counts by an arbitrary key derived from
    /// each record's owning system. Records whose key function returns
    /// `None` are excluded (from both numerator and denominator).
    pub fn breakdown_by<K, F>(&self, key: F) -> BTreeMap<K, AfrBreakdown>
    where
        K: Ord,
        F: Fn(SystemId, &SystemMeta) -> Option<K>,
    {
        // Callers iterate these breakdowns (often accumulating floats), so
        // the map must iterate in key order, not hasher order.
        let mut map: BTreeMap<K, AfrBreakdown> = BTreeMap::new();
        for lt in &self.input.lifetimes {
            if let Some(meta) = self.system_meta(lt.system) {
                if let Some(k) = key(lt.system, meta) {
                    map.entry(k).or_default().add_exposure(lt.service_years());
                }
            }
        }
        for rec in &self.input.failures {
            if let Some(meta) = self.system_meta(rec.system) {
                if let Some(k) = key(rec.system, meta) {
                    map.entry(k).or_default().record(rec.failure_type);
                }
            }
        }
        map
    }

    /// Table 1: fleet overview per system class.
    pub fn table1(&self) -> Vec<Table1Row> {
        let mut rows: Vec<Table1Row> = SystemClass::ALL
            .into_iter()
            .map(|class| Table1Row {
                class,
                systems: 0,
                shelves: 0,
                disks: 0,
                raid_groups: 0,
                has_dual_path: false,
                disk_years: 0.0,
                counts: FailureCounts::new(),
            })
            .collect();
        for meta in self.input.topology.systems.values() {
            let i = meta.class.index();
            rows[i].systems += 1;
            rows[i].has_dual_path |= meta.paths == PathConfig::DualPath;
        }
        for shelf in self.input.topology.shelves.values() {
            if let Some(meta) = self.system_meta(shelf.system) {
                rows[meta.class.index()].shelves += 1;
            }
        }
        for rg in self.input.topology.raid_groups.values() {
            if let Some(meta) = self.system_meta(rg.system) {
                rows[meta.class.index()].raid_groups += 1;
            }
        }
        for lt in &self.input.lifetimes {
            if let Some(meta) = self.system_meta(lt.system) {
                let i = meta.class.index();
                rows[i].disks += 1;
                rows[i].disk_years += lt.service_years();
            }
        }
        for rec in &self.input.failures {
            if let Some(meta) = self.system_meta(rec.system) {
                rows[meta.class.index()].counts.record(rec.failure_type);
            }
        }
        rows
    }

    /// Figure 4: AFR breakdown per system class, optionally excluding
    /// subsystems built from the problematic disk family `H`
    /// (4a = `true`, 4b = `false`).
    pub fn afr_by_class(&self, include_problematic: bool) -> BTreeMap<SystemClass, AfrBreakdown> {
        self.breakdown_by(|_, meta| {
            if !include_problematic && meta.disk_model.family.is_problematic() {
                None
            } else {
                Some(meta.class)
            }
        })
    }

    /// AFR breakdown for every (class, shelf model, disk model)
    /// combination present in the fleet.
    pub fn afr_by_environment(
        &self,
    ) -> BTreeMap<(SystemClass, ShelfModel, DiskModelId), AfrBreakdown> {
        self.breakdown_by(|_, meta| Some((meta.class, meta.shelf_model, meta.disk_model)))
    }

    /// Figure 5: the paper's six (class, shelf model) panels with AFR by
    /// disk model. Panels with no population are omitted.
    pub fn fig5_panels(&self) -> Vec<Fig5Panel> {
        const PANELS: [(SystemClass, ShelfModel); 6] = [
            (SystemClass::NearLine, ShelfModel::C),
            (SystemClass::LowEnd, ShelfModel::A),
            (SystemClass::LowEnd, ShelfModel::B),
            (SystemClass::MidRange, ShelfModel::C),
            (SystemClass::MidRange, ShelfModel::B),
            (SystemClass::HighEnd, ShelfModel::B),
        ];
        let env = self.afr_by_environment();
        PANELS
            .into_iter()
            .filter_map(|(class, shelf_model)| {
                let mut rows: Vec<(DiskModelId, AfrBreakdown)> = env
                    .iter()
                    .filter(|((c, s, _), _)| *c == class && *s == shelf_model)
                    .map(|((_, _, d), b)| (*d, b.clone()))
                    .collect();
                if rows.is_empty() {
                    return None;
                }
                rows.sort_by_key(|(d, _)| *d);
                Some(Fig5Panel {
                    class,
                    shelf_model,
                    rows,
                })
            })
            .collect()
    }

    /// Figure 6: low-end AFR by shelf enclosure model for each disk model
    /// used with both shelves, with a significance test on the
    /// physical-interconnect rate.
    pub fn fig6_panels(&self) -> Vec<Fig6Panel> {
        let env = self.breakdown_by(|_, meta| {
            (meta.class == SystemClass::LowEnd).then_some((meta.disk_model, meta.shelf_model))
        });
        let mut models: Vec<DiskModelId> = env.keys().map(|(d, _)| *d).collect();
        models.sort();
        models.dedup();
        models
            .into_iter()
            .filter_map(|disk_model| {
                let mut rows: Vec<(ShelfModel, AfrBreakdown)> = env
                    .iter()
                    .filter(|((d, _), _)| *d == disk_model)
                    .map(|((_, s), b)| (*s, b.clone()))
                    .collect();
                rows.sort_by_key(|(s, _)| *s);
                if rows.len() < 2 {
                    return None;
                }
                let interconnect_test = interconnect_rate_test(&rows[0].1, &rows[1].1);
                Some(Fig6Panel {
                    disk_model,
                    rows,
                    interconnect_test,
                })
            })
            .collect()
    }

    /// Figure 7: single- vs dual-path AFR for the multipathing-capable
    /// classes, with a significance test on the interconnect rate.
    pub fn fig7_panels(&self) -> Vec<Fig7Panel> {
        [SystemClass::MidRange, SystemClass::HighEnd]
            .into_iter()
            .filter_map(|class| {
                let by_path =
                    self.breakdown_by(|_, meta| (meta.class == class).then_some(meta.paths));
                let single = by_path.get(&PathConfig::SinglePath)?.clone();
                let dual = by_path.get(&PathConfig::DualPath)?.clone();
                let interconnect_test = interconnect_rate_test(&single, &dual);
                Some(Fig7Panel {
                    class,
                    single,
                    dual,
                    interconnect_test,
                })
            })
            .collect()
    }

    /// Figure 9: time-between-failure analysis at one scope.
    pub fn tbf(&self, scope: Scope) -> TbfAnalysis {
        TbfAnalysis::compute(scope, &self.input.failures)
    }

    /// The group observation windows for correlation analysis at a scope:
    /// every shelf (or RAID group), starting service at its system's
    /// install time.
    pub fn group_windows(&self, scope: Scope) -> Vec<GroupWindow> {
        match scope {
            Scope::Shelf => self
                .input
                .topology
                .shelves
                .iter()
                .filter_map(|(id, meta)| {
                    let sys = self.system_meta(meta.system)?;
                    Some(GroupWindow {
                        key: id.0,
                        in_service_from: sys.installed_at,
                    })
                })
                .collect(),
            Scope::RaidGroup => self
                .input
                .topology
                .raid_groups
                .iter()
                .filter_map(|(id, meta)| {
                    let sys = self.system_meta(meta.system)?;
                    Some(GroupWindow {
                        key: id.0,
                        in_service_from: sys.installed_at,
                    })
                })
                .collect(),
        }
    }

    /// Figure 10: the P(1)/P(2) correlation analysis at one scope, over a
    /// window `T` (the paper's default is one year).
    pub fn correlation(&self, scope: Scope, window: SimDuration) -> [CorrelationResult; 4] {
        let groups = self.group_windows(scope);
        correlation_by_type(scope, &groups, &self.input.failures, window)
    }

    /// The paper's robustness check (§5.2.2): the correlation analysis over
    /// several window lengths `T` ("we have set T to 3 months, 6 months,
    /// and 2 years ... in all cases, similar correlations were observed").
    pub fn correlation_sweep(
        &self,
        scope: Scope,
        windows: &[SimDuration],
    ) -> Vec<(SimDuration, [CorrelationResult; 4])> {
        let groups = self.group_windows(scope);
        windows
            .iter()
            .map(|&w| {
                (
                    w,
                    correlation_by_type(scope, &groups, &self.input.failures, w),
                )
            })
            .collect()
    }

    /// Per-disk-model AFR spread across environments (Finding 4): for each
    /// disk model deployed in at least two (class, shelf model)
    /// environments with meaningful exposure, the coefficient of variation
    /// of its *disk* AFR and of its *subsystem* AFR across those
    /// environments.
    pub fn disk_model_spread(&self, min_disk_years: f64) -> Vec<ModelSpread> {
        let env = self.afr_by_environment();
        let mut by_model: BTreeMap<DiskModelId, Vec<&AfrBreakdown>> = BTreeMap::new();
        for ((_, _, model), b) in &env {
            if b.disk_years() >= min_disk_years {
                by_model.entry(*model).or_default().push(b);
            }
        }
        let mut spreads: Vec<ModelSpread> = by_model
            .into_iter()
            .filter(|(_, envs)| envs.len() >= 2)
            .filter_map(|(model, envs)| {
                let disk: Vec<f64> = envs
                    .iter()
                    .map(|b| b.afr(ssfa_model::FailureType::Disk))
                    .collect();
                let subsystem: Vec<f64> = envs.iter().map(|b| b.total_afr()).collect();
                let cv = |xs: &[f64]| {
                    ssfa_stats::summary::Summary::of(xs)
                        .ok()
                        .and_then(|s| s.coefficient_of_variation())
                };
                Some(ModelSpread {
                    model,
                    environments: envs.len(),
                    disk_afr_cv: cv(&disk)?,
                    subsystem_afr_cv: cv(&subsystem)?,
                })
            })
            .collect();
        spreads.sort_by_key(|s| s.model);
        spreads
    }
}

impl Study {
    /// Chi-square homogeneity test per disk model across its environments
    /// (Finding 4 support): are the per-environment *disk* failure rates
    /// consistent with one pooled rate, and are the per-environment
    /// *subsystem* rates?
    ///
    /// Returns, per model with ≥ 2 environments of at least
    /// `min_disk_years` exposure, the p-values of the disk-rate and
    /// subsystem-rate homogeneity tests.
    pub fn disk_model_homogeneity(&self, min_disk_years: f64) -> Vec<ModelHomogeneity> {
        let env = self.afr_by_environment();
        let mut by_model: BTreeMap<DiskModelId, Vec<&AfrBreakdown>> = BTreeMap::new();
        for ((_, _, model), b) in &env {
            if b.disk_years() >= min_disk_years {
                by_model.entry(*model).or_default().push(b);
            }
        }
        let homogeneity_p = |cells: &[&AfrBreakdown], events: &dyn Fn(&AfrBreakdown) -> u64| {
            let total_events: u64 = cells.iter().map(|b| events(b)).sum();
            let total_exposure: f64 = cells.iter().map(|b| b.disk_years()).sum();
            if total_events == 0 || total_exposure <= 0.0 {
                return 1.0;
            }
            let pooled = total_events as f64 / total_exposure;
            let statistic: f64 = cells
                .iter()
                .map(|b| {
                    let expected = pooled * b.disk_years();
                    let observed = events(b) as f64;
                    (observed - expected).powi(2) / expected.max(1e-12)
                })
                .sum();
            ssfa_stats::special::chi_square_sf(statistic, (cells.len() - 1) as f64)
        };
        let mut out: Vec<ModelHomogeneity> = by_model
            .into_iter()
            .filter(|(_, cells)| cells.len() >= 2)
            .map(|(model, cells)| ModelHomogeneity {
                model,
                environments: cells.len(),
                disk_p: homogeneity_p(&cells, &|b| b.counts().get(ssfa_model::FailureType::Disk)),
                subsystem_p: homogeneity_p(&cells, &|b| b.counts().total()),
            })
            .collect();
        out.sort_by_key(|h| h.model);
        out
    }
}

/// Homogeneity test results for one disk model across environments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelHomogeneity {
    /// The disk model.
    pub model: DiskModelId,
    /// Number of environments considered.
    pub environments: usize,
    /// p-value: per-environment disk failure rates share one pooled rate.
    pub disk_p: f64,
    /// p-value: per-environment subsystem failure rates share one pooled
    /// rate.
    pub subsystem_p: f64,
}

/// Per-model AFR spread across environments (Finding 4 support).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSpread {
    /// The disk model.
    pub model: DiskModelId,
    /// Number of environments the model appears in.
    pub environments: usize,
    /// Coefficient of variation of the disk AFR across environments.
    pub disk_afr_cv: f64,
    /// Coefficient of variation of the subsystem AFR across environments.
    pub subsystem_afr_cv: f64,
}

/// Poisson two-rate test on the physical-interconnect AFRs of two
/// breakdowns.
fn interconnect_rate_test(a: &AfrBreakdown, b: &AfrBreakdown) -> Option<TTestResult> {
    let ty = ssfa_model::FailureType::PhysicalInterconnect;
    poisson_two_rate_test(
        a.counts().get(ty),
        a.disk_years(),
        b.counts().get(ty),
        b.disk_years(),
    )
    .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssfa_logs::classify::classify;
    use ssfa_logs::render::render_support_log;
    use ssfa_logs::CascadeStyle;
    use ssfa_model::{FailureType, Fleet, FleetConfig};
    use ssfa_sim::Simulator;

    fn study(scale: f64, seed: u64) -> Study {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(scale), seed);
        let out = Simulator::default().run(&fleet, seed);
        let book = render_support_log(&fleet, &out, CascadeStyle::RaidOnly);
        Study::new(classify(&book).expect("classification succeeds"))
    }

    /// One moderately-sized study shared by the statistics-sensitive tests
    /// (built once; scale 0.015 keeps every (model, shelf) cell populated).
    fn shared_study() -> &'static Study {
        static STUDY: std::sync::OnceLock<Study> = std::sync::OnceLock::new();
        STUDY.get_or_init(|| study(0.015, 4242))
    }

    #[test]
    fn table1_row_totals_are_consistent() {
        let s = shared_study();
        let rows = s.table1();
        assert_eq!(rows.len(), 4);
        let systems: usize = rows.iter().map(|r| r.systems).sum();
        assert_eq!(systems, s.input().topology.systems.len());
        let disks: usize = rows.iter().map(|r| r.disks).sum();
        assert_eq!(disks, s.input().lifetimes.len());
        let events: u64 = rows.iter().map(|r| r.counts.total()).sum();
        assert_eq!(events as usize, s.input().failures.len());
        // Dual paths only in mid-range / high-end.
        assert!(!rows[SystemClass::NearLine.index()].has_dual_path);
        assert!(!rows[SystemClass::LowEnd.index()].has_dual_path);
        assert!(rows[SystemClass::MidRange.index()].has_dual_path);
        assert!(rows[SystemClass::HighEnd.index()].has_dual_path);
    }

    #[test]
    fn afr_by_class_partitions_everything_when_h_included() {
        let s = shared_study();
        let by_class = s.afr_by_class(true);
        let total_years: f64 = by_class.values().map(|b| b.disk_years()).sum();
        assert!((total_years - s.input().total_disk_years()).abs() / total_years < 1e-9);
        let total_events: u64 = by_class.values().map(|b| b.counts().total()).sum();
        assert_eq!(total_events as usize, s.input().failures.len());
    }

    #[test]
    fn excluding_problematic_family_reduces_population() {
        let s = shared_study();
        let with_h = s.afr_by_class(true);
        let without_h = s.afr_by_class(false);
        let y_with: f64 = with_h.values().map(|b| b.disk_years()).sum();
        let y_without: f64 = without_h.values().map(|b| b.disk_years()).sum();
        assert!(y_without < y_with);
        // Disk-H systems exist in low-end, mid-range, high-end configs.
        let le_with = with_h[&SystemClass::LowEnd].total_afr();
        let le_without = without_h[&SystemClass::LowEnd].total_afr();
        assert!(
            le_without < le_with,
            "excluding H should lower low-end AFR ({le_without} vs {le_with})"
        );
    }

    #[test]
    fn fig5_panels_cover_the_paper_combinations() {
        let s = shared_study();
        let panels = s.fig5_panels();
        assert_eq!(panels.len(), 6, "all six panels populated at this scale");
        for p in &panels {
            assert!(!p.rows.is_empty());
            for (model, b) in &p.rows {
                assert!(b.disk_years() > 0.0, "{model} has no exposure");
            }
        }
    }

    #[test]
    fn fig6_panels_have_both_shelves_and_tests() {
        let s = shared_study();
        let panels = s.fig6_panels();
        assert!(
            panels.len() >= 4,
            "expected >=4 low-end disk models, got {}",
            panels.len()
        );
        for p in &panels {
            assert_eq!(p.rows.len(), 2);
            assert!(p.interconnect_test.is_some());
        }
    }

    #[test]
    fn fig7_has_single_and_dual_for_both_classes() {
        let s = shared_study();
        let panels = s.fig7_panels();
        assert_eq!(panels.len(), 2);
        for p in &panels {
            assert!(
                p.single.disk_years() > p.dual.disk_years(),
                "2/3 single path"
            );
            // Dual path must show a lower interconnect AFR.
            let ty = FailureType::PhysicalInterconnect;
            assert!(p.dual.afr(ty) < p.single.afr(ty), "{}", p.class);
        }
    }

    #[test]
    fn group_windows_cover_all_groups() {
        let s = study(0.002, 37);
        assert_eq!(
            s.group_windows(Scope::Shelf).len(),
            s.input().topology.shelves.len()
        );
        assert_eq!(
            s.group_windows(Scope::RaidGroup).len(),
            s.input().topology.raid_groups.len()
        );
    }

    #[test]
    fn correlation_runs_at_both_scopes() {
        let s = shared_study();
        for scope in [Scope::Shelf, Scope::RaidGroup] {
            let results = s.correlation(scope, SimDuration::from_years(1.0));
            for r in results {
                assert!(r.groups > 0);
                assert!(r.empirical_p1 >= 0.0 && r.empirical_p1 <= 1.0);
            }
        }
    }

    #[test]
    fn disk_model_spread_reports_multi_environment_models() {
        let s = shared_study();
        let spreads = s.disk_model_spread(50.0);
        assert!(!spreads.is_empty(), "some models span environments");
        for sp in &spreads {
            assert!(sp.environments >= 2);
            assert!(sp.disk_afr_cv >= 0.0);
        }
    }

    #[test]
    fn homogeneity_tests_separate_disk_from_subsystem_rates() {
        let s = shared_study();
        let tests = s.disk_model_homogeneity(500.0);
        assert!(!tests.is_empty());
        for t in &tests {
            assert!(
                (0.0..=1.0).contains(&t.disk_p),
                "{}: disk p {}",
                t.model,
                t.disk_p
            );
            assert!((0.0..=1.0).contains(&t.subsystem_p));
            assert!(t.environments >= 2);
        }
        // Aggregate: subsystem rates reject homogeneity more often.
        let disk_rejects = tests.iter().filter(|t| t.disk_p < 0.05).count();
        let sub_rejects = tests.iter().filter(|t| t.subsystem_p < 0.05).count();
        assert!(
            sub_rejects > disk_rejects,
            "{sub_rejects} vs {disk_rejects}"
        );
    }

    #[test]
    fn correlation_sweep_keeps_inflation_across_windows() {
        let s = shared_study();
        let windows = [
            SimDuration::from_years(0.5),
            SimDuration::from_years(1.0),
            SimDuration::from_years(2.0),
        ];
        let sweep = s.correlation_sweep(Scope::Shelf, &windows);
        assert_eq!(sweep.len(), 3);
        for (w, results) in &sweep {
            let ic = results[ssfa_model::FailureType::PhysicalInterconnect.index()];
            let inflation = ic.inflation.expect("theory positive");
            assert!(inflation > 1.5, "window {w}: inflation {inflation}");
        }
        // Longer windows observe fewer eligible groups (ramped installs).
        assert!(sweep[2].1[0].groups <= sweep[0].1[0].groups);
    }
}
