//! Failure correlation analysis (paper §5.2, Figure 10).
//!
//! Under independence, the probability that a shelf (or RAID group)
//! experiences exactly two failures in a window `T` relates to the
//! single-failure probability as `P(2) = P(1)²/2` — and generally
//! `P(N) = P(1)^N / N!` (paper equations 3–4). The analysis computes the
//! empirical `P(1)` and `P(2)` from the first `T` of each group's service
//! and compares the empirical `P(2)` against the theoretical value; a
//! large excess means failures are positively correlated.

use std::collections::HashMap;

use ssfa_model::{FailureRecord, FailureType, SimDuration, SimTime};
use ssfa_stats::special::std_normal_quantile;

use crate::tbf::DEDUP_WINDOW;

/// Grouping scope for burstiness/correlation analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// Group failures by shelf enclosure.
    Shelf,
    /// Group failures by RAID group.
    RaidGroup,
}

impl Scope {
    /// The grouping key of a record under this scope.
    pub fn key(self, rec: &FailureRecord) -> u32 {
        match self {
            Scope::Shelf => rec.shelf.0,
            Scope::RaidGroup => rec.raid_group.0,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Scope::Shelf => "shelf enclosure",
            Scope::RaidGroup => "RAID group",
        }
    }
}

impl std::fmt::Display for Scope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A group eligible for the correlation analysis: its key and the start of
/// its observation window (system install time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupWindow {
    /// Scope key (shelf or RAID group id).
    pub key: u32,
    /// When the group entered service.
    pub in_service_from: SimTime,
}

/// Correlation analysis result for one failure type at one scope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelationResult {
    /// The failure type analyzed.
    pub failure_type: FailureType,
    /// Number of groups observed for at least `T`.
    pub groups: usize,
    /// Empirical `P(1)`: fraction of groups with exactly one failure in
    /// their first `T` of service.
    pub empirical_p1: f64,
    /// Empirical `P(2)`: fraction with exactly two failures.
    pub empirical_p2: f64,
    /// Theoretical `P(2) = P(1)²/2` under independence.
    pub theoretical_p2: f64,
    /// `empirical_p2 / theoretical_p2` (`None` when the theoretical value
    /// is zero).
    pub inflation: Option<f64>,
    /// Two-sided z statistic for `empirical_p2 == theoretical_p2`.
    pub z: f64,
}

impl CorrelationResult {
    /// Whether the empirical `P(2)` differs from the independence
    /// prediction at the given confidence (e.g. `0.995`).
    pub fn significant_at(&self, confidence: f64) -> bool {
        let z_crit = std_normal_quantile(0.5 + confidence / 2.0);
        self.z.abs() > z_crit
    }

    /// Theoretical `P(N) = P(1)^N / N!` under independence (paper eq. 4).
    pub fn theoretical_pn(&self, n: u32) -> f64 {
        let mut factorial = 1.0;
        for k in 2..=n {
            factorial *= k as f64;
        }
        self.empirical_p1.powi(n as i32) / factorial
    }
}

/// Computes the correlation analysis for every failure type at one scope.
///
/// * `groups` — every group (shelf or RAID group) in the fleet with its
///   service start; groups with less than `window` of service before the
///   study end are excluded (paper: "only storage systems that have been
///   in the field for one year or more are considered");
/// * `records` — classified failures (deduplicated internally);
/// * `window` — the observation window `T` (the paper uses one year).
pub fn correlation_by_type(
    scope: Scope,
    groups: &[GroupWindow],
    records: &[FailureRecord],
    window: SimDuration,
) -> [CorrelationResult; 4] {
    let study_end = SimTime::study_end();
    let eligible: Vec<&GroupWindow> = groups
        .iter()
        .filter(|g| g.in_service_from + window <= study_end)
        .collect();

    // Count failures per (group, type) within the group's first `window`.
    let window_of: HashMap<u32, SimTime> = eligible
        .iter()
        .map(|g| (g.key, g.in_service_from))
        .collect();
    let mut counts: HashMap<(u32, FailureType), u32> = HashMap::new();

    // Dedup same-disk same-type repeats, mirroring the TBF analysis.
    let mut sorted: Vec<&FailureRecord> = records.iter().collect();
    sorted.sort_by(|a, b| FailureRecord::chronological(a, b));
    let mut last_seen: HashMap<(ssfa_model::DiskInstanceId, FailureType), SimTime> = HashMap::new();
    for rec in sorted {
        let dedup_key = (rec.disk, rec.failure_type);
        let dup = match last_seen.get(&dedup_key) {
            Some(&prev) => rec.detected_at.duration_since(prev) <= DEDUP_WINDOW,
            None => false,
        };
        last_seen.insert(dedup_key, rec.detected_at);
        if dup {
            continue;
        }
        let key = scope.key(rec);
        if let Some(&from) = window_of.get(&key) {
            if rec.detected_at >= from && rec.detected_at < from + window {
                *counts.entry((key, rec.failure_type)).or_insert(0) += 1;
            }
        }
    }

    FailureType::ALL.map(|ty| {
        let n = eligible.len();
        let mut exactly_one = 0usize;
        let mut exactly_two = 0usize;
        for g in &eligible {
            match counts.get(&(g.key, ty)).copied().unwrap_or(0) {
                1 => exactly_one += 1,
                2 => exactly_two += 1,
                _ => {}
            }
        }
        let p1 = if n == 0 {
            0.0
        } else {
            exactly_one as f64 / n as f64
        };
        let p2 = if n == 0 {
            0.0
        } else {
            exactly_two as f64 / n as f64
        };
        let theory = p1 * p1 / 2.0;
        // z test on the count of two-failure groups against the
        // independence prediction.
        let z = if n > 0 && theory > 0.0 {
            let se = (theory * (1.0 - theory) / n as f64).sqrt();
            (p2 - theory) / se
        } else {
            0.0
        };
        CorrelationResult {
            failure_type: ty,
            groups: n,
            empirical_p1: p1,
            empirical_p2: p2,
            theoretical_p2: theory,
            inflation: if theory > 0.0 {
                Some(p2 / theory)
            } else {
                None
            },
            z,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssfa_model::{DeviceAddr, DiskInstanceId, LoopId, RaidGroupId, ShelfId, SystemId};

    fn rec(t: u64, disk: u64, shelf: u32, ty: FailureType) -> FailureRecord {
        FailureRecord {
            detected_at: SimTime::from_secs(t),
            failure_type: ty,
            disk: DiskInstanceId(disk),
            system: SystemId(0),
            shelf: ShelfId(shelf),
            raid_group: RaidGroupId(shelf),
            fc_loop: LoopId(0),
            device: DeviceAddr::new(8, 16),
        }
    }

    fn groups(n: u32) -> Vec<GroupWindow> {
        (0..n)
            .map(|k| GroupWindow {
                key: k,
                in_service_from: SimTime::ZERO,
            })
            .collect()
    }

    const YEAR: u64 = 31_557_600;

    #[test]
    fn counts_exactly_one_and_exactly_two() {
        // Shelf 0: one disk failure; shelf 1: two; shelf 2: three; rest: none.
        let records = vec![
            rec(100, 1, 0, FailureType::Disk),
            rec(100, 2, 1, FailureType::Disk),
            rec(200_000, 3, 1, FailureType::Disk),
            rec(100, 4, 2, FailureType::Disk),
            rec(200_000, 5, 2, FailureType::Disk),
            rec(400_000, 6, 2, FailureType::Disk),
        ];
        let results = correlation_by_type(
            Scope::Shelf,
            &groups(100),
            &records,
            SimDuration::from_secs(YEAR),
        );
        let disk = results[FailureType::Disk.index()];
        assert_eq!(disk.groups, 100);
        assert!((disk.empirical_p1 - 0.01).abs() < 1e-12);
        assert!((disk.empirical_p2 - 0.01).abs() < 1e-12);
        assert!((disk.theoretical_p2 - 0.00005).abs() < 1e-12);
        assert!(disk.inflation.unwrap() > 100.0);
    }

    #[test]
    fn failures_outside_the_window_do_not_count() {
        let records = vec![
            rec(100, 1, 0, FailureType::Disk),
            rec(2 * YEAR, 2, 0, FailureType::Disk), // beyond first year
        ];
        let results = correlation_by_type(
            Scope::Shelf,
            &groups(10),
            &records,
            SimDuration::from_secs(YEAR),
        );
        let disk = results[FailureType::Disk.index()];
        assert!((disk.empirical_p1 - 0.1).abs() < 1e-12);
        assert_eq!(disk.empirical_p2, 0.0);
    }

    #[test]
    fn groups_without_a_full_window_are_excluded() {
        let mut gs = groups(10);
        // Half the shelves installed too late to observe a full year.
        let end = SimTime::study_end();
        for g in gs.iter_mut().take(5) {
            g.in_service_from = end.saturating_sub(SimDuration::from_secs(YEAR / 2));
        }
        let results = correlation_by_type(Scope::Shelf, &gs, &[], SimDuration::from_secs(YEAR));
        assert_eq!(results[0].groups, 5);
    }

    #[test]
    fn duplicates_are_filtered_before_counting() {
        let records = vec![
            rec(100, 1, 0, FailureType::Protocol),
            rec(700, 1, 0, FailureType::Protocol), // same disk, 10 min later
        ];
        let results = correlation_by_type(
            Scope::Shelf,
            &groups(10),
            &records,
            SimDuration::from_secs(YEAR),
        );
        let proto = results[FailureType::Protocol.index()];
        assert!((proto.empirical_p1 - 0.1).abs() < 1e-12);
        assert_eq!(proto.empirical_p2, 0.0);
    }

    #[test]
    fn independence_produces_no_significant_excess() {
        // Simulate independent Poisson failures across many shelves.
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let n_groups = 20_000u32;
        fn rate_f64() -> f64 {
            0.05 // expected failures per group-year
        }
        let mut records = Vec::new();
        let mut disk_id = 0u64;
        let limit = (-rate_f64()).exp();
        for shelf in 0..n_groups {
            // Poisson(rate) count in the window (Knuth's method).
            let mut k = 0;
            let mut p: f64 = 1.0;
            loop {
                p *= rng.gen::<f64>();
                if p < limit {
                    break;
                }
                k += 1;
            }
            for _ in 0..k {
                disk_id += 1;
                let t = (rng.gen::<f64>() * YEAR as f64) as u64;
                records.push(rec(t, disk_id, shelf, FailureType::Disk));
            }
        }
        let results = correlation_by_type(
            Scope::Shelf,
            &groups(n_groups),
            &records,
            SimDuration::from_secs(YEAR),
        );
        let disk = results[FailureType::Disk.index()];
        // Inflation should be close to 1 and not significant at 99.5%.
        let inflation = disk.inflation.unwrap();
        assert!((0.6..1.6).contains(&inflation), "inflation {inflation}");
        assert!(!disk.significant_at(0.995), "z = {}", disk.z);
    }

    #[test]
    fn theoretical_pn_follows_equation_4() {
        let r = CorrelationResult {
            failure_type: FailureType::Disk,
            groups: 100,
            empirical_p1: 0.1,
            empirical_p2: 0.0,
            theoretical_p2: 0.005,
            inflation: None,
            z: 0.0,
        };
        assert!((r.theoretical_pn(1) - 0.1).abs() < 1e-12);
        assert!((r.theoretical_pn(2) - 0.005).abs() < 1e-12);
        assert!((r.theoretical_pn(3) - 0.1f64.powi(3) / 6.0).abs() < 1e-15);
    }

    #[test]
    fn scope_keys_select_the_right_field() {
        let mut r = rec(0, 1, 5, FailureType::Disk);
        r.raid_group = RaidGroupId(9);
        assert_eq!(Scope::Shelf.key(&r), 5);
        assert_eq!(Scope::RaidGroup.key(&r), 9);
    }
}
