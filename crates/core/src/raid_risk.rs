//! RAID data-loss risk under correlated failures — the paper's motivating
//! extension.
//!
//! The paper's conclusion calls for "a revisit to resiliency mechanisms
//! such as RAID that assume independent failures" (§7): a RAID4 group
//! loses data when a *second* member fails before the first is rebuilt,
//! RAID6 on the third. Classic reliability math (e.g. the original RAID
//! paper \[13\]) computes that probability assuming failures arrive
//! independently at each disk. This module measures the *actual* rate of
//! concurrent-failure incidents in the analyzed data and compares it with
//! the independence prediction — quantifying exactly how much the standard
//! model underestimates data-loss risk on bursty, correlated failures.

use std::collections::{BTreeMap, HashMap};

use ssfa_logs::AnalysisInput;
use ssfa_model::{FailureType, RaidType, SimDuration, SimTime};

use crate::tbf::DEDUP_WINDOW;

/// Which failures count as "a member became unavailable" for RAID math.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RiskFailureSet {
    /// Only whole-disk failures (the classic RAID model's assumption).
    DiskOnly,
    /// Disk failures plus physical interconnect failures — the disks that
    /// "appear to be missing from the system" also drop out of the array
    /// (the study's argument for why interconnect failures matter).
    DiskAndInterconnect,
}

impl RiskFailureSet {
    /// Whether a failure type is in this set.
    pub fn includes(self, ty: FailureType) -> bool {
        match self {
            RiskFailureSet::DiskOnly => ty == FailureType::Disk,
            RiskFailureSet::DiskAndInterconnect => {
                matches!(ty, FailureType::Disk | FailureType::PhysicalInterconnect)
            }
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            RiskFailureSet::DiskOnly => "disk failures only",
            RiskFailureSet::DiskAndInterconnect => "disk + interconnect failures",
        }
    }
}

/// Concurrent-failure risk measured for one RAID level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaidRiskResult {
    /// RAID level analyzed.
    pub raid_type: RaidType,
    /// Which failures were counted.
    pub failure_set: RiskFailureSet,
    /// The assumed repair/rebuild window.
    pub repair_window: SimDuration,
    /// Number of RAID groups of this level.
    pub groups: usize,
    /// Total observed group-years.
    pub group_years: f64,
    /// Failures counted across those groups (after deduplication).
    pub failures: usize,
    /// Incidents where more concurrent member failures accumulated within
    /// one repair window than the level tolerates (data-loss candidates:
    /// ≥ 2 for RAID4, ≥ 3 for RAID6, all on distinct disks).
    pub incidents: u64,
    /// Observed incident rate per group-year.
    pub empirical_rate: f64,
    /// Incident rate predicted by the independence model with each group's
    /// own observed failure rate.
    pub independent_rate: f64,
}

impl RaidRiskResult {
    /// How many times the independence assumption underestimates the
    /// data-loss-candidate rate (`None` when the prediction is zero).
    pub fn underestimation_factor(&self) -> Option<f64> {
        if self.independent_rate > 0.0 {
            Some(self.empirical_rate / self.independent_rate)
        } else {
            None
        }
    }
}

/// Measures concurrent-failure incidents per RAID level.
///
/// An *incident* is a maximal cluster of failures of the chosen set, on
/// distinct disks of one RAID group, where at least `tolerance + 1`
/// failures fall within one `repair_window`. Incidents are counted with a
/// sliding window over the group's deduplicated failure times; a cluster of
/// `k > tolerance + 1` failures still counts once (it is one data-loss
/// event, not several).
///
/// The independence prediction uses each group's own observed failure rate
/// `λ`: clusters of `m = tolerance + 1` events arrive at rate
/// `λ · (λw)^(m−1) / (m−1)!` (the standard Poisson cluster approximation
/// behind MTTDL formulas), summed over groups weighted by observed years.
pub fn raid_data_loss_risk(
    input: &AnalysisInput,
    repair_window: SimDuration,
    failure_set: RiskFailureSet,
) -> Vec<RaidRiskResult> {
    // Group failures (deduplicated per disk+type) by RAID group.
    let mut per_group: HashMap<u32, Vec<(SimTime, u64)>> = HashMap::new();
    {
        let mut sorted: Vec<_> = input
            .failures
            .iter()
            .filter(|r| failure_set.includes(r.failure_type))
            .collect();
        sorted.sort_by(|a, b| ssfa_model::FailureRecord::chronological(a, b));
        let mut last_seen: HashMap<(u64, FailureType), SimTime> = HashMap::new();
        for rec in sorted {
            let key = (rec.disk.0, rec.failure_type);
            let dup = last_seen
                .get(&key)
                .is_some_and(|&prev| rec.detected_at.duration_since(prev) <= DEDUP_WINDOW);
            last_seen.insert(key, rec.detected_at);
            if !dup {
                per_group
                    .entry(rec.raid_group.0)
                    .or_default()
                    .push((rec.detected_at, rec.disk.0));
            }
        }
    }

    // Observation window per group: from system install to study end.
    let study_end = SimTime::study_end();
    // Iterated below with floating-point accumulation: BTreeMap keeps the
    // summation order (and thus the low-order bits) independent of hasher
    // state.
    let group_meta: BTreeMap<u32, (RaidType, f64)> = input
        .topology
        .raid_groups
        .iter()
        .filter_map(|(id, meta)| {
            let sys = input.topology.systems.get(&meta.system)?;
            let years = study_end.duration_since(sys.installed_at).as_years();
            Some((id.0, (meta.raid_type, years)))
        })
        .collect();

    RaidType::ALL
        .into_iter()
        .map(|raid_type| {
            let tolerance = raid_type.fault_tolerance() as usize;
            let needed = tolerance + 1;
            let w_years = repair_window.as_years();

            let mut groups = 0usize;
            let mut group_years = 0.0f64;
            let mut failures = 0usize;
            let mut incidents = 0u64;
            let mut independent_rate_weighted = 0.0f64;

            for (&rg, &(rt, years)) in &group_meta {
                if rt != raid_type || years <= 0.0 {
                    continue;
                }
                groups += 1;
                group_years += years;
                let events = per_group.get(&rg).map(Vec::as_slice).unwrap_or(&[]);
                failures += events.len();

                // Sliding-window scan for clusters of `needed` failures on
                // distinct disks; advance past each found cluster so one
                // burst counts once.
                let mut i = 0;
                while i < events.len() {
                    let window_end = events[i].0 + repair_window;
                    let mut disks: Vec<u64> = vec![events[i].1];
                    let mut j = i + 1;
                    while j < events.len() && events[j].0 <= window_end {
                        if !disks.contains(&events[j].1) {
                            disks.push(events[j].1);
                        }
                        if disks.len() >= needed {
                            break;
                        }
                        j += 1;
                    }
                    if disks.len() >= needed {
                        incidents += 1;
                        i = j + 1; // consume the cluster
                    } else {
                        i += 1;
                    }
                }

                // Independence prediction from this group's own rate.
                let lambda = events.len() as f64 / years;
                if lambda > 0.0 {
                    let mut cluster_rate = lambda;
                    let mut factorial = 1.0;
                    for k in 1..needed {
                        cluster_rate *= lambda * w_years;
                        factorial *= k as f64;
                    }
                    independent_rate_weighted += (cluster_rate / factorial) * years;
                }
            }

            let empirical_rate = if group_years > 0.0 {
                incidents as f64 / group_years
            } else {
                0.0
            };
            let independent_rate = if group_years > 0.0 {
                independent_rate_weighted / group_years
            } else {
                0.0
            };
            RaidRiskResult {
                raid_type,
                failure_set,
                repair_window,
                groups,
                group_years,
                failures,
                incidents,
                empirical_rate,
                independent_rate,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssfa_logs::classify::{RaidGroupMeta, SystemMeta};
    use ssfa_logs::Topology;
    use ssfa_model::{
        DeviceAddr, DiskInstanceId, DiskModelId, FailureRecord, LayoutPolicy, LoopId, PathConfig,
        RaidGroupId, ShelfId, ShelfModel, SlotAddr, SystemClass, SystemId,
    };

    /// Builds a minimal AnalysisInput: `n_groups` RAID4 groups in service
    /// from t=0, with the given failure times per group.
    fn input_with(n_groups: u32, failures: Vec<(u32, u64, u64)>) -> AnalysisInput {
        let mut topology = Topology::default();
        topology.systems.insert(
            SystemId(0),
            SystemMeta {
                class: SystemClass::MidRange,
                disk_model: DiskModelId::new('D', 2),
                shelf_model: ShelfModel::B,
                paths: PathConfig::SinglePath,
                layout: LayoutPolicy::SpanShelves,
                installed_at: SimTime::ZERO,
            },
        );
        for g in 0..n_groups {
            topology.raid_groups.insert(
                RaidGroupId(g),
                RaidGroupMeta {
                    system: SystemId(0),
                    raid_type: RaidType::Raid4,
                    slots: vec![SlotAddr {
                        shelf: ShelfId(0),
                        bay: 0,
                    }],
                },
            );
        }
        let failures = failures
            .into_iter()
            .map(|(rg, disk, t)| FailureRecord {
                detected_at: SimTime::from_secs(t),
                failure_type: FailureType::Disk,
                disk: DiskInstanceId(disk),
                system: SystemId(0),
                shelf: ShelfId(0),
                raid_group: RaidGroupId(rg),
                fc_loop: LoopId(0),
                device: DeviceAddr::new(8, 16),
            })
            .collect();
        AnalysisInput {
            topology,
            lifetimes: Vec::new(),
            failures,
        }
    }

    const DAY: u64 = 86_400;

    #[test]
    fn two_failures_within_window_are_one_incident() {
        let input = input_with(10, vec![(0, 1, 100 * DAY), (0, 2, 100 * DAY + DAY / 2)]);
        let results = raid_data_loss_risk(
            &input,
            SimDuration::from_days(1.0),
            RiskFailureSet::DiskOnly,
        );
        let raid4 = &results[0];
        assert_eq!(raid4.raid_type, RaidType::Raid4);
        assert_eq!(raid4.incidents, 1);
        assert_eq!(raid4.failures, 2);
        assert!(raid4.empirical_rate > 0.0);
    }

    #[test]
    fn two_failures_outside_window_are_no_incident() {
        let input = input_with(10, vec![(0, 1, 100 * DAY), (0, 2, 105 * DAY)]);
        let results = raid_data_loss_risk(
            &input,
            SimDuration::from_days(1.0),
            RiskFailureSet::DiskOnly,
        );
        assert_eq!(results[0].incidents, 0);
    }

    #[test]
    fn same_disk_repeats_do_not_form_an_incident() {
        // Two failures of the same disk 2 days apart (outside the dedup
        // window, inside a 7-day repair window): not a double failure.
        let input = input_with(10, vec![(0, 1, 100 * DAY), (0, 1, 102 * DAY)]);
        let results = raid_data_loss_risk(
            &input,
            SimDuration::from_days(7.0),
            RiskFailureSet::DiskOnly,
        );
        assert_eq!(results[0].incidents, 0);
    }

    #[test]
    fn triple_burst_counts_once() {
        let input = input_with(
            10,
            vec![
                (0, 1, 100 * DAY),
                (0, 2, 100 * DAY + 3_600),
                (0, 3, 100 * DAY + 7_200),
            ],
        );
        let results = raid_data_loss_risk(
            &input,
            SimDuration::from_days(1.0),
            RiskFailureSet::DiskOnly,
        );
        assert_eq!(results[0].incidents, 1, "one burst, one incident");
    }

    #[test]
    fn interconnect_failures_count_only_in_the_wider_set() {
        let mut input = input_with(10, vec![(0, 1, 100 * DAY)]);
        input.failures.push(FailureRecord {
            detected_at: SimTime::from_secs(100 * DAY + 600),
            failure_type: FailureType::PhysicalInterconnect,
            disk: DiskInstanceId(2),
            system: SystemId(0),
            shelf: ShelfId(0),
            raid_group: RaidGroupId(0),
            fc_loop: LoopId(0),
            device: DeviceAddr::new(8, 17),
        });
        let disk_only = raid_data_loss_risk(
            &input,
            SimDuration::from_days(1.0),
            RiskFailureSet::DiskOnly,
        );
        assert_eq!(disk_only[0].incidents, 0);
        let both = raid_data_loss_risk(
            &input,
            SimDuration::from_days(1.0),
            RiskFailureSet::DiskAndInterconnect,
        );
        assert_eq!(both[0].incidents, 1);
    }

    #[test]
    fn independence_prediction_is_positive_when_failures_exist() {
        let input = input_with(5, vec![(0, 1, 10 * DAY), (1, 2, 600 * DAY)]);
        let results = raid_data_loss_risk(
            &input,
            SimDuration::from_days(3.0),
            RiskFailureSet::DiskOnly,
        );
        let raid4 = &results[0];
        assert!(raid4.independent_rate > 0.0);
        assert_eq!(raid4.incidents, 0);
        assert_eq!(raid4.underestimation_factor(), Some(0.0));
    }

    #[test]
    fn correlated_bursts_beat_the_independence_prediction_end_to_end() {
        // Real pipeline data: bursty interconnect failures make concurrent
        // member loss far more common than the independence model expects.
        use ssfa_logs::{classify, render_support_log, CascadeStyle};
        use ssfa_model::{Fleet, FleetConfig};
        use ssfa_sim::Simulator;
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.02), 90);
        let out = Simulator::default().run(&fleet, 90);
        let book = render_support_log(&fleet, &out, CascadeStyle::RaidOnly);
        let input = classify(&book).unwrap();

        let results = raid_data_loss_risk(
            &input,
            SimDuration::from_days(1.0),
            RiskFailureSet::DiskAndInterconnect,
        );
        for r in &results {
            assert!(r.groups > 100, "{}: too few groups", r.raid_type);
            if r.incidents >= 5 {
                let factor = r.underestimation_factor().expect("prediction positive");
                assert!(
                    factor > 2.0,
                    "{}: correlated incidents should exceed independence prediction, got x{factor:.1}",
                    r.raid_type
                );
            }
        }
    }
}
