//! Canonical binary snapshot of a [`StudyFold`]: the persistent form of
//! the incremental analysis state.
//!
//! A snapshot is a versioned little-endian byte image of the fold's
//! accumulator (`AnalysisInput` topology maps, lifetimes, failures) plus
//! its partial count. The encoding is *canonical*: the same fold state
//! always serializes to identical bytes (`BTreeMap`s iterate in key
//! order; vectors are written in their current append order, which the
//! fold re-establishes deterministically), so checkpoint equality can be
//! checked bytewise and checkpoint digests are stable across runs.
//!
//! The format carries no checksum of its own — snapshots travel inside
//! `SSFC` frames (see `ssfa_logs::checkpoint`), which FNV-checksum the
//! whole payload and reject single-bit flips. What this module *does*
//! pin is the schema: [`SNAPSHOT_VERSION`] leads the image, and a
//! mismatch is refused with a typed, pinned-`Display` error rather than
//! a garbage decode. Bumping the version is a contract change: the
//! `ssfa-lint` contract-sync rule requires the documented schema in
//! DESIGN §15 to name the same version this module compiles with.
//!
//! Decoding is defensive throughout: every read is bounds-checked
//! (`Truncated`), every enum/bool/char byte is range-checked
//! (`Invalid`), and trailing bytes after the last field are refused
//! (`TrailingBytes`) — a truncated or bit-flipped snapshot that somehow
//! slipped past the frame checksum still cannot produce a silently
//! wrong fold.

use std::fmt;

use ssfa_logs::classify::{DiskLifetime, RaidGroupMeta, ShelfMeta, SystemMeta, Topology};
use ssfa_logs::AnalysisInput;
use ssfa_model::{
    DeviceAddr, DiskFamily, DiskInstanceId, DiskModelId, FailureRecord, FailureType, LayoutPolicy,
    LoopId, PathConfig, RaidGroupId, RaidType, ShelfId, ShelfModel, SimTime, SlotAddr, SystemClass,
    SystemId,
};

use crate::study::StudyFold;

/// The snapshot schema version this build writes and reads. Bump it on
/// any layout change — old snapshots are refused, never reinterpreted.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Errors from [`StudyFold::from_snapshot`], each with a pinned
/// `Display` rendering (the negative-path suite asserts exact messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The leading version word names a schema this build does not read.
    UnsupportedVersion {
        /// The version found in the snapshot.
        found: u32,
    },
    /// The image ended before a field could be read in full.
    Truncated {
        /// Which field was being read.
        what: &'static str,
        /// Bytes the field needs.
        needed: usize,
        /// Bytes remaining in the image.
        available: usize,
    },
    /// A field decoded to a value outside its domain (enum discriminant,
    /// bool byte, or char scalar).
    Invalid {
        /// Which field was out of range.
        what: &'static str,
        /// The raw value found.
        found: u64,
    },
    /// Bytes remain after the last field — the image is not exactly one
    /// snapshot.
    TrailingBytes {
        /// How many bytes follow the last field.
        bytes: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (this build reads version \
                     {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Truncated {
                what,
                needed,
                available,
            } => {
                write!(
                    f,
                    "truncated snapshot {what}: need {needed} bytes, have {available}"
                )
            }
            SnapshotError::Invalid { what, found } => {
                write!(f, "snapshot {what} has invalid value {found}")
            }
            SnapshotError::TrailingBytes { bytes } => {
                write!(
                    f,
                    "snapshot has {bytes} trailing byte(s) after the last field"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------------
// Encoding. Plain pushes onto a Vec — every field is fixed-width LE or a
// u64-length-prefixed sequence, so the writer cannot produce an image the
// reader rejects.

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_len(out: &mut Vec<u8>, n: usize) {
    put_u64(out, n as u64);
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    put_u8(out, u8::from(v));
}

fn put_slot(out: &mut Vec<u8>, s: SlotAddr) {
    put_u32(out, s.shelf.0);
    put_u8(out, s.bay);
}

fn put_device(out: &mut Vec<u8>, d: DeviceAddr) {
    put_u8(out, d.adapter);
    put_u8(out, d.target);
}

fn put_disk_model(out: &mut Vec<u8>, m: DiskModelId) {
    put_u32(out, m.family.0 as u32);
    put_u8(out, m.capacity_point);
}

fn put_class(out: &mut Vec<u8>, c: SystemClass) {
    put_u8(out, c.index() as u8);
}

fn put_shelf_model(out: &mut Vec<u8>, m: ShelfModel) {
    put_u8(
        out,
        match m {
            ShelfModel::A => 0,
            ShelfModel::B => 1,
            ShelfModel::C => 2,
        },
    );
}

fn put_paths(out: &mut Vec<u8>, p: PathConfig) {
    put_u8(
        out,
        match p {
            PathConfig::SinglePath => 0,
            PathConfig::DualPath => 1,
        },
    );
}

fn put_layout(out: &mut Vec<u8>, l: LayoutPolicy) {
    put_u8(
        out,
        match l {
            LayoutPolicy::SpanShelves => 0,
            LayoutPolicy::SameShelf => 1,
        },
    );
}

fn put_raid_type(out: &mut Vec<u8>, r: RaidType) {
    put_u8(
        out,
        match r {
            RaidType::Raid4 => 0,
            RaidType::Raid6 => 1,
        },
    );
}

fn put_failure_type(out: &mut Vec<u8>, t: FailureType) {
    put_u8(out, t.index() as u8);
}

fn put_system_meta(out: &mut Vec<u8>, m: &SystemMeta) {
    put_class(out, m.class);
    put_disk_model(out, m.disk_model);
    put_shelf_model(out, m.shelf_model);
    put_paths(out, m.paths);
    put_layout(out, m.layout);
    put_u64(out, m.installed_at.0);
}

fn put_shelf_meta(out: &mut Vec<u8>, m: &ShelfMeta) {
    put_u32(out, m.system.0);
    put_shelf_model(out, m.model);
    put_u32(out, m.fc_loop.0);
    put_u8(out, m.bays);
}

fn put_raid_group_meta(out: &mut Vec<u8>, m: &RaidGroupMeta) {
    put_u32(out, m.system.0);
    put_raid_type(out, m.raid_type);
    put_len(out, m.slots.len());
    for &slot in &m.slots {
        put_slot(out, slot);
    }
}

fn put_lifetime(out: &mut Vec<u8>, lt: &DiskLifetime) {
    put_u64(out, lt.disk.0);
    put_disk_model(out, lt.model);
    put_slot(out, lt.slot);
    put_u32(out, lt.system.0);
    put_u32(out, lt.raid_group.0);
    put_u64(out, lt.installed_at.0);
    put_u64(out, lt.removed_at.0);
    put_bool(out, lt.removed_by_failure);
}

fn put_failure(out: &mut Vec<u8>, r: &FailureRecord) {
    put_u64(out, r.detected_at.0);
    put_failure_type(out, r.failure_type);
    put_u64(out, r.disk.0);
    put_u32(out, r.system.0);
    put_u32(out, r.shelf.0);
    put_u32(out, r.raid_group.0);
    put_u32(out, r.fc_loop.0);
    put_device(out, r.device);
}

// ---------------------------------------------------------------------------
// Decoding. Every read is bounds-checked against the remaining image and
// every discriminant is range-checked; sequences are read element by
// element (no length-trusting preallocation, so a corrupt length prefix
// fails fast on the first missing element instead of allocating).

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                what,
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, SnapshotError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, SnapshotError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn len(&mut self, what: &'static str) -> Result<usize, SnapshotError> {
        let n = self.u64(what)?;
        usize::try_from(n).map_err(|_| SnapshotError::Invalid { what, found: n })
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, SnapshotError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Invalid {
                what,
                found: u64::from(b),
            }),
        }
    }

    fn slot(&mut self, what: &'static str) -> Result<SlotAddr, SnapshotError> {
        Ok(SlotAddr {
            shelf: ShelfId(self.u32(what)?),
            bay: self.u8(what)?,
        })
    }

    fn device(&mut self, what: &'static str) -> Result<DeviceAddr, SnapshotError> {
        Ok(DeviceAddr {
            adapter: self.u8(what)?,
            target: self.u8(what)?,
        })
    }

    fn disk_model(&mut self, what: &'static str) -> Result<DiskModelId, SnapshotError> {
        let raw = self.u32(what)?;
        let family = char::from_u32(raw).ok_or(SnapshotError::Invalid {
            what,
            found: u64::from(raw),
        })?;
        Ok(DiskModelId {
            family: DiskFamily(family),
            capacity_point: self.u8(what)?,
        })
    }

    fn variant<T: Copy>(&mut self, what: &'static str, table: &[T]) -> Result<T, SnapshotError> {
        let b = self.u8(what)?;
        table
            .get(usize::from(b))
            .copied()
            .ok_or(SnapshotError::Invalid {
                what,
                found: u64::from(b),
            })
    }

    fn system_meta(&mut self) -> Result<SystemMeta, SnapshotError> {
        Ok(SystemMeta {
            class: self.variant("system class", &SystemClass::ALL)?,
            disk_model: self.disk_model("disk model")?,
            shelf_model: self.variant("shelf model", &ShelfModel::ALL)?,
            paths: self.variant("path config", &PathConfig::ALL)?,
            layout: self.variant(
                "layout policy",
                &[LayoutPolicy::SpanShelves, LayoutPolicy::SameShelf],
            )?,
            installed_at: SimTime(self.u64("system install time")?),
        })
    }

    fn shelf_meta(&mut self) -> Result<ShelfMeta, SnapshotError> {
        Ok(ShelfMeta {
            system: SystemId(self.u32("shelf system")?),
            model: self.variant("shelf model", &ShelfModel::ALL)?,
            fc_loop: LoopId(self.u32("shelf fc loop")?),
            bays: self.u8("shelf bays")?,
        })
    }

    fn raid_group_meta(&mut self) -> Result<RaidGroupMeta, SnapshotError> {
        let system = SystemId(self.u32("raid group system")?);
        let raid_type = self.variant("raid type", &RaidType::ALL)?;
        let n = self.len("raid group slot count")?;
        let mut slots = Vec::new();
        for _ in 0..n {
            slots.push(self.slot("raid group slot")?);
        }
        Ok(RaidGroupMeta {
            system,
            raid_type,
            slots,
        })
    }

    fn lifetime(&mut self) -> Result<DiskLifetime, SnapshotError> {
        Ok(DiskLifetime {
            disk: DiskInstanceId(self.u64("lifetime disk")?),
            model: self.disk_model("lifetime disk model")?,
            slot: self.slot("lifetime slot")?,
            system: SystemId(self.u32("lifetime system")?),
            raid_group: RaidGroupId(self.u32("lifetime raid group")?),
            installed_at: SimTime(self.u64("lifetime install time")?),
            removed_at: SimTime(self.u64("lifetime removal time")?),
            removed_by_failure: self.bool("lifetime removal flag")?,
        })
    }

    fn failure(&mut self) -> Result<FailureRecord, SnapshotError> {
        Ok(FailureRecord {
            detected_at: SimTime(self.u64("failure detection time")?),
            failure_type: self.variant("failure type", &FailureType::ALL)?,
            disk: DiskInstanceId(self.u64("failure disk")?),
            system: SystemId(self.u32("failure system")?),
            shelf: ShelfId(self.u32("failure shelf")?),
            raid_group: RaidGroupId(self.u32("failure raid group")?),
            fc_loop: LoopId(self.u32("failure fc loop")?),
            device: self.device("failure device")?,
        })
    }
}

pub(crate) fn encode(acc: &AnalysisInput, partials: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        64 + acc.topology.systems.len() * 24 + acc.lifetimes.len() * 40 + acc.failures.len() * 40,
    );
    put_u32(&mut out, SNAPSHOT_VERSION);
    put_u64(&mut out, partials as u64);

    put_len(&mut out, acc.topology.systems.len());
    for (&id, meta) in &acc.topology.systems {
        put_u32(&mut out, id.0);
        put_system_meta(&mut out, meta);
    }
    put_len(&mut out, acc.topology.shelves.len());
    for (&id, meta) in &acc.topology.shelves {
        put_u32(&mut out, id.0);
        put_shelf_meta(&mut out, meta);
    }
    put_len(&mut out, acc.topology.raid_groups.len());
    for (&id, meta) in &acc.topology.raid_groups {
        put_u32(&mut out, id.0);
        put_raid_group_meta(&mut out, meta);
    }
    put_len(&mut out, acc.topology.slot_to_group.len());
    for (&slot, &group) in &acc.topology.slot_to_group {
        put_slot(&mut out, slot);
        put_u32(&mut out, group.0);
    }
    put_len(&mut out, acc.topology.device_to_slot.len());
    for (&(system, device), &slot) in &acc.topology.device_to_slot {
        put_u32(&mut out, system.0);
        put_device(&mut out, device);
        put_slot(&mut out, slot);
    }

    put_len(&mut out, acc.lifetimes.len());
    for lt in &acc.lifetimes {
        put_lifetime(&mut out, lt);
    }
    put_len(&mut out, acc.failures.len());
    for r in &acc.failures {
        put_failure(&mut out, r);
    }
    out
}

pub(crate) fn decode(bytes: &[u8]) -> Result<(AnalysisInput, usize), SnapshotError> {
    let mut r = Reader::new(bytes);
    let version = r.u32("version")?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let partials = r.len("partial count")?;

    let mut topology = Topology::default();
    let n = r.len("system count")?;
    for _ in 0..n {
        let id = SystemId(r.u32("system id")?);
        topology.systems.insert(id, r.system_meta()?);
    }
    let n = r.len("shelf count")?;
    for _ in 0..n {
        let id = ShelfId(r.u32("shelf id")?);
        topology.shelves.insert(id, r.shelf_meta()?);
    }
    let n = r.len("raid group count")?;
    for _ in 0..n {
        let id = RaidGroupId(r.u32("raid group id")?);
        topology.raid_groups.insert(id, r.raid_group_meta()?);
    }
    let n = r.len("slot map count")?;
    for _ in 0..n {
        let slot = r.slot("slot map slot")?;
        let group = RaidGroupId(r.u32("slot map group")?);
        topology.slot_to_group.insert(slot, group);
    }
    let n = r.len("device map count")?;
    for _ in 0..n {
        let system = SystemId(r.u32("device map system")?);
        let device = r.device("device map device")?;
        let slot = r.slot("device map slot")?;
        topology.device_to_slot.insert((system, device), slot);
    }

    let n = r.len("lifetime count")?;
    let mut lifetimes = Vec::new();
    for _ in 0..n {
        lifetimes.push(r.lifetime()?);
    }
    let n = r.len("failure count")?;
    let mut failures = Vec::new();
    for _ in 0..n {
        failures.push(r.failure()?);
    }

    if r.remaining() != 0 {
        return Err(SnapshotError::TrailingBytes {
            bytes: r.remaining(),
        });
    }
    Ok((
        AnalysisInput {
            topology,
            lifetimes,
            failures,
        },
        partials,
    ))
}

impl StudyFold {
    /// Serializes the fold to its canonical binary image (see the module
    /// docs for the layout). `from_snapshot(to_snapshot())` restores a
    /// fold that is indistinguishable from this one: identical
    /// accumulator bytes, identical partial count, identical
    /// [`StudyFold::finish`] output.
    pub fn to_snapshot(&self) -> Vec<u8> {
        encode(self.acc_ref(), self.len())
    }

    /// Restores a fold from a snapshot image.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on a version mismatch, truncation, an
    /// out-of-domain field, or trailing bytes.
    pub fn from_snapshot(bytes: &[u8]) -> Result<StudyFold, SnapshotError> {
        let (acc, partials) = decode(bytes)?;
        Ok(StudyFold::from_parts(acc, partials))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssfa_logs::classify::classify;
    use ssfa_logs::render::render_support_log;
    use ssfa_logs::CascadeStyle;
    use ssfa_model::{Fleet, FleetConfig};
    use ssfa_sim::Simulator;

    fn fold_at(scale: f64, seed: u64) -> StudyFold {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(scale), seed);
        let output = Simulator::default().run(&fleet, seed);
        let book = render_support_log(&fleet, &output, CascadeStyle::RaidOnly);
        let mut fold = StudyFold::new();
        fold.push(classify(&book).expect("classify"));
        fold
    }

    /// One shared fold/image pair — building it dominates test wall time
    /// in the dev profile, so every test reads the same instance.
    fn sample_fold() -> &'static StudyFold {
        static FOLD: std::sync::OnceLock<StudyFold> = std::sync::OnceLock::new();
        FOLD.get_or_init(|| fold_at(0.002, 99))
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let fold = sample_fold().clone();
        let image = fold.to_snapshot();
        let restored = StudyFold::from_snapshot(&image).expect("restore");
        assert_eq!(restored.len(), fold.len());
        assert_eq!(
            restored.to_snapshot(),
            image,
            "re-snapshot is bytewise stable"
        );
        assert_eq!(
            format!("{:?}", restored.finish().table1()),
            format!("{:?}", fold.finish().table1()),
        );
    }

    #[test]
    fn empty_fold_round_trips() {
        let image = StudyFold::new().to_snapshot();
        let restored = StudyFold::from_snapshot(&image).expect("restore");
        assert!(restored.is_empty());
        assert_eq!(restored.to_snapshot(), image);
    }

    #[test]
    fn version_mismatch_is_refused_with_pinned_display() {
        let mut image = sample_fold().to_snapshot();
        image[0..4].copy_from_slice(&2u32.to_le_bytes());
        let err = StudyFold::from_snapshot(&image).unwrap_err();
        assert_eq!(err, SnapshotError::UnsupportedVersion { found: 2 });
        assert_eq!(
            err.to_string(),
            "unsupported snapshot version 2 (this build reads version 1)"
        );
    }

    #[test]
    fn truncation_at_any_sampled_cut_is_typed() {
        let image = sample_fold().to_snapshot();
        // Every cut through the header and first records, then a fixed
        // stride across the body (exhaustive would be O(len²)).
        let cuts = (0..image.len().min(256)).chain((256..image.len()).step_by(97));
        for cut in cuts {
            match StudyFold::from_snapshot(&image[..cut]) {
                Err(SnapshotError::Truncated { .. }) => {}
                other => panic!("truncation at {cut} must be Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_refused() {
        let mut image = sample_fold().to_snapshot();
        image.push(0);
        assert_eq!(
            StudyFold::from_snapshot(&image).unwrap_err(),
            SnapshotError::TrailingBytes { bytes: 1 }
        );
    }

    #[test]
    fn merge_is_associative_down_to_snapshot_bytes() {
        let (a, b, c) = (sample_fold().clone(), fold_at(0.001, 2), fold_at(0.001, 3));

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(b.clone());
        left.merge(c.clone());
        // a ⊕ (b ⊕ c)
        let mut bc = b;
        bc.merge(c);
        let mut right = a;
        right.merge(bc);

        assert_eq!(left.len(), right.len());
        assert_eq!(
            left.to_snapshot(),
            right.to_snapshot(),
            "merge must be associative at the byte level (map union and vec append both are)"
        );
        assert_eq!(
            format!("{:?}", left.finish().table1()),
            format!("{:?}", right.finish().table1()),
        );
    }
}
