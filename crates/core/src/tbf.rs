//! Time-between-failure analysis (paper §5.1, Figure 9).
//!
//! Failures are grouped by shelf enclosure or RAID group; within each
//! group, consecutive detection-time gaps form the time-between-failure
//! sample. Duplicate failures (the same disk re-reporting the same failure
//! type in short succession) are filtered first, as the paper does, so the
//! distribution reflects failures of *different* disks sharing a
//! component. Disk-failure gaps are additionally fitted against the
//! paper's three candidate models.

use std::collections::{BTreeMap, HashMap};

use ssfa_model::{FailureRecord, FailureType, SimDuration};
use ssfa_stats::ecdf::Ecdf;
use ssfa_stats::fit::{fit_all, FittedModel};
use ssfa_stats::hypothesis::{chi_square_gof, ChiSquareResult};

use crate::correlation::Scope;

/// The burstiness threshold the paper quotes: 10,000 seconds.
pub const BURST_THRESHOLD_SECS: f64 = 10_000.0;

/// Window within which a same-disk same-type repeat is considered a
/// duplicate report of one failure (deduplication, paper §5.1).
pub const DEDUP_WINDOW: SimDuration = SimDuration(24 * 3_600);

/// Gap statistics for one failure type (or the overall stream).
#[derive(Debug, Clone)]
pub struct GapAnalysis {
    /// The gaps, in seconds, in occurrence order.
    pub gaps_secs: Vec<f64>,
    /// Empirical CDF over the gaps (`None` when fewer than 1 gap).
    pub ecdf: Option<Ecdf>,
}

impl GapAnalysis {
    fn from_gaps(gaps_secs: Vec<f64>) -> Self {
        let ecdf = if gaps_secs.is_empty() {
            None
        } else {
            Ecdf::new(&gaps_secs).ok()
        };
        GapAnalysis { gaps_secs, ecdf }
    }

    /// Number of gaps observed.
    pub fn len(&self) -> usize {
        self.gaps_secs.len()
    }

    /// Whether no gaps were observed.
    pub fn is_empty(&self) -> bool {
        self.gaps_secs.is_empty()
    }

    /// Fraction of gaps at or below `threshold_secs` (the paper's
    /// "X% of failures arrive within 10,000 seconds of the previous one").
    pub fn fraction_within(&self, threshold_secs: f64) -> f64 {
        match &self.ecdf {
            Some(e) => e.eval(threshold_secs),
            None => 0.0,
        }
    }

    /// Samples the empirical CDF at `n` log-spaced points between `lo` and
    /// `hi` seconds — the series of the paper's Figure 9 (log-scaled time
    /// axis from 1 s to 10⁸ s). Returns an empty vector when no gaps were
    /// observed.
    pub fn cdf_series(&self, lo_secs: f64, hi_secs: f64, n: usize) -> Vec<(f64, f64)> {
        match &self.ecdf {
            Some(e) => e.log_spaced_series(lo_secs, hi_secs, n),
            None => Vec::new(),
        }
    }

    /// Fits the paper's candidate distributions (exponential, Weibull,
    /// Gamma) to the gaps and runs a chi-square goodness-of-fit for each.
    ///
    /// Returns `(model, chi-square result)` pairs; models whose fit or test
    /// prerequisites fail are omitted. Zero gaps (same detection second)
    /// are nudged to one second, since the fits require positive support.
    pub fn fit_candidates(&self, bins: usize) -> Vec<(FittedModel, ChiSquareResult)> {
        let data: Vec<f64> = self.gaps_secs.iter().map(|&g| g.max(1.0)).collect();
        let Ok(fits) = fit_all(&data) else {
            return Vec::new();
        };
        fits.into_iter()
            .filter_map(|fit| {
                chi_square_gof(&data, fit.dist.as_ref(), bins, fit.params)
                    .ok()
                    .map(|gof| (fit, gof))
            })
            .collect()
    }
}

/// Complete time-between-failure analysis at one scope.
#[derive(Debug, Clone)]
pub struct TbfAnalysis {
    /// Which grouping produced this analysis.
    pub scope: Scope,
    /// Gap analysis per failure type.
    per_type: [GapAnalysis; 4],
    /// Gap analysis over the merged (all-types) stream.
    overall: GapAnalysis,
}

impl TbfAnalysis {
    /// Groups failures by the scope's key and computes gap samples.
    ///
    /// Records need not be sorted; duplicates are filtered per
    /// [`DEDUP_WINDOW`].
    pub fn compute(scope: Scope, records: &[FailureRecord]) -> TbfAnalysis {
        // Group records by scope key — in key order (BTreeMap), so the
        // gap-sample vectors are filled in the same order however the
        // records were produced.
        let mut groups: BTreeMap<u32, Vec<&FailureRecord>> = BTreeMap::new();
        for rec in records {
            groups.entry(scope.key(rec)).or_default().push(rec);
        }

        let mut per_type_gaps: [Vec<f64>; 4] = Default::default();
        let mut overall_gaps: Vec<f64> = Vec::new();

        for group in groups.values_mut() {
            group.sort_by(|a, b| FailureRecord::chronological(a, b));
            let deduped = dedup(group);

            // Per-type gaps.
            for ty in FailureType::ALL {
                let mut last = None;
                for rec in deduped.iter().filter(|r| r.failure_type == ty) {
                    if let Some(prev) = last {
                        let gap = rec.detected_at.duration_since(prev).as_secs() as f64;
                        per_type_gaps[ty.index()].push(gap);
                    }
                    last = Some(rec.detected_at);
                }
            }
            // Overall gaps.
            for pair in deduped.windows(2) {
                let gap = pair[1]
                    .detected_at
                    .duration_since(pair[0].detected_at)
                    .as_secs();
                overall_gaps.push(gap as f64);
            }
        }

        TbfAnalysis {
            scope,
            per_type: per_type_gaps.map(GapAnalysis::from_gaps),
            overall: GapAnalysis::from_gaps(overall_gaps),
        }
    }

    /// Gap analysis for one failure type.
    pub fn for_type(&self, ty: FailureType) -> &GapAnalysis {
        &self.per_type[ty.index()]
    }

    /// Gap analysis over the merged stream of all four types.
    pub fn overall(&self) -> &GapAnalysis {
        &self.overall
    }
}

/// Removes same-disk same-type repeats within [`DEDUP_WINDOW`] from a
/// chronologically sorted group.
fn dedup<'a>(sorted: &[&'a FailureRecord]) -> Vec<&'a FailureRecord> {
    let mut last_seen: HashMap<(ssfa_model::DiskInstanceId, FailureType), ssfa_model::SimTime> =
        HashMap::new();
    let mut kept = Vec::with_capacity(sorted.len());
    for &rec in sorted {
        let key = (rec.disk, rec.failure_type);
        let dup = match last_seen.get(&key) {
            Some(&prev) => rec.detected_at.duration_since(prev) <= DEDUP_WINDOW,
            None => false,
        };
        last_seen.insert(key, rec.detected_at);
        if !dup {
            kept.push(rec);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssfa_model::{DeviceAddr, DiskInstanceId, LoopId, RaidGroupId, ShelfId, SimTime, SystemId};

    fn rec(t: u64, disk: u64, shelf: u32, ty: FailureType) -> FailureRecord {
        FailureRecord {
            detected_at: SimTime::from_secs(t),
            failure_type: ty,
            disk: DiskInstanceId(disk),
            system: SystemId(0),
            shelf: ShelfId(shelf),
            raid_group: RaidGroupId(shelf), // 1:1 for test simplicity
            fc_loop: LoopId(0),
            device: DeviceAddr::new(8, 16),
        }
    }

    #[test]
    fn gaps_are_computed_within_groups_only() {
        let records = vec![
            rec(1_000, 1, 0, FailureType::Disk),
            rec(5_000, 2, 0, FailureType::Disk),
            // Different shelf: independent stream, no cross-group gap.
            rec(6_000, 3, 1, FailureType::Disk),
        ];
        let tbf = TbfAnalysis::compute(Scope::Shelf, &records);
        let disk = tbf.for_type(FailureType::Disk);
        assert_eq!(disk.gaps_secs, vec![4_000.0]);
        assert_eq!(tbf.overall().gaps_secs, vec![4_000.0]);
    }

    #[test]
    fn overall_stream_merges_types() {
        let records = vec![
            rec(1_000, 1, 0, FailureType::Disk),
            rec(3_000, 2, 0, FailureType::Protocol),
            rec(9_000, 3, 0, FailureType::Disk),
        ];
        let tbf = TbfAnalysis::compute(Scope::Shelf, &records);
        assert_eq!(tbf.overall().gaps_secs, vec![2_000.0, 6_000.0]);
        assert_eq!(tbf.for_type(FailureType::Disk).gaps_secs, vec![8_000.0]);
        assert!(tbf.for_type(FailureType::Protocol).is_empty());
    }

    #[test]
    fn duplicates_same_disk_same_type_are_filtered() {
        let records = vec![
            rec(1_000, 1, 0, FailureType::PhysicalInterconnect),
            // Same disk re-reports 10 minutes later: duplicate.
            rec(1_600, 1, 0, FailureType::PhysicalInterconnect),
            rec(50_000, 2, 0, FailureType::PhysicalInterconnect),
        ];
        let tbf = TbfAnalysis::compute(Scope::Shelf, &records);
        let ic = tbf.for_type(FailureType::PhysicalInterconnect);
        assert_eq!(ic.gaps_secs, vec![49_000.0]);
    }

    #[test]
    fn same_disk_different_type_is_not_a_duplicate() {
        let records = vec![
            rec(1_000, 1, 0, FailureType::PhysicalInterconnect),
            rec(2_000, 1, 0, FailureType::Protocol),
        ];
        let tbf = TbfAnalysis::compute(Scope::Shelf, &records);
        assert_eq!(tbf.overall().gaps_secs, vec![1_000.0]);
    }

    #[test]
    fn same_disk_same_type_after_window_is_kept() {
        let records = vec![
            rec(1_000, 1, 0, FailureType::Disk),
            rec(1_000 + 30 * 3_600, 1, 0, FailureType::Disk),
        ];
        let tbf = TbfAnalysis::compute(Scope::Shelf, &records);
        assert_eq!(tbf.for_type(FailureType::Disk).len(), 1);
    }

    #[test]
    fn raid_group_scope_regroups() {
        let mut a = rec(1_000, 1, 0, FailureType::Disk);
        let mut b = rec(2_000, 2, 1, FailureType::Disk);
        // Same RAID group spanning two shelves.
        a.raid_group = RaidGroupId(7);
        b.raid_group = RaidGroupId(7);
        let records = vec![a, b];
        let by_shelf = TbfAnalysis::compute(Scope::Shelf, &records);
        assert!(by_shelf.overall().is_empty());
        let by_rg = TbfAnalysis::compute(Scope::RaidGroup, &records);
        assert_eq!(by_rg.overall().gaps_secs, vec![1_000.0]);
    }

    #[test]
    fn fraction_within_threshold() {
        let records = vec![
            rec(0, 1, 0, FailureType::Disk),
            rec(5_000, 2, 0, FailureType::Disk),
            rec(1_000_000, 3, 0, FailureType::Disk),
        ];
        let tbf = TbfAnalysis::compute(Scope::Shelf, &records);
        let g = tbf.overall();
        assert_eq!(g.len(), 2);
        assert!((g.fraction_within(BURST_THRESHOLD_SECS) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fit_candidates_on_synthetic_gamma_gaps() {
        use rand::SeedableRng;
        use ssfa_stats::dist::{ContinuousDist, Gamma};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let g = Gamma::new(2.0, 50_000.0).unwrap();
        let gaps: Vec<f64> = (0..2_000).map(|_| g.sample(&mut rng)).collect();
        let analysis = GapAnalysis::from_gaps(gaps);
        let fits = analysis.fit_candidates(15);
        assert_eq!(fits.len(), 3);
        // Gamma should not be rejected; exponential should be.
        let result = |name: &str| {
            fits.iter()
                .find(|(m, _)| m.dist.name() == name)
                .map(|(_, r)| *r)
                .unwrap()
        };
        assert!(!result("Gamma").rejects_at(0.05));
        assert!(result("Exponential").rejects_at(0.05));
    }

    #[test]
    fn empty_records_produce_empty_analysis() {
        let tbf = TbfAnalysis::compute(Scope::Shelf, &[]);
        assert!(tbf.overall().is_empty());
        assert_eq!(tbf.overall().fraction_within(1e4), 0.0);
        assert!(tbf.overall().fit_candidates(10).is_empty());
    }
}
