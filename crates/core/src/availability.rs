//! Availability estimation from failure rates — the study's motivating SLA
//! arithmetic.
//!
//! The paper's introduction frames the point of failure-rate estimation:
//! "accurate estimation of storage failure rate can help system designers
//! decide how many resources should be used to tolerate failures and to
//! meet certain service-level agreement (SLA) metrics (e.g., data
//! availability)". This module turns an [`AfrBreakdown`] into expected
//! downtime, given per-failure-type repair times — making the Figure 4/7
//! differences legible as "minutes per year" instead of percentages.

use ssfa_model::FailureType;

use crate::afr::AfrBreakdown;

/// Mean repair/restore time per failure type, in hours.
///
/// These are *service-restoration* times for the affected disk's data path
/// (not full rebuild times): replacing a disk takes days, re-seating a
/// cable or failing over takes less.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairTimes {
    /// Hours to restore service after a disk failure (replace + rebuild).
    pub disk_hours: f64,
    /// Hours to restore a failed physical interconnect.
    pub interconnect_hours: f64,
    /// Hours to resolve a protocol failure (driver/firmware action).
    pub protocol_hours: f64,
    /// Hours to resolve a performance failure.
    pub performance_hours: f64,
}

impl RepairTimes {
    /// Field-plausible defaults: 12 h disk service restoration, 4 h
    /// interconnect, 8 h protocol (scheduling a driver update), 2 h
    /// performance.
    pub fn typical() -> Self {
        RepairTimes {
            disk_hours: 12.0,
            interconnect_hours: 4.0,
            protocol_hours: 8.0,
            performance_hours: 2.0,
        }
    }

    /// Repair time for one failure type.
    pub fn for_type(&self, ty: FailureType) -> f64 {
        match ty {
            FailureType::Disk => self.disk_hours,
            FailureType::PhysicalInterconnect => self.interconnect_hours,
            FailureType::Protocol => self.protocol_hours,
            FailureType::Performance => self.performance_hours,
        }
    }
}

/// Availability estimate for a population of disks' data paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityEstimate {
    /// Expected path-downtime hours per disk-year.
    pub downtime_hours_per_disk_year: f64,
    /// The availability fraction (1 − downtime/period) of one disk's path.
    pub availability: f64,
}

impl AvailabilityEstimate {
    /// The "number of nines": `−log10(1 − availability)`.
    pub fn nines(&self) -> f64 {
        -(1.0 - self.availability).log10()
    }
}

/// Estimates the data-path availability implied by a failure-rate
/// breakdown and repair times.
///
/// Downtime per disk-year is `Σ_type AFR_type × MTTR_type`; availability is
/// the fraction of a year the path is up. (A small-rates approximation —
/// exact for the rates in this study, where downtime is hours per year.)
pub fn estimate_availability(
    breakdown: &AfrBreakdown,
    repairs: &RepairTimes,
) -> AvailabilityEstimate {
    const HOURS_PER_YEAR: f64 = 8_766.0;
    let downtime: f64 = FailureType::ALL
        .iter()
        .map(|&ty| breakdown.afr(ty) * repairs.for_type(ty))
        .sum();
    AvailabilityEstimate {
        downtime_hours_per_disk_year: downtime,
        availability: 1.0 - downtime / HOURS_PER_YEAR,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssfa_model::FailureCounts;

    fn breakdown(disk: u64, ic: u64, proto: u64, perf: u64, years: f64) -> AfrBreakdown {
        let mut c = FailureCounts::new();
        c.add(FailureType::Disk, disk);
        c.add(FailureType::PhysicalInterconnect, ic);
        c.add(FailureType::Protocol, proto);
        c.add(FailureType::Performance, perf);
        AfrBreakdown::new(c, years)
    }

    #[test]
    fn downtime_is_rate_weighted_repair_time() {
        // 1%/yr disk AFR only, 12 h repairs: 0.12 h downtime per disk-year.
        let b = breakdown(100, 0, 0, 0, 10_000.0);
        let est = estimate_availability(&b, &RepairTimes::typical());
        assert!((est.downtime_hours_per_disk_year - 0.12).abs() < 1e-12);
        assert!(est.availability > 0.9999);
        assert!(est.nines() > 4.0);
    }

    #[test]
    fn interconnect_failures_dominate_low_end_downtime() {
        // A low-end-like profile: disk 0.9%, interconnect 3%, protocol
        // 0.4%, performance 0.3%.
        let b = breakdown(90, 300, 40, 30, 10_000.0);
        let r = RepairTimes::typical();
        let est = estimate_availability(&b, &r);
        let disk_part = b.afr(FailureType::Disk) * r.disk_hours;
        let ic_part = b.afr(FailureType::PhysicalInterconnect) * r.interconnect_hours;
        assert!(ic_part > disk_part, "interconnect downtime should dominate");
        assert!(est.downtime_hours_per_disk_year > ic_part);
    }

    #[test]
    fn zero_failures_give_perfect_availability() {
        let b = breakdown(0, 0, 0, 0, 1_000.0);
        let est = estimate_availability(&b, &RepairTimes::typical());
        assert_eq!(est.downtime_hours_per_disk_year, 0.0);
        assert_eq!(est.availability, 1.0);
    }

    #[test]
    fn dual_path_availability_gain_shows_in_nines() {
        // Figure 7-like: single path 2.4% interconnect vs dual 1.1%.
        let single = breakdown(90, 240, 30, 5, 10_000.0);
        let dual = breakdown(90, 110, 30, 5, 10_000.0);
        let r = RepairTimes::typical();
        let a_single = estimate_availability(&single, &r);
        let a_dual = estimate_availability(&dual, &r);
        assert!(a_dual.availability > a_single.availability);
        assert!(a_dual.downtime_hours_per_disk_year < a_single.downtime_hours_per_disk_year);
        assert!(a_dual.nines() > a_single.nines());
    }
}
