//! Storage subsystem failure analysis — the FAST'08 study's methodology as
//! a reusable library.
//!
//! Given an [`AnalysisInput`] (classified failure records, disk lifetimes,
//! and topology — all recovered from support logs by `ssfa-logs`), this
//! crate computes every result the paper reports:
//!
//! - [`afr`]: annualized failure rates with per-failure-type breakdowns and
//!   Poisson confidence intervals, grouped by any key (system class, disk
//!   model, shelf model, path configuration) — Figures 4–7 and Table 1.
//! - [`tbf`]: time-between-failures within shelves and RAID groups, with
//!   empirical CDFs, burstiness statistics, and maximum-likelihood fits of
//!   the exponential/Weibull/Gamma candidates — Figure 9.
//! - [`correlation`]: the P(N) independence analysis comparing empirical
//!   against theoretical multi-failure probabilities — Figure 10.
//! - [`findings`]: typed evaluation of the paper's Findings 1–11.
//! - [`study`]: the [`Study`] orchestrator producing each table/figure.
//! - [`report`]: plain-text table rendering for experiment output.
//!
//! # Example
//!
//! ```
//! use ssfa_core::Study;
//! use ssfa_logs::{classify::classify, render::render_support_log, CascadeStyle};
//! use ssfa_model::{Fleet, FleetConfig, SystemClass};
//! use ssfa_sim::Simulator;
//!
//! let fleet = Fleet::build(&FleetConfig::paper().scaled(0.001), 7);
//! let output = Simulator::default().run(&fleet, 7);
//! let book = render_support_log(&fleet, &output, CascadeStyle::RaidOnly);
//! let study = Study::new(classify(&book)?);
//!
//! let fig4 = study.afr_by_class(/*include_problematic=*/ false);
//! let low_end = &fig4[&SystemClass::LowEnd];
//! println!("low-end subsystem AFR: {:.2}%", low_end.total_afr() * 100.0);
//! # Ok::<(), ssfa_logs::LogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod afr;
pub mod availability;
pub mod correlation;
pub mod findings;
pub mod mttdl;
pub mod predict;
pub mod raid_risk;
pub mod report;
pub mod snapshot;
pub mod study;
pub mod tbf;

pub use afr::AfrBreakdown;
pub use availability::{estimate_availability, AvailabilityEstimate, RepairTimes};
pub use correlation::{CorrelationResult, Scope};
pub use findings::{Finding, FindingsReport};
pub use mttdl::MttdlParams;
pub use predict::{evaluate_predictor, Alarm, PrecursorPredictor, PredictionEval};
pub use raid_risk::{raid_data_loss_risk, RaidRiskResult, RiskFailureSet};
pub use snapshot::{SnapshotError, SNAPSHOT_VERSION};
pub use study::{Study, StudyFold};
pub use tbf::{GapAnalysis, TbfAnalysis};

pub use ssfa_logs::AnalysisInput;
