//! Annualized failure rates with per-type breakdowns.
//!
//! The paper's AFR is events per disk-year: each failure event is tagged
//! with an affected disk, and exposure is the summed service time of every
//! disk instance (Table 1 note: "we account for that ... by calculating the
//! life time of each individual disk"). A stacked-bar panel of the paper
//! (Figures 4–7) is an [`AfrBreakdown`] here.

use ssfa_model::{FailureCounts, FailureType};
use ssfa_stats::hypothesis::{poisson_rate_ci, ConfidenceInterval};

/// Failure counts over an exposure, yielding per-type and total AFRs.
#[derive(Debug, Clone, PartialEq)]
pub struct AfrBreakdown {
    counts: FailureCounts,
    disk_years: f64,
}

impl AfrBreakdown {
    /// Creates a breakdown from counts and exposure.
    ///
    /// # Panics
    ///
    /// Panics if `disk_years` is negative or not finite (zero is allowed —
    /// rates are then reported as zero).
    pub fn new(counts: FailureCounts, disk_years: f64) -> Self {
        assert!(
            disk_years.is_finite() && disk_years >= 0.0,
            "exposure must be non-negative, got {disk_years}"
        );
        AfrBreakdown { counts, disk_years }
    }

    /// An empty breakdown (no events, no exposure).
    pub fn empty() -> Self {
        AfrBreakdown {
            counts: FailureCounts::new(),
            disk_years: 0.0,
        }
    }

    /// Records one failure of the given type.
    pub fn record(&mut self, ty: FailureType) {
        self.counts.record(ty);
    }

    /// Adds exposure (disk-years).
    pub fn add_exposure(&mut self, disk_years: f64) {
        debug_assert!(disk_years >= 0.0);
        self.disk_years += disk_years;
    }

    /// The event counts.
    pub fn counts(&self) -> &FailureCounts {
        &self.counts
    }

    /// Total exposure in disk-years.
    pub fn disk_years(&self) -> f64 {
        self.disk_years
    }

    /// AFR of one failure type (fraction per disk-year).
    pub fn afr(&self, ty: FailureType) -> f64 {
        if self.disk_years == 0.0 {
            0.0
        } else {
            self.counts.get(ty) as f64 / self.disk_years
        }
    }

    /// Total storage-subsystem AFR (all four types).
    pub fn total_afr(&self) -> f64 {
        if self.disk_years == 0.0 {
            0.0
        } else {
            self.counts.total() as f64 / self.disk_years
        }
    }

    /// Share of one type within the total (`None` when no events at all).
    pub fn share(&self, ty: FailureType) -> Option<f64> {
        let total = self.counts.total();
        if total == 0 {
            None
        } else {
            Some(self.counts.get(ty) as f64 / total as f64)
        }
    }

    /// Confidence interval on one type's AFR (Poisson rate).
    ///
    /// # Errors
    ///
    /// Propagates [`ssfa_stats::StatsError`] for zero exposure or a bad
    /// confidence level.
    pub fn afr_ci(
        &self,
        ty: FailureType,
        confidence: f64,
    ) -> ssfa_stats::Result<ConfidenceInterval> {
        poisson_rate_ci(self.counts.get(ty), self.disk_years, confidence)
    }

    /// Merges another breakdown into this one (summing counts and
    /// exposure).
    pub fn merge(&mut self, other: &AfrBreakdown) {
        self.counts.merge(&other.counts);
        self.disk_years += other.disk_years;
    }
}

impl Default for AfrBreakdown {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AfrBreakdown {
        let mut counts = FailureCounts::new();
        counts.add(FailureType::Disk, 90);
        counts.add(FailureType::PhysicalInterconnect, 260);
        counts.add(FailureType::Protocol, 42);
        counts.add(FailureType::Performance, 31);
        AfrBreakdown::new(counts, 10_000.0)
    }

    #[test]
    fn rates_divide_counts_by_exposure() {
        let b = sample();
        assert!((b.afr(FailureType::Disk) - 0.009).abs() < 1e-12);
        assert!((b.afr(FailureType::PhysicalInterconnect) - 0.026).abs() < 1e-12);
        assert!((b.total_afr() - 0.0423).abs() < 1e-12);
    }

    #[test]
    fn shares_sum_to_one() {
        let b = sample();
        let total: f64 = FailureType::ALL.iter().map(|&t| b.share(t).unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(b.share(FailureType::PhysicalInterconnect).unwrap() > 0.6);
    }

    #[test]
    fn empty_breakdown_reports_zero() {
        let b = AfrBreakdown::empty();
        assert_eq!(b.total_afr(), 0.0);
        assert_eq!(b.afr(FailureType::Disk), 0.0);
        assert_eq!(b.share(FailureType::Disk), None);
    }

    #[test]
    fn incremental_accumulation_matches_batch() {
        let mut b = AfrBreakdown::empty();
        b.add_exposure(10_000.0);
        for _ in 0..90 {
            b.record(FailureType::Disk);
        }
        for _ in 0..260 {
            b.record(FailureType::PhysicalInterconnect);
        }
        for _ in 0..42 {
            b.record(FailureType::Protocol);
        }
        for _ in 0..31 {
            b.record(FailureType::Performance);
        }
        assert_eq!(&b, &sample());
    }

    #[test]
    fn merge_sums_counts_and_exposure() {
        let mut a = sample();
        a.merge(&sample());
        assert!((a.disk_years() - 20_000.0).abs() < 1e-9);
        assert_eq!(a.counts().total(), 2 * sample().counts().total());
        // Rates unchanged after merging identical breakdowns.
        assert!((a.total_afr() - sample().total_afr()).abs() < 1e-12);
    }

    #[test]
    fn confidence_interval_brackets_the_rate() {
        let b = sample();
        let ci = b.afr_ci(FailureType::PhysicalInterconnect, 0.995).unwrap();
        assert!(ci.lower < 0.026 && 0.026 < ci.upper);
        assert!(ci.half_width() < 0.01);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_exposure_panics() {
        let _ = AfrBreakdown::new(FailureCounts::new(), -1.0);
    }
}
