//! Textbook MTTDL math — the independence-based baseline the study argues
//! against.
//!
//! The original RAID paper (Patterson, Gibson, Katz — the study's
//! reference \[13\]) models disks as independent exponential failures and
//! derives the mean time to data loss of a group from disk MTTF, group
//! size, and repair time. The study shows the independence assumption is
//! wrong in the field; this module implements the classic formulas so the
//! measured incident rates of [`crate::raid_risk`] can be compared against
//! exactly the math a designer would otherwise use.

use ssfa_model::{RaidType, SimDuration};

/// Inputs to the classic MTTDL model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MttdlParams {
    /// Mean time to failure of one disk, in hours (1 / AFR, annualized:
    /// an AFR of 1%/yr ≈ 876,000 h MTTF).
    pub disk_mttf_hours: f64,
    /// Mean time to repair/rebuild a failed member, in hours.
    pub mttr_hours: f64,
    /// Number of disks in the group (data + parity).
    pub group_size: u32,
}

impl MttdlParams {
    /// Builds params from an annualized failure rate (fraction per
    /// disk-year) instead of an MTTF.
    ///
    /// # Panics
    ///
    /// Panics unless `afr` is positive and finite.
    pub fn from_afr(afr: f64, mttr: SimDuration, group_size: u32) -> MttdlParams {
        assert!(
            afr.is_finite() && afr > 0.0,
            "AFR must be positive, got {afr}"
        );
        MttdlParams {
            disk_mttf_hours: 8_766.0 / afr, // hours per year / AFR
            mttr_hours: mttr.as_hours(),
            group_size,
        }
    }

    /// Mean time to data loss, in hours, under independent exponential
    /// failures (the standard Markov-chain result; for RAID6 the
    /// three-state extension).
    ///
    /// * RAID4/5 (tolerates 1): `MTTDL = MTTF² / (N(N−1)·MTTR)`
    /// * RAID6 (tolerates 2): `MTTDL = MTTF³ / (N(N−1)(N−2)·MTTR²)`
    ///
    /// # Panics
    ///
    /// Panics if the group is too small to hold the level's parity.
    pub fn mttdl_hours(&self, raid_type: RaidType) -> f64 {
        let n = self.group_size as f64;
        let mttf = self.disk_mttf_hours;
        let mttr = self.mttr_hours;
        match raid_type {
            RaidType::Raid4 => {
                assert!(self.group_size >= 2, "RAID4 needs at least 2 disks");
                mttf * mttf / (n * (n - 1.0) * mttr)
            }
            RaidType::Raid6 => {
                assert!(self.group_size >= 3, "RAID6 needs at least 3 disks");
                mttf * mttf * mttf / (n * (n - 1.0) * (n - 2.0) * mttr * mttr)
            }
        }
    }

    /// Expected data-loss events per group-year under the model
    /// (`8766 / MTTDL`).
    pub fn loss_rate_per_group_year(&self, raid_type: RaidType) -> f64 {
        8_766.0 / self.mttdl_hours(raid_type)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raid4_formula_matches_hand_computation() {
        // MTTF 1e6 h, MTTR 24 h, N = 8:
        // MTTDL = 1e12 / (8·7·24) = 7.4405e8 h.
        let p = MttdlParams {
            disk_mttf_hours: 1e6,
            mttr_hours: 24.0,
            group_size: 8,
        };
        let mttdl = p.mttdl_hours(RaidType::Raid4);
        assert!((mttdl - 1e12 / (8.0 * 7.0 * 24.0)).abs() / mttdl < 1e-12);
        // ~85,000 years: the "you will never lose data" number vendors quote.
        assert!(mttdl / 8_766.0 > 80_000.0);
    }

    #[test]
    fn raid6_is_dramatically_safer_under_independence() {
        let p = MttdlParams {
            disk_mttf_hours: 1e6,
            mttr_hours: 24.0,
            group_size: 8,
        };
        let r4 = p.mttdl_hours(RaidType::Raid4);
        let r6 = p.mttdl_hours(RaidType::Raid6);
        // Extra factor ≈ MTTF / ((N−2)·MTTR) ≈ 1e6 / 144 ≈ 7000x.
        assert!(r6 / r4 > 1_000.0);
    }

    #[test]
    fn from_afr_inverts_annualization() {
        let p = MttdlParams::from_afr(0.01, SimDuration::from_hours(24.0), 7);
        assert!((p.disk_mttf_hours - 876_600.0).abs() < 1.0);
        assert_eq!(p.group_size, 7);
        // Rate and MTTDL are consistent inverses.
        let rate = p.loss_rate_per_group_year(RaidType::Raid4);
        assert!((rate * p.mttdl_hours(RaidType::Raid4) - 8_766.0).abs() < 1e-6);
    }

    #[test]
    fn longer_rebuilds_linearly_hurt_raid4_quadratically_hurt_raid6() {
        let fast = MttdlParams {
            disk_mttf_hours: 1e6,
            mttr_hours: 12.0,
            group_size: 10,
        };
        let slow = MttdlParams {
            disk_mttf_hours: 1e6,
            mttr_hours: 48.0,
            group_size: 10,
        };
        let r4_ratio = fast.mttdl_hours(RaidType::Raid4) / slow.mttdl_hours(RaidType::Raid4);
        let r6_ratio = fast.mttdl_hours(RaidType::Raid6) / slow.mttdl_hours(RaidType::Raid6);
        assert!((r4_ratio - 4.0).abs() < 1e-9);
        assert!((r6_ratio - 16.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "RAID6 needs")]
    fn tiny_groups_rejected() {
        let p = MttdlParams {
            disk_mttf_hours: 1e6,
            mttr_hours: 24.0,
            group_size: 2,
        };
        let _ = p.mttdl_hours(RaidType::Raid6);
    }

    #[test]
    #[should_panic(expected = "AFR must be positive")]
    fn from_afr_rejects_zero() {
        let _ = MttdlParams::from_afr(0.0, SimDuration::from_hours(24.0), 7);
    }
}
