//! Plain-text table rendering for experiment output.
//!
//! The benchmark harness prints each table/figure in the same row/series
//! structure the paper uses; this module provides the column-aligned text
//! tables those reports are built from.

use std::fmt;

/// A column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Rows shorter than the header are padded with empty
    /// cells; longer rows extend the table width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as RFC-4180-style CSV (quoting cells containing
    /// commas, quotes, or newlines), for downstream plotting tools.
    pub fn to_csv(&self) -> String {
        fn cell(out: &mut String, text: &str) {
            if text.contains([',', '"', '\n']) {
                out.push('"');
                out.push_str(&text.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(text);
            }
        }
        let mut out = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            cell(&mut out, h);
        }
        out.push('\n');
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                cell(&mut out, c);
            }
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (i, width) in widths.iter().enumerate() {
                if !first {
                    write!(f, "  ")?;
                }
                first = false;
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                write!(f, "{cell:<width$}")?;
            }
            writeln!(f)
        };
        render_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with two decimals, e.g. `4.60%`.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a fraction as a percentage with an absolute ± half-width,
/// e.g. `1.82% ± 0.04%` — the paper's error-bar notation.
pub fn pct_ci(estimate: f64, half_width: f64) -> String {
    format!("{:.2}% ± {:.2}%", estimate * 100.0, half_width * 100.0)
}

/// Formats a count with thousands separators, e.g. `1,800,000`.
pub fn count(n: u64) -> String {
    let digits: Vec<char> = n.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*c);
    }
    out.chars().rev().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(["Class", "AFR"]);
        t.row(["Near-line", "3.40%"]);
        t.row(["Low-end", "4.60%"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Class"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns line up: "AFR" column starts at the same offset in all rows.
        let col = lines[0].find("AFR").unwrap();
        assert_eq!(&lines[2][col..col + 5], "3.40%");
        assert_eq!(&lines[3][col..col + 5], "4.60%");
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = TextTable::new(["A", "B", "C"]);
        t.row(["1"]);
        t.row(["1", "2", "3", "4"]);
        let text = t.to_string();
        assert_eq!(text.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_round_trips_structure_and_escapes() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["plain", "1"]);
        t.row(["with,comma", "2"]);
        t.row(["with\"quote", "3"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",2");
        assert_eq!(lines[3], "\"with\"\"quote\",3");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.046), "4.60%");
        assert_eq!(pct_ci(0.0182, 0.0004), "1.82% ± 0.04%");
    }

    #[test]
    fn count_inserts_separators() {
        assert_eq!(count(0), "0");
        assert_eq!(count(999), "999");
        assert_eq!(count(1_000), "1,000");
        assert_eq!(count(1_800_000), "1,800,000");
        assert_eq!(count(12_345_678), "12,345,678");
    }
}
