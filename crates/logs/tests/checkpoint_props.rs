//! Property suite for the checkpoint store (`ssfa_logs::checkpoint`),
//! mirroring the shard-frame suite (`frame_props.rs`): checkpoint
//! epochs ride the same `SSFC` codec as corpus shards, so they inherit
//! the same fault model and must inherit the same guarantees —
//!
//! 1. **any** single flipped byte in an epoch frame file — header or
//!    snapshot payload, any position, any nonzero XOR mask — is rejected
//!    on read, never absorbed into a resumed fold;
//! 2. truncating an epoch file anywhere is rejected as a typed codec
//!    failure, never a short parse;
//!
//! plus pinned `Display` strings for the negative paths a resuming
//! operator actually sees: a checkpoint-format version mismatch, a
//! checkpoint folded from a different corpus, and a manifest entry
//! disagreeing with its epoch frame.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use ssfa_logs::checkpoint::{
    CheckpointError, CheckpointReader, CheckpointWriter, CHECKPOINT_NAME, CHECKPOINT_VERSION_LINE,
};
use ssfa_logs::{CascadeStyle, Manifest};

/// A self-deleting scratch directory under the system temp dir.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("ssfa-ckpt-props-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One-epoch checkpoint store over an arbitrary snapshot payload.
fn one_epoch_store(dir: &Path, payload: &[u8]) -> CheckpointReader {
    let mut writer =
        CheckpointWriter::create(dir, 1, 42, CascadeStyle::RaidOnly).expect("store creates");
    writer
        .write_epoch(0..3, 1, 0xfeed_f00d, payload)
        .expect("epoch writes");
    CheckpointReader::open(dir).expect("store reopens")
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=255, 1..300)
}

proptest! {
    // Each case touches the filesystem; a smaller case count keeps the
    // suite fast while still sweeping positions and masks.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn epoch_frames_reject_any_single_flipped_byte(
        payload in arb_payload(),
        position in 0usize..4096,
        mask in 1u8..=255,
    ) {
        let tmp = TempDir::new("bitflip");
        let reader = one_epoch_store(&tmp.0, &payload);
        let path = reader.epoch_path(0);
        let mut bytes = std::fs::read(&path).expect("epoch file reads");
        let position = position % bytes.len();
        bytes[position] ^= mask;
        std::fs::write(&path, &bytes).expect("tampered epoch writes");

        prop_assert!(
            reader.read_epoch(0).is_err(),
            "flip at byte {} (mask {:#04x}) of a {}-byte epoch frame was absorbed",
            position, mask, bytes.len(),
        );
    }

    #[test]
    fn epoch_truncation_is_rejected(
        payload in arb_payload(),
        keep_frac in 0.0f64..1.0,
    ) {
        let tmp = TempDir::new("truncate");
        let reader = one_epoch_store(&tmp.0, &payload);
        let path = reader.epoch_path(0);
        let bytes = std::fs::read(&path).expect("epoch file reads");
        let keep = ((bytes.len() as f64) * keep_frac) as usize;
        prop_assert!(keep < bytes.len());
        std::fs::write(&path, &bytes[..keep]).expect("truncated epoch writes");

        let err = reader.read_epoch(0).expect_err("truncated epoch must be refused");
        prop_assert!(
            matches!(err, CheckpointError::Frame { epoch: 0, .. }),
            "truncation to {keep} bytes must surface as a typed codec failure, got {err:?}",
        );
    }
}

/// An unknown checkpoint-format version is refused at open with the
/// exact message an operator sees after a format bump.
#[test]
fn format_version_mismatch_display_is_pinned() {
    let tmp = TempDir::new("version");
    one_epoch_store(&tmp.0, b"snapshot");
    let path = tmp.0.join(CHECKPOINT_NAME);
    let text = std::fs::read_to_string(&path).expect("manifest reads");
    let bumped = text.replace(CHECKPOINT_VERSION_LINE, "ssfa-checkpoint v2");
    assert_ne!(text, bumped, "header replacement must take effect");
    std::fs::write(&path, bumped).expect("manifest rewrites");

    let err = CheckpointReader::open(&tmp.0).expect_err("future format must be refused");
    assert_eq!(
        err.to_string(),
        "checkpoint manifest line 1: expected header `ssfa-checkpoint v1`, \
         found `ssfa-checkpoint v2`"
    );
}

/// A checkpoint keyed to one corpus refuses to resume against another,
/// naming the first disagreeing identity field.
#[test]
fn corpus_disagreement_display_is_pinned() {
    let tmp = TempDir::new("corpus-id");
    let reader = one_epoch_store(&tmp.0, b"snapshot");
    let corpus = Manifest {
        seed: 43,
        style: CascadeStyle::RaidOnly,
        segment_shards: 64,
        params: Vec::new(),
        shards: Vec::new(),
        segments: 0,
        total_payload_bytes: 0,
    };
    let err = reader
        .manifest()
        .validate_against(&corpus)
        .expect_err("foreign corpus must be refused");
    assert_eq!(
        err.to_string(),
        "checkpoint/corpus disagreement on seed: checkpoint has 42, corpus has 43"
    );
}

/// Tampering with a manifest epoch entry (here: its digest field) is
/// caught by the frame cross-check, with both digests named.
#[test]
fn manifest_epoch_disagreement_display_is_pinned() {
    let tmp = TempDir::new("entry-tamper");
    let reader = one_epoch_store(&tmp.0, b"snapshot");
    let recorded = reader.manifest().epochs[0].checksum;
    let tampered = recorded ^ 1;

    let path = tmp.0.join(CHECKPOINT_NAME);
    let text = std::fs::read_to_string(&path).expect("manifest reads");
    let edited = text.replace(&format!("{recorded:016x}"), &format!("{tampered:016x}"));
    assert_ne!(text, edited, "digest replacement must take effect");
    std::fs::write(&path, edited).expect("manifest rewrites");

    let reader = CheckpointReader::open(&tmp.0).expect("layout still parses");
    let err = reader
        .read_epoch(0)
        .expect_err("manifest/epoch disagreement must be refused");
    assert_eq!(
        err.to_string(),
        format!(
            "checkpoint epoch 0: manifest digest {tampered:016x} disagrees with \
             frame digest {recorded:016x}"
        )
    );
}
