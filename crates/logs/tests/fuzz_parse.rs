//! Robustness fuzzing for the log parser: arbitrary and corrupted input
//! must never panic, and valid lines must survive mutation detection.

use proptest::prelude::*;

use ssfa_logs::{LogBook, LogLine};

proptest! {
    /// Absolutely any string must parse to `Some`/`None` without panicking.
    #[test]
    fn parse_never_panics_on_arbitrary_input(line in ".{0,200}") {
        let _ = LogLine::parse(&line);
    }

    /// Arbitrary byte soup formatted as "almost a log line" must not panic.
    #[test]
    fn parse_never_panics_on_near_miss_lines(
        host in 0u32..100,
        ts_garbage in "[A-Za-z0-9 :]{0,40}",
        tag in "[a-z.]{0,40}",
        sev in "[a-z]{0,10}",
        payload in ".{0,120}",
    ) {
        let line = format!("sys-{host} {ts_garbage} [{tag}:{sev}]: {payload}");
        let _ = LogLine::parse(&line);
    }

    /// Deleting any single character from a valid rendered line either
    /// fails to parse or parses to a (different but valid) line — never
    /// panics, never misattributes the original.
    #[test]
    fn single_character_deletion_is_detected_or_harmless(
        serial_raw in 0u64..1_000_000,
        t in 0u64..100_000_000,
        idx in 0usize..60,
    ) {
        use ssfa_logs::LogEvent;
        use ssfa_model::{DeviceAddr, DiskInstanceId, SimTime, SystemId};
        let original = LogLine::new(
            SystemId(7),
            SimTime::from_secs(t),
            LogEvent::RaidDiskFailed {
                device: DeviceAddr::new(8, 24),
                serial: DiskInstanceId(serial_raw).serial(),
            },
        );
        let text = original.to_string();
        if idx < text.len() && text.is_char_boundary(idx) && text.is_char_boundary(idx + 1) {
            let mut mutated = String::with_capacity(text.len());
            mutated.push_str(&text[..idx]);
            mutated.push_str(&text[idx + 1..]);
            // Must not panic; if it parses, it must be a structurally valid
            // line (we don't require inequality: deleting e.g. a space can
            // be cosmetic).
            let _ = LogLine::parse(&mutated);
        }
    }

    /// A corpus containing one corrupted line reports that line's number.
    #[test]
    fn corpus_reports_first_bad_line(good_before in 0usize..5, garbage in "[a-z ]{1,30}") {
        use ssfa_logs::LogEvent;
        use ssfa_model::{SimTime, SystemId};
        let good = LogLine::new(
            SystemId(1),
            SimTime::from_secs(3_600),
            LogEvent::FciAdapterReset { adapter: 3 },
        )
        .to_string();
        let mut text = String::new();
        for _ in 0..good_before {
            text.push_str(&good);
            text.push('\n');
        }
        text.push_str(&garbage);
        text.push('\n');
        match LogBook::from_text(&text) {
            Err(ssfa_logs::LogError::Malformed { line_no, .. }) => {
                prop_assert_eq!(line_no, good_before + 1);
            }
            Ok(book) => {
                // The garbage accidentally parsed (extremely unlikely but
                // legal); corpus length then includes it.
                prop_assert!(book.len() >= good_before);
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected: {other}"))),
        }
    }
}
