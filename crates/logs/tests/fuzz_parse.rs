//! Robustness fuzzing for the log parser: arbitrary and corrupted input
//! must never panic, valid lines must survive mutation detection, and the
//! streaming classifier must be insensitive to how shard bytes are
//! chunked (split lines, empty shards, missing trailing newlines).

use proptest::prelude::*;

use ssfa_logs::{
    classify, Classifier, FaultInjector, FaultLedger, FaultSpec, LogBook, LogLine, ShardFate,
};

/// A tiny but complete rendered corpus for shard-boundary fuzzing:
/// topology, a disk install/remove cycle, and RAID failure events.
fn sample_corpus_text(seed: u64) -> String {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<u64, String>>> = OnceLock::new();
    let cache = CACHE.get_or_init(Mutex::default);
    if let Some(text) = cache.lock().unwrap().get(&seed) {
        return text.clone();
    }
    use ssfa_model::{Fleet, FleetConfig};
    use ssfa_sim::Simulator;
    let fleet = Fleet::build(&FleetConfig::paper().scaled(0.0005), seed);
    let output = Simulator::default().run(&fleet, seed);
    let text =
        ssfa_logs::render_support_log(&fleet, &output, ssfa_logs::CascadeStyle::Full).to_text();
    cache.lock().unwrap().insert(seed, text.clone());
    text
}

proptest! {
    /// Absolutely any string must parse to `Some`/`None` without panicking.
    #[test]
    fn parse_never_panics_on_arbitrary_input(line in ".{0,200}") {
        let _ = LogLine::parse(&line);
    }

    /// Arbitrary byte soup formatted as "almost a log line" must not panic.
    #[test]
    fn parse_never_panics_on_near_miss_lines(
        host in 0u32..100,
        ts_garbage in "[A-Za-z0-9 :]{0,40}",
        tag in "[a-z.]{0,40}",
        sev in "[a-z]{0,10}",
        payload in ".{0,120}",
    ) {
        let line = format!("sys-{host} {ts_garbage} [{tag}:{sev}]: {payload}");
        let _ = LogLine::parse(&line);
    }

    /// Deleting any single character from a valid rendered line either
    /// fails to parse or parses to a (different but valid) line — never
    /// panics, never misattributes the original.
    #[test]
    fn single_character_deletion_is_detected_or_harmless(
        serial_raw in 0u64..1_000_000,
        t in 0u64..100_000_000,
        idx in 0usize..60,
    ) {
        use ssfa_logs::LogEvent;
        use ssfa_model::{DeviceAddr, DiskInstanceId, SimTime, SystemId};
        let original = LogLine::new(
            SystemId(7),
            SimTime::from_secs(t),
            LogEvent::RaidDiskFailed {
                device: DeviceAddr::new(8, 24),
                serial: DiskInstanceId(serial_raw).serial(),
            },
        );
        let text = original.to_string();
        if idx < text.len() && text.is_char_boundary(idx) && text.is_char_boundary(idx + 1) {
            let mut mutated = String::with_capacity(text.len());
            mutated.push_str(&text[..idx]);
            mutated.push_str(&text[idx + 1..]);
            // Must not panic; if it parses, it must be a structurally valid
            // line (we don't require inequality: deleting e.g. a space can
            // be cosmetic).
            let _ = LogLine::parse(&mutated);
        }
    }

    /// A corpus containing one corrupted line reports that line's number.
    #[test]
    fn corpus_reports_first_bad_line(good_before in 0usize..5, garbage in "[a-z ]{1,30}") {
        use ssfa_logs::LogEvent;
        use ssfa_model::{SimTime, SystemId};
        let good = LogLine::new(
            SystemId(1),
            SimTime::from_secs(3_600),
            LogEvent::FciAdapterReset { adapter: 3 },
        )
        .to_string();
        let mut text = String::new();
        for _ in 0..good_before {
            text.push_str(&good);
            text.push('\n');
        }
        text.push_str(&garbage);
        text.push('\n');
        match LogBook::from_text(&text) {
            Err(ssfa_logs::LogError::Malformed { line_no, .. }) => {
                prop_assert_eq!(line_no, good_before + 1);
            }
            Ok(book) => {
                // The garbage accidentally parsed (extremely unlikely but
                // legal); corpus length then includes it.
                prop_assert!(book.len() >= good_before);
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected: {other}"))),
        }
    }

    /// Splitting the shard text at *any* byte position — including the
    /// middle of a line or of a multi-byte character — and feeding the two
    /// reads separately classifies identically to the joined corpus.
    #[test]
    fn line_split_across_two_shard_reads_is_lossless(
        seed in 0u64..4,
        split_millis in 0u64..=1_000,
    ) {
        let text = sample_corpus_text(seed);
        let split = (text.len() as u64 * split_millis / 1_000) as usize;
        let expected = classify(&LogBook::from_text(&text).unwrap()).unwrap();

        let mut streaming = Classifier::new();
        streaming.feed_bytes(&text.as_bytes()[..split]).unwrap();
        streaming.feed_bytes(&text.as_bytes()[split..]).unwrap();
        prop_assert_eq!(streaming.finish().unwrap(), expected);
    }

    /// Chunking the shard into many arbitrary-size reads is equally
    /// lossless — the general case of the two-read split.
    #[test]
    fn arbitrary_chunking_is_lossless(
        seed in 0u64..4,
        chunk in 1usize..4_096,
    ) {
        let text = sample_corpus_text(seed);
        let expected = classify(&LogBook::from_text(&text).unwrap()).unwrap();

        let mut streaming = Classifier::new();
        for piece in text.as_bytes().chunks(chunk) {
            streaming.feed_bytes(piece).unwrap();
        }
        prop_assert_eq!(streaming.finish().unwrap(), expected);
    }

    /// A shard whose final line has no trailing newline still classifies
    /// identically: `finish` flushes the buffered tail.
    #[test]
    fn missing_trailing_newline_is_harmless(seed in 0u64..4) {
        let text = sample_corpus_text(seed);
        let trimmed = text.strip_suffix('\n').expect("rendered corpora end in newline");
        let expected = classify(&LogBook::from_text(&text).unwrap()).unwrap();

        let mut streaming = Classifier::new();
        streaming.feed_bytes(trimmed.as_bytes()).unwrap();
        prop_assert_eq!(streaming.finish().unwrap(), expected);
    }

    /// Injector-corrupted corpora fed to a lenient classifier in
    /// arbitrary-size chunks (so corrupted multi-byte sequences split at
    /// any byte position) never panic, and every skip is counted: the
    /// classifier's health matches the injector's ledger exactly.
    #[test]
    fn lenient_classifier_counts_every_skip_under_injection(
        seed in 0u64..4,
        rate_millis in 1u64..=80,
        chunk in 1usize..2_048,
    ) {
        let text = sample_corpus_text(seed);
        let spec = FaultSpec::uniform(rate_millis as f64 / 1_000.0);
        let injector = FaultInjector::new(spec, seed);
        let mut ledger = FaultLedger::default();
        let corrupted = match injector.corrupt_shard(0, 0, &text, &mut ledger) {
            ShardFate::Processed(bytes) => bytes,
            // The whole shard was dropped — nothing reaches the classifier.
            ShardFate::Dropped => return Ok(()),
        };

        let mut streaming = Classifier::lenient();
        for piece in corrupted.chunks(chunk) {
            streaming.feed_bytes(piece).unwrap();
        }
        let (_, health) = streaming.finish_with_health().unwrap();
        prop_assert_eq!(health.lines_seen, ledger.lines_out);
        prop_assert_eq!(health.malformed_skipped, ledger.expect_malformed);
        prop_assert_eq!(health.missing_topology_skipped, ledger.expect_missing_topology);
    }

    /// A non-UTF-8 line containing multi-byte characters, spliced into a
    /// clean corpus and fed in chunks that can split any character (or the
    /// invalid byte itself) across reads: lenient mode never panics,
    /// counts exactly one skip, and recovers the clean corpus's analysis.
    #[test]
    fn corrupted_multibyte_split_is_skipped_and_counted(
        seed in 0u64..4,
        chunk in 1usize..512,
    ) {
        let text = sample_corpus_text(seed);
        let expected = classify(&LogBook::from_text(&text).unwrap()).unwrap();

        // Multi-byte UTF-8 (é, ö, 語) followed by a byte that is invalid
        // in any UTF-8 sequence — the line as a whole cannot decode.
        let first_line_end = text.find('\n').expect("corpus has lines") + 1;
        let mut spliced = text.as_bytes()[..first_line_end].to_vec();
        spliced.extend_from_slice("h\u{e9}llo w\u{f6}rld \u{8a9e}".as_bytes());
        spliced.push(0xFF);
        spliced.push(b'\n');
        spliced.extend_from_slice(&text.as_bytes()[first_line_end..]);

        let mut streaming = Classifier::lenient();
        for piece in spliced.chunks(chunk) {
            streaming.feed_bytes(piece).unwrap();
        }
        let (input, health) = streaming.finish_with_health().unwrap();
        prop_assert_eq!(health.malformed_skipped, 1);
        prop_assert_eq!(health.missing_topology_skipped, 0);
        prop_assert_eq!(input, expected);
    }

    /// Empty shards — empty byte chunks, readers with no content, blank
    /// lines between reads — never panic and contribute nothing.
    #[test]
    fn empty_shards_are_no_ops(blank_lines in 0usize..5) {
        let mut streaming = Classifier::new();
        streaming.feed_bytes(b"").unwrap();
        streaming.feed_reader(std::io::Cursor::new(Vec::new())).unwrap();
        for _ in 0..blank_lines {
            streaming.feed_bytes(b"\n").unwrap();
        }
        let input = streaming.finish().unwrap();
        prop_assert!(input.lifetimes.is_empty());
        prop_assert!(input.failures.is_empty());
        prop_assert!(input.topology.systems.is_empty());
    }
}
