//! Differential fuzzing of the zero-copy parser against the owned parser.
//!
//! [`LogLineRef::parse`] is the hot path: a byte-oriented parser with a
//! fixed-layout canonical fast path (`parse_canonical`, fused timestamp
//! decode, fused `cfg.disk.install` decode) that bails to a general
//! token path on any deviation. [`LogLine::parse`] is the original
//! `String`-allocating parser. The contract is *exact* accept/reject
//! equivalence: for every input — well-formed, near-miss, mutated,
//! truncated, or adversarial — both parsers must agree on `Some`/`None`,
//! and on accept the borrowed view's `to_owned()` must equal the owned
//! parse. Each generator below aims at a seam where the fast path could
//! plausibly diverge: signed/padded numerals, duplicate keys, extra
//! whitespace, multi-colon tags, brackets inside free-content timestamp
//! tokens, non-ASCII bytes, and single-character edits of valid lines.

use proptest::prelude::*;

use ssfa_logs::{LogLine, LogLineRef};
use ssfa_model::{CivilDateTime, SimTime};

fn assert_equivalent(line: &str) -> Result<(), TestCaseError> {
    let owned = LogLine::parse(line);
    let viewed = LogLineRef::parse(line).map(|v| v.to_owned());
    prop_assert_eq!(
        &viewed,
        &owned,
        "parser divergence on {:?}: ref={:?} owned={:?}",
        line,
        viewed,
        owned
    );
    Ok(())
}

/// One rendered line per event shape, covering every tag the interner
/// knows — the mutation generators below edit these.
fn rendered_lines() -> Vec<String> {
    use ssfa_logs::LogEvent;
    use ssfa_model::{
        DeviceAddr, DiskInstanceId, DiskModelId, LayoutPolicy, LoopId, PathConfig, RaidGroupId,
        RaidType, ShelfId, ShelfModel, SimTime, SlotAddr, SystemClass, SystemId,
    };
    let d = DeviceAddr::new(8, 24);
    let serial = DiskInstanceId(12_345).serial();
    let events = vec![
        LogEvent::FciDeviceTimeout { device: d },
        LogEvent::FciAdapterReset { adapter: 8 },
        LogEvent::ScsiCmdAborted { device: d },
        LogEvent::ScsiSelectionTimeout { device: d },
        LogEvent::ScsiNoMorePaths { device: d },
        LogEvent::ScsiPathFailover { device: d },
        LogEvent::ScsiProtocolViolation { device: d },
        LogEvent::ScsiSlowResponse {
            device: d,
            latency_ms: 30_000,
        },
        LogEvent::DiskMediumError {
            device: d,
            sector: 123_456_789,
        },
        LogEvent::RaidDiskFailed {
            device: d,
            serial: serial.clone(),
        },
        LogEvent::RaidDiskMissing {
            device: d,
            serial: serial.clone(),
        },
        LogEvent::CfgSystem {
            class: SystemClass::LowEnd,
            disk_model: DiskModelId::new('A', 1),
            shelf_model: ShelfModel::A,
            paths: PathConfig::DualPath,
            layout: LayoutPolicy::SpanShelves,
        },
        LogEvent::CfgShelf {
            shelf: ShelfId(3),
            model: ShelfModel::B,
            fc_loop: LoopId(1),
            adapter: 2,
            position: 1,
            bays: 14,
        },
        LogEvent::CfgRaidGroup {
            rg: RaidGroupId(5),
            raid_type: RaidType::Raid4,
            slots: vec![
                SlotAddr {
                    shelf: ShelfId(0),
                    bay: 1,
                },
                SlotAddr {
                    shelf: ShelfId(3),
                    bay: 13,
                },
            ],
        },
        LogEvent::CfgDiskInstall {
            serial,
            model: DiskModelId::new('B', 2),
            slot: SlotAddr {
                shelf: ShelfId(3),
                bay: 7,
            },
            device: d,
        },
    ];
    events
        .into_iter()
        .map(|event| LogLine::new(SystemId(17), SimTime::from_secs(79_876_543), event).to_string())
        .collect()
}

proptest! {
    /// Arbitrary unicode soup: both parsers agree (almost always on
    /// rejection).
    #[test]
    fn arbitrary_input_parses_identically(line in ".{0,200}") {
        assert_equivalent(&line)?;
    }

    /// Near-miss lines with the right skeleton but fuzzed fields — the
    /// canonical fast path must bail to the same verdict the owned
    /// parser reaches.
    #[test]
    fn near_miss_lines_parse_identically(
        host in "[0-9+ ]{0,12}",
        ts in "[A-Za-z0-9 :+\\[\\]]{0,40}",
        tag in "[a-z.:]{0,24}",
        sev in "[a-z:]{0,10}",
        payload in "[a-z0-9=. \\-]{0,80}",
    ) {
        assert_equivalent(&format!("sys-{host} {ts} [{tag}:{sev}]: {payload}"))?;
    }

    /// Every rendered event shape round-trips through BOTH parsers to the
    /// same accepted line (equivalence on the accept side, not just
    /// shared rejection).
    #[test]
    fn rendered_lines_are_accepted_identically(extra_ws in 0usize..4, trailing in "[ \t]{0,3}") {
        for line in rendered_lines() {
            let owned = LogLine::parse(&line);
            prop_assert!(owned.is_some(), "rendered line must parse: {line}");
            assert_equivalent(&line)?;
            // trim_end equivalence: trailing ASCII whitespace is cosmetic.
            assert_equivalent(&format!("{line}{trailing}"))?;
            // Extra interior spaces leave the general token path valid for
            // the timestamp but break fixed offsets — the fast path must
            // bail, not reject.
            let spaced = line.replacen(' ', &" ".repeat(1 + extra_ws), 3);
            assert_equivalent(&spaced)?;
        }
    }

    /// Single-character deletion at every position of every rendered
    /// shape: the classic fast-path hazard (shifts every fixed offset).
    #[test]
    fn single_character_deletion_parses_identically(idx in 0usize..200) {
        for line in rendered_lines() {
            if idx < line.len() && line.is_char_boundary(idx) && line.is_char_boundary(idx + 1) {
                let mutated = format!("{}{}", &line[..idx], &line[idx + 1..]);
                assert_equivalent(&mutated)?;
            }
        }
    }

    /// Truncation at every char boundary — including mid-message and
    /// mid-timestamp prefixes of the canonical layout.
    #[test]
    fn prefix_truncation_parses_identically(idx in 0usize..200) {
        for line in rendered_lines() {
            if idx < line.len() && line.is_char_boundary(idx) {
                assert_equivalent(&line[..idx])?;
            }
        }
    }

    /// Single-byte substitution across the whole line, drawn from the
    /// characters that gate fast-path branches: signs, separators,
    /// brackets, NUL, a non-ASCII char, and unicode whitespace.
    #[test]
    fn single_character_substitution_parses_identically(
        idx in 0usize..200,
        pick in 0usize..12,
    ) {
        let repl = ['+', '-', ' ', ':', '[', ']', '=', '0', '\u{0}', '\u{e9}', '\u{a0}', '\u{2028}'][pick];
        for line in rendered_lines() {
            if idx < line.len() && line.is_char_boundary(idx) && line.is_char_boundary(idx + 1) {
                let mutated = format!("{}{repl}{}", &line[..idx], &line[idx + 1..]);
                assert_equivalent(&mutated)?;
            }
        }
    }

    /// The `cfg.disk.install` fused decoder versus the generic kv path:
    /// signed numerals (std `parse` accepts a leading `+`, byte folds
    /// must bail to it), overflowed fields, duplicate keys (last wins),
    /// reordered keys, and junk tails.
    #[test]
    fn disk_install_payload_variants_parse_identically(
        serial in "[A-Z0-9+]{0,12}",
        family in "[A-Za-z+]{0,2}",
        cap in 0u64..400,
        shelf in 0u64..80_000,
        bay in 0u64..300,
        adapter in 0u64..300,
        target in 0u64..300,
        plus_mask in 0u8..32,
        variant in 0u8..6,
    ) {
        let p = |bit: u8| if plus_mask & (1 << bit) != 0 { "+" } else { "" };
        let base = format!(
            "serial={serial} model={family}-{}{cap} shelf={}{shelf} bay={}{bay} device={}{adapter}.{}{target}",
            p(0), p(1), p(2), p(3), p(4),
        );
        let msg = match variant {
            0 => base,
            1 => format!("{base} shelf=9"),              // duplicate key, last wins
            2 => format!("{base} trailing junk"),        // junk tail
            3 => format!("bay={bay} {base}"),            // reordered/duplicated head
            4 => base.replace(' ', "  "),                // double separators
            5 => format!("{base}\u{a0}"),                // non-ASCII whitespace tail
            _ => unreachable!(),
        };
        assert_equivalent(&format!(
            "sys-17 Thu Jul 13 12:22:23 PDT 2006 [cfg.disk.install:info]: {msg}"
        ))?;
    }

    /// The fused timestamp decode versus the civil-calendar oracle:
    /// `SimTime::parse_log_timestamp` must accept/reject exactly like
    /// `CivilDateTime::parse_log_timestamp(..).to_sim_time()` on both
    /// arbitrary text and structured near-canonical layouts (free-content
    /// weekday/zone tokens, space- or zero-padded days, out-of-range
    /// fields, pre-epoch years).
    #[test]
    fn fused_timestamp_matches_the_civil_oracle(
        arbitrary in "[A-Za-z0-9 :+\\-]{0,40}",
        wd in "[A-Za-z\\[]{1,4}",
        mon in "[A-Z][a-z]{2}",
        day in 0u32..40,
        hour in 0u32..30,
        minute in 0u32..70,
        second in 0u32..70,
        zone in "[A-Z]{2,4}",
        year in 1900u32..2200,
        pad in 0u8..2,
    ) {
        for ts in [
            arbitrary,
            if pad == 0 {
                format!("{wd} {mon} {day:2} {hour:02}:{minute:02}:{second:02} {zone} {year}")
            } else {
                format!("{wd} {mon} {day:02} {hour:02}:{minute:02}:{second:02} {zone} {year}")
            },
        ] {
            let fused = SimTime::parse_log_timestamp(&ts);
            let oracle = CivilDateTime::parse_log_timestamp(&ts).and_then(|c| c.to_sim_time());
            prop_assert_eq!(fused, oracle, "timestamp divergence on {:?}", ts);
        }
    }
}
