//! Property suite for the shard frame codec (`ssfa_logs::frame`):
//!
//! 1. encode → decode round-trips arbitrary payloads exactly;
//! 2. **any** single flipped byte — header or payload, any position, any
//!    nonzero XOR mask — is rejected by the decoder, never silently
//!    mis-parsed.
//!
//! Property 2 is the codec's fault-model alignment with
//! `ssfa_logs::faults` (`FaultSpec::bitflip_rate` flips exactly these
//! bytes at rest): the FNV-1a update step is a bijection of the
//! accumulator, so a fixed-length single-byte corruption provably changes
//! the digest; this suite demonstrates it end to end, including flips in
//! the length fields (which change the parse geometry, not just the
//! digest) and in the checksum field itself.

use proptest::prelude::*;

use ssfa_logs::frame::{decode_frame, encode_frame, FrameError, HEADER_LEN};

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=255, 0..300)
}

proptest! {
    #[test]
    fn encode_decode_round_trips_arbitrary_payloads(
        system_id in 0u32..u32::MAX,
        line_count in 0u64..1_000_000,
        payload in arb_payload(),
    ) {
        let mut frame = Vec::new();
        let written = encode_frame(&mut frame, system_id, line_count, &payload);
        prop_assert_eq!(frame.len(), HEADER_LEN + payload.len());
        prop_assert_eq!(written.frame_len() as usize, frame.len());

        let (header, decoded) = decode_frame(&frame).expect("clean frame decodes");
        prop_assert_eq!(header, written);
        prop_assert_eq!(header.system_id, system_id);
        prop_assert_eq!(header.line_count, line_count);
        prop_assert_eq!(header.payload_len as usize, payload.len());
        prop_assert_eq!(decoded, payload.as_slice());
    }

    #[test]
    fn any_single_flipped_byte_is_rejected(
        system_id in 0u32..u32::MAX,
        line_count in 0u64..1_000_000,
        payload in arb_payload(),
        position in 0usize..4096,
        mask in 1u8..=255,
    ) {
        let mut frame = Vec::new();
        encode_frame(&mut frame, system_id, line_count, &payload);
        let position = position % frame.len();
        frame[position] ^= mask;

        prop_assert!(
            decode_frame(&frame).is_err(),
            "flip at byte {} (mask {:#04x}) of a {}-byte frame decoded successfully",
            position, mask, frame.len(),
        );
    }

    /// A flip in the magic or version bytes must be rejected *as such* —
    /// structurally, before any checksum work — so corrupt frames and
    /// format-mismatched frames stay distinguishable.
    #[test]
    fn identity_byte_flips_are_structurally_typed(
        payload in arb_payload(),
        position in 0usize..8,
        mask in 1u8..=255,
    ) {
        let mut frame = Vec::new();
        encode_frame(&mut frame, 9, 2, &payload);
        frame[position] ^= mask;
        let err = decode_frame(&frame).unwrap_err();
        if position < 4 {
            prop_assert!(matches!(err, FrameError::BadMagic { .. }), "{err:?}");
        } else {
            prop_assert!(matches!(err, FrameError::UnsupportedVersion { .. }), "{err:?}");
        }
    }

    /// Truncating an encoded frame anywhere — mid-header or mid-payload —
    /// is always a typed `Truncated` error, never a short parse.
    #[test]
    fn any_truncation_is_rejected_as_truncated(
        payload in proptest::collection::vec(0u8..=255, 1..200),
        keep_frac in 0.0f64..1.0,
    ) {
        let mut frame = Vec::new();
        encode_frame(&mut frame, 3, 1, &payload);
        let keep = ((frame.len() as f64) * keep_frac) as usize;
        prop_assert!(keep < frame.len());
        let err = decode_frame(&frame[..keep]).unwrap_err();
        prop_assert!(matches!(err, FrameError::Truncated { .. }), "{err:?}");
    }
}
