//! Sharded corpus rendering: one shard per system.
//!
//! A full-scale fleet renders to a corpus far bigger than a workstation
//! wants to hold as one `String`. Real AutoSupport archives have the same
//! shape and the same remedy: each system's log is its own file. This
//! module reproduces that layout — a [`ShardPlan`] splits a run's ground
//! truth by owning system, [`render_system_log`] renders any single
//! system's shard independently, and [`write_shard`] streams it to any
//! writer without intermediate buffering beyond one line.
//!
//! Two properties make shards safe to process concurrently:
//!
//! 1. **Self-containment** — a shard opens with the system's own
//!    configuration snapshot, so the classifier can resolve every event in
//!    the shard without seeing any other shard.
//! 2. **Decomposability** — the monolithic corpus
//!    ([`crate::render_support_log_noisy`]) is *defined* as the
//!    chronologically merged concatenation of all shards, so per-shard
//!    classification followed by [`crate::AnalysisInput::merge`] is
//!    bit-identical to classifying the monolithic corpus.
//!
//! Benign noise is seeded **per disk instance** (not from one sequential
//! stream over the whole fleet), which is what makes property 2 hold with
//! noise enabled: a disk emits the same noise lines whether its system is
//! rendered alone or as part of the full corpus.

use std::collections::HashMap;
use std::io::Write;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ssfa_model::time::SECS_PER_YEAR;
use ssfa_model::{Fleet, SimDuration, SimTime, SystemId};
use ssfa_sim::rng::derive;
use ssfa_sim::{RemovalReason, SimOutput};

use crate::cascade::{expand, CascadeInput, CascadeStyle};
use crate::corpus::{LogBook, LogError};
use crate::event::{LogEvent, LogLine};
use crate::render::NoiseParams;

/// Domain separator folded into the noise seed so noise streams never
/// collide with simulation streams derived from the same run seed.
pub(crate) const NOISE_STREAM: u64 = 0x4E01_5E00;

/// An index of one run's ground truth by owning system: which disk
/// records and which failure occurrences belong in each system's shard.
///
/// Building the plan is one pass over the output; rendering any shard
/// afterwards touches only that shard's records.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// `output.disks()` indices per system, in `fleet.systems()` order.
    disks: Vec<Vec<u32>>,
    /// `output.occurrences()` indices per system, preserving the global
    /// detection order within each system.
    occurrences: Vec<Vec<u32>>,
}

impl ShardPlan {
    /// Indexes `output` by the systems of `fleet`.
    ///
    /// # Panics
    ///
    /// Panics if the output references a system the fleet does not have
    /// (which would mean the output came from a different fleet).
    pub fn new(fleet: &Fleet, output: &SimOutput) -> ShardPlan {
        let shard_of: HashMap<SystemId, usize> = fleet
            .systems()
            .iter()
            .enumerate()
            .map(|(i, sys)| (sys.id, i))
            .collect();
        let n = fleet.systems().len();
        let mut disks = vec![Vec::new(); n];
        let mut occurrences = vec![Vec::new(); n];
        for (i, disk) in output.disks().iter().enumerate() {
            let shard = *shard_of
                .get(&disk.system)
                .expect("disk from an unknown system");
            disks[shard].push(u32::try_from(i).expect("disk index fits in u32"));
        }
        for (i, occ) in output.occurrences().iter().enumerate() {
            let shard = *shard_of
                .get(&occ.system)
                .expect("occurrence from an unknown system");
            occurrences[shard].push(u32::try_from(i).expect("occurrence index fits in u32"));
        }
        ShardPlan { disks, occurrences }
    }

    /// Number of shards (= number of systems).
    pub fn shard_count(&self) -> usize {
        self.disks.len()
    }

    /// Estimated line count of one shard's rendered (noise-free) text,
    /// from the plan's indices alone — no rendering happens. Used by
    /// [`ChunkPlan::auto`] to balance chunks; the estimate deliberately
    /// overcounts slightly (every disk is assumed to have a removal
    /// record) so auto chunks err on the small side.
    pub fn estimated_shard_lines(&self, fleet: &Fleet, shard: usize, style: CascadeStyle) -> usize {
        let sys = &fleet.systems()[shard];
        let cfg = 1 + sys.shelves.len() + sys.raid_groups.len();
        let lifecycle = 2 * self.disks[shard].len();
        let cascade = match style {
            CascadeStyle::RaidOnly => 1,
            CascadeStyle::Full => 6,
        };
        cfg + lifecycle + cascade * self.occurrences[shard].len()
    }

    /// Estimated rendered-text bytes of one shard
    /// ([`ShardPlan::estimated_shard_lines`] × a typical line width).
    pub fn estimated_shard_bytes(&self, fleet: &Fleet, shard: usize, style: CascadeStyle) -> usize {
        self.estimated_shard_lines(fleet, shard, style) * EST_BYTES_PER_LINE
    }
}

/// Typical rendered corpus line width, for chunk planning only.
const EST_BYTES_PER_LINE: usize = 120;

/// Default [`ChunkPlan::auto`] target: ~256 KiB of rendered shard text per
/// chunk — large enough to amortize per-work-unit setup (classifier
/// construction, partial merging, scheduling) across many small systems,
/// small enough that a fleet still splits into plenty of parallel work.
pub const DEFAULT_CHUNK_TARGET_BYTES: usize = 256 * 1024;

/// A partition of a [`ShardPlan`]'s shards into contiguous *chunks*: the
/// work units of the streaming pipeline.
///
/// One shard per system is the right unit for self-containment, but a
/// terrible unit for scheduling when systems are small — at small scales
/// per-shard setup dominates the wall clock. A chunk batches a contiguous
/// run of shards into one work unit (one classifier, one partial, one
/// scheduling slot) while each shard inside it still renders, injects, and
/// feeds individually, so per-disk noise seeding, fault injection keyed by
/// shard index, and peak residency of one shard are all unchanged.
///
/// Chunks are always contiguous in fleet system order and cover every
/// shard exactly once, so merging per-chunk partials in chunk order is the
/// same merge — bit-identical — as merging per-shard partials in shard
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Half-open shard ranges, in order, covering `0..shard_count`.
    ranges: Vec<std::ops::Range<usize>>,
}

impl ChunkPlan {
    /// One chunk per shard — exactly the pre-chunking pipeline.
    pub fn per_shard(plan: &ShardPlan) -> ChunkPlan {
        ChunkPlan::fixed(plan, 1)
    }

    /// Fixed-size chunks of `systems_per_chunk` shards (the last chunk
    /// takes the remainder). `usize::MAX` (or anything ≥ the fleet) gives
    /// one chunk spanning the whole corpus.
    ///
    /// # Panics
    ///
    /// Panics if `systems_per_chunk` is zero.
    pub fn fixed(plan: &ShardPlan, systems_per_chunk: usize) -> ChunkPlan {
        assert!(
            systems_per_chunk > 0,
            "chunks must hold at least one system"
        );
        let n = plan.shard_count();
        let ranges = (0..n)
            .step_by(systems_per_chunk.min(n.max(1)))
            .map(|start| start..(start + systems_per_chunk).min(n))
            .collect();
        ChunkPlan { ranges }
    }

    /// Fixed-size chunks over a bare shard count, for sources that have no
    /// [`ShardPlan`] (e.g. manifest-backed corpus readers): the same
    /// partition as [`ChunkPlan::fixed`], which is implemented on top of
    /// this.
    ///
    /// # Panics
    ///
    /// Panics if `systems_per_chunk` is zero.
    pub fn fixed_count(shards: usize, systems_per_chunk: usize) -> ChunkPlan {
        assert!(
            systems_per_chunk > 0,
            "chunks must hold at least one system"
        );
        let ranges = (0..shards)
            .step_by(systems_per_chunk.min(shards.max(1)))
            .map(|start| start..(start + systems_per_chunk).min(shards))
            .collect();
        ChunkPlan { ranges }
    }

    /// Greedy byte-budget chunking over known per-shard sizes, for sources
    /// that store exact shard byte counts (e.g. a corpus manifest) instead
    /// of estimating them from a [`ShardPlan`]: the same greedy close as
    /// [`ChunkPlan::auto`] — accumulate shards until `target_bytes`, an
    /// oversized shard gets its own chunk, every chunk holds at least one
    /// shard.
    pub fn by_bytes(sizes: &[u64], target_bytes: u64) -> ChunkPlan {
        let n = sizes.len();
        let mut ranges = Vec::new();
        let mut start = 0;
        let mut bytes = 0u64;
        for (shard, &size) in sizes.iter().enumerate() {
            if shard > start && bytes.saturating_add(size) > target_bytes {
                ranges.push(start..shard);
                start = shard;
                bytes = 0;
            }
            bytes = bytes.saturating_add(size);
        }
        if start < n {
            ranges.push(start..n);
        }
        ChunkPlan { ranges }
    }

    /// One chunk spanning all of `shards` shards (`0..shards`), or no
    /// chunks at all when `shards` is zero. This is the plan a
    /// single-shard source (e.g. a monolithic whole-corpus shard) uses
    /// regardless of policy.
    pub fn whole(shards: usize) -> ChunkPlan {
        let mut ranges = Vec::new();
        if shards > 0 {
            ranges.push(0..shards);
        }
        ChunkPlan { ranges }
    }

    /// Greedy auto-chunking: accumulate shards until the chunk's estimated
    /// rendered text reaches `target_bytes`, then start the next chunk. A
    /// shard bigger than the target gets a chunk of its own; every chunk
    /// holds at least one shard.
    pub fn auto(
        plan: &ShardPlan,
        fleet: &Fleet,
        style: CascadeStyle,
        target_bytes: usize,
    ) -> ChunkPlan {
        let n = plan.shard_count();
        let mut ranges = Vec::new();
        let mut start = 0;
        let mut bytes = 0usize;
        for shard in 0..n {
            let est = plan.estimated_shard_bytes(fleet, shard, style);
            if shard > start && bytes + est > target_bytes {
                ranges.push(start..shard);
                start = shard;
                bytes = 0;
            }
            bytes += est;
        }
        if start < n {
            ranges.push(start..n);
        }
        ChunkPlan { ranges }
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.ranges.len()
    }

    /// The shard range of one chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range.
    pub fn shard_range(&self, chunk: usize) -> std::ops::Range<usize> {
        self.ranges[chunk].clone()
    }

    /// Iterates the chunks' shard ranges in order.
    pub fn iter(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        self.ranges.iter().cloned()
    }

    /// Total shards covered (= the plan's shard count).
    pub fn shard_count(&self) -> usize {
        self.ranges.iter().map(std::ops::Range::len).sum()
    }
}

/// Renders one system's shard: its configuration snapshot, its disks'
/// lifecycle records and benign noise, and its failure cascades, in
/// chronological order.
///
/// The concatenation of every shard, re-sorted chronologically, is exactly
/// the monolithic corpus of [`crate::render_support_log_noisy`] — that
/// function is implemented on top of this one.
///
/// # Panics
///
/// Panics if `shard` is out of range for the plan.
pub fn render_system_log(
    fleet: &Fleet,
    output: &SimOutput,
    plan: &ShardPlan,
    shard: usize,
    style: CascadeStyle,
    noise: NoiseParams,
    noise_seed: u64,
) -> LogBook {
    let sys = &fleet.systems()[shard];
    let mut book = LogBook::new();

    // Configuration snapshot at install time.
    let t = sys.installed_at;
    book.push(LogLine::new(
        sys.id,
        t,
        LogEvent::CfgSystem {
            class: sys.class,
            disk_model: sys.disk_model,
            shelf_model: sys.shelf_model,
            paths: sys.path_config,
            layout: ssfa_model::LayoutPolicy::SpanShelves,
        },
    ));
    for &shelf_id in &sys.shelves {
        let shelf = fleet.shelf(shelf_id);
        book.push(LogLine::new(
            sys.id,
            t,
            LogEvent::CfgShelf {
                shelf: shelf.id,
                model: shelf.model,
                fc_loop: shelf.fc_loop,
                adapter: shelf.adapter,
                position: shelf.loop_position,
                bays: shelf.bays,
            },
        ));
    }
    for &rg_id in &sys.raid_groups {
        let rg = fleet.raid_group(rg_id);
        book.push(LogLine::new(
            sys.id,
            t,
            LogEvent::CfgRaidGroup {
                rg: rg.id,
                raid_type: rg.raid_type,
                slots: rg.slots.clone(),
            },
        ));
    }

    // Disk lifecycle records.
    let study_end = SimTime::study_end();
    for &i in &plan.disks[shard] {
        let disk = &output.disks()[i as usize];
        book.push(LogLine::new(
            disk.system,
            disk.installed_at,
            LogEvent::CfgDiskInstall {
                serial: disk.id.serial(),
                model: disk.model,
                slot: disk.slot,
                device: fleet.device_addr(disk.slot),
            },
        ));
        // End-of-study removals are not events — the study window just
        // closes; the classifier fills those in.
        if disk.removal_reason == RemovalReason::Failed && disk.removed_at < study_end {
            book.push(LogLine::new(
                disk.system,
                disk.removed_at,
                LogEvent::CfgDiskRemove {
                    serial: disk.id.serial(),
                    reason: "failed".into(),
                },
            ));
        }
    }

    // Benign noise, seeded per disk instance so every shard draws the same
    // noise lines the monolithic render would.
    let total_noise = noise.medium_errors_per_disk_year + noise.transient_timeouts_per_disk_year;
    if total_noise > 0.0 {
        let medium_share = noise.medium_errors_per_disk_year / total_noise;
        let rate_per_sec = total_noise / SECS_PER_YEAR as f64;
        for &i in &plan.disks[shard] {
            let disk = &output.disks()[i as usize];
            let mut rng = StdRng::seed_from_u64(derive(noise_seed ^ NOISE_STREAM, disk.id.0));
            let device = fleet.device_addr(disk.slot);
            let mut t = disk.installed_at;
            loop {
                let u: f64 = rng.gen();
                let gap = (-(1.0 - u).ln() / rate_per_sec).ceil().max(1.0);
                t += SimDuration::from_secs(gap as u64);
                if t >= disk.removed_at {
                    break;
                }
                let event = if rng.gen::<f64>() < medium_share {
                    LogEvent::DiskMediumError {
                        device,
                        sector: rng.gen::<u64>() % 976_773_168,
                    }
                } else {
                    LogEvent::FciDeviceTimeout { device }
                };
                book.push(LogLine::new(disk.system, t, event));
            }
        }
    }

    // Failure cascades, in the system's detection order.
    for &i in &plan.occurrences[shard] {
        let occ = &output.occurrences()[i as usize];
        let input = CascadeInput {
            host: occ.system,
            detected_at: occ.detected_at,
            failure_type: occ.failure_type,
            masked: occ.masked,
            device: occ.device,
            serial: occ.disk.serial(),
        };
        book.extend_lines(expand(&input, style));
    }

    book.sort_chronological();
    book
}

/// Streams one shard as text to `w`, line by line — the shard-file writer
/// for spooling a corpus to disk without holding it in memory.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
#[allow(clippy::too_many_arguments)]
pub fn write_shard<W: Write>(
    fleet: &Fleet,
    output: &SimOutput,
    plan: &ShardPlan,
    shard: usize,
    style: CascadeStyle,
    noise: NoiseParams,
    noise_seed: u64,
    w: W,
) -> Result<(), LogError> {
    render_system_log(fleet, output, plan, shard, style, noise, noise_seed).write_to(w)
}

/// Renders one chunk's log: the chronological merge of the chunk's shards
/// — the chunk-file analogue of [`render_system_log`]. The concatenation
/// of every chunk of a [`ChunkPlan`], re-sorted chronologically, is the
/// monolithic corpus, exactly as with per-system shards.
///
/// # Panics
///
/// Panics if `shards` reaches beyond the plan.
pub fn render_chunk_log(
    fleet: &Fleet,
    output: &SimOutput,
    plan: &ShardPlan,
    shards: std::ops::Range<usize>,
    style: CascadeStyle,
    noise: NoiseParams,
    noise_seed: u64,
) -> LogBook {
    let mut book = LogBook::new();
    for shard in shards {
        book.extend_lines(render_system_log(
            fleet, output, plan, shard, style, noise, noise_seed,
        ));
    }
    book.sort_chronological();
    book
}

/// Streams one chunk as text to `w` — the chunk-file writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
#[allow(clippy::too_many_arguments)]
pub fn write_chunk<W: Write>(
    fleet: &Fleet,
    output: &SimOutput,
    plan: &ShardPlan,
    shards: std::ops::Range<usize>,
    style: CascadeStyle,
    noise: NoiseParams,
    noise_seed: u64,
    w: W,
) -> Result<(), LogError> {
    render_chunk_log(fleet, output, plan, shards, style, noise, noise_seed).write_to(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, Classifier};
    use crate::render::{render_support_log_noisy, NoiseParams};
    use ssfa_model::FleetConfig;
    use ssfa_sim::Simulator;

    fn small_run() -> (Fleet, SimOutput) {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.002), 33);
        let out = Simulator::default().run(&fleet, 33);
        (fleet, out)
    }

    fn one_system_run() -> (Fleet, SimOutput) {
        // `scaled` floors at one system per class, so a single retained
        // class at a vanishing factor is exactly one system.
        let config = FleetConfig::paper()
            .only_classes(&[ssfa_model::SystemClass::HighEnd])
            .scaled(1e-9);
        let fleet = Fleet::build(&config, 33);
        assert_eq!(fleet.systems().len(), 1);
        let out = Simulator::default().run(&fleet, 33);
        (fleet, out)
    }

    /// `ChunkPlan::whole` at both boundaries: zero shards plans zero
    /// chunks (an empty corpus has no work units, not one empty one), and
    /// any positive count plans exactly one covering chunk.
    #[test]
    fn whole_plan_handles_the_empty_corpus() {
        let empty = ChunkPlan::whole(0);
        assert_eq!(empty.chunk_count(), 0);
        assert_eq!(empty.shard_count(), 0);
        assert_eq!(empty.iter().count(), 0);

        let five = ChunkPlan::whole(5);
        assert_eq!(five.chunk_count(), 1);
        assert_eq!(five.shard_range(0), 0..5);
        assert_eq!(five.shard_count(), 5);
    }

    /// A shard whose estimate alone exceeds the byte budget must get a
    /// chunk of its own — never merge with a neighbor, never be skipped.
    /// A 1-byte target makes *every* shard oversized, so auto degenerates
    /// to the per-shard plan.
    #[test]
    fn oversize_shards_each_get_their_own_chunk() {
        let (fleet, out) = small_run();
        let plan = ShardPlan::new(&fleet, &out);
        for shard in 0..plan.shard_count() {
            assert!(
                plan.estimated_shard_bytes(&fleet, shard, CascadeStyle::RaidOnly) > 1,
                "fixture shard {shard} too small to be oversized"
            );
        }
        let chunks = ChunkPlan::auto(&plan, &fleet, CascadeStyle::RaidOnly, 1);
        assert_eq!(chunks, ChunkPlan::per_shard(&plan));
        for range in chunks.iter() {
            assert_eq!(range.len(), 1);
        }
    }

    /// On a one-system fleet every policy — per-shard, fixed(1), auto at
    /// the default target, whole — is the same single-chunk plan.
    #[test]
    fn one_system_fleet_collapses_every_policy_to_one_chunk() {
        let (fleet, out) = one_system_run();
        let plan = ShardPlan::new(&fleet, &out);
        assert_eq!(plan.shard_count(), 1);
        let per_shard = ChunkPlan::per_shard(&plan);
        for chunks in [
            ChunkPlan::fixed(&plan, 1),
            ChunkPlan::auto(
                &plan,
                &fleet,
                CascadeStyle::RaidOnly,
                DEFAULT_CHUNK_TARGET_BYTES,
            ),
            ChunkPlan::auto(&plan, &fleet, CascadeStyle::RaidOnly, 1),
            ChunkPlan::whole(plan.shard_count()),
        ] {
            assert_eq!(chunks, per_shard);
            assert_eq!(chunks.chunk_count(), 1);
            assert_eq!(chunks.shard_range(0), 0..1);
        }
    }

    #[test]
    fn plan_partitions_everything_exactly_once() {
        let (fleet, out) = small_run();
        let plan = ShardPlan::new(&fleet, &out);
        assert_eq!(plan.shard_count(), fleet.systems().len());
        let disk_total: usize = plan.disks.iter().map(Vec::len).sum();
        let occ_total: usize = plan.occurrences.iter().map(Vec::len).sum();
        assert_eq!(disk_total, out.disks().len());
        assert_eq!(occ_total, out.occurrences().len());
    }

    #[test]
    fn shards_concatenate_to_the_monolithic_corpus() {
        let (fleet, out) = small_run();
        let plan = ShardPlan::new(&fleet, &out);
        let noise = NoiseParams::realistic();
        let mono = render_support_log_noisy(&fleet, &out, CascadeStyle::Full, noise, 5);
        let mut concat = LogBook::new();
        for shard in 0..plan.shard_count() {
            let piece = render_system_log(&fleet, &out, &plan, shard, CascadeStyle::Full, noise, 5);
            concat.extend_lines(piece.iter().cloned());
        }
        concat.sort_chronological();
        assert_eq!(concat, mono);
    }

    #[test]
    fn each_shard_is_classifiable_in_isolation() {
        let (fleet, out) = small_run();
        let plan = ShardPlan::new(&fleet, &out);
        for shard in 0..plan.shard_count() {
            let book = render_system_log(
                &fleet,
                &out,
                &plan,
                shard,
                CascadeStyle::Full,
                NoiseParams::none(),
                0,
            );
            let partial = classify(&book).expect("shard is self-contained");
            assert_eq!(partial.topology.systems.len(), 1);
        }
    }

    #[test]
    fn merged_shard_classification_equals_monolithic() {
        let (fleet, out) = small_run();
        let plan = ShardPlan::new(&fleet, &out);
        let mono = render_support_log_noisy(
            &fleet,
            &out,
            CascadeStyle::RaidOnly,
            NoiseParams::realistic(),
            11,
        );
        let expected = classify(&mono).unwrap();
        let partials: Vec<_> = (0..plan.shard_count())
            .map(|shard| {
                let book = render_system_log(
                    &fleet,
                    &out,
                    &plan,
                    shard,
                    CascadeStyle::RaidOnly,
                    NoiseParams::realistic(),
                    11,
                );
                classify(&book).unwrap()
            })
            .collect();
        let merged = crate::AnalysisInput::merge(partials);
        assert_eq!(merged, expected);
    }

    #[test]
    fn chunk_plans_partition_shards_contiguously() {
        let (fleet, out) = small_run();
        let plan = ShardPlan::new(&fleet, &out);
        let n = plan.shard_count();
        for chunks in [
            ChunkPlan::per_shard(&plan),
            ChunkPlan::fixed(&plan, 3),
            ChunkPlan::fixed(&plan, usize::MAX),
            ChunkPlan::auto(&plan, &fleet, CascadeStyle::RaidOnly, 8 * 1024),
            ChunkPlan::auto(
                &plan,
                &fleet,
                CascadeStyle::RaidOnly,
                DEFAULT_CHUNK_TARGET_BYTES,
            ),
        ] {
            assert_eq!(chunks.shard_count(), n, "{chunks:?}");
            let mut next = 0;
            for range in chunks.iter() {
                assert_eq!(range.start, next, "chunks must be contiguous: {chunks:?}");
                assert!(!range.is_empty(), "empty chunk in {chunks:?}");
                next = range.end;
            }
            assert_eq!(next, n);
        }
        assert_eq!(ChunkPlan::per_shard(&plan).chunk_count(), n);
        assert_eq!(ChunkPlan::fixed(&plan, usize::MAX).chunk_count(), 1);
    }

    #[test]
    fn auto_chunks_respect_the_byte_target() {
        let (fleet, out) = small_run();
        let plan = ShardPlan::new(&fleet, &out);
        let target = 16 * 1024;
        let chunks = ChunkPlan::auto(&plan, &fleet, CascadeStyle::RaidOnly, target);
        assert!(
            chunks.chunk_count() > 1,
            "target small enough to split this fleet"
        );
        for range in chunks.iter() {
            let est: usize = range
                .clone()
                .map(|s| plan.estimated_shard_bytes(&fleet, s, CascadeStyle::RaidOnly))
                .sum();
            // A chunk may overshoot by at most its last shard (greedy close).
            let last = plan.estimated_shard_bytes(&fleet, range.end - 1, CascadeStyle::RaidOnly);
            assert!(
                range.len() == 1 || est <= target + last,
                "chunk {range:?} estimated {est} bytes vs target {target}"
            );
        }
    }

    #[test]
    fn chunk_logs_merge_to_the_monolithic_corpus() {
        let (fleet, out) = small_run();
        let plan = ShardPlan::new(&fleet, &out);
        let noise = NoiseParams::realistic();
        let mono = render_support_log_noisy(&fleet, &out, CascadeStyle::Full, noise, 5);
        let chunks = ChunkPlan::fixed(&plan, 7);
        let mut concat = LogBook::new();
        for range in chunks.iter() {
            let piece = render_chunk_log(&fleet, &out, &plan, range, CascadeStyle::Full, noise, 5);
            concat.extend_lines(piece);
        }
        concat.sort_chronological();
        assert_eq!(concat, mono);
    }

    #[test]
    fn write_chunk_round_trips_through_streaming_classifier() {
        let (fleet, out) = small_run();
        let plan = ShardPlan::new(&fleet, &out);
        let chunks = ChunkPlan::auto(&plan, &fleet, CascadeStyle::RaidOnly, 8 * 1024);
        let mut classifier = Classifier::new();
        for range in chunks.iter() {
            let mut buf = Vec::new();
            write_chunk(
                &fleet,
                &out,
                &plan,
                range,
                CascadeStyle::RaidOnly,
                NoiseParams::none(),
                0,
                &mut buf,
            )
            .unwrap();
            classifier.feed_reader(buf.as_slice()).unwrap();
        }
        let streamed = classifier.finish().unwrap();
        let mono =
            render_support_log_noisy(&fleet, &out, CascadeStyle::RaidOnly, NoiseParams::none(), 0);
        assert_eq!(streamed, classify(&mono).unwrap());
    }

    #[test]
    fn write_shard_round_trips_through_streaming_classifier() {
        let (fleet, out) = small_run();
        let plan = ShardPlan::new(&fleet, &out);
        let mut classifier = Classifier::new();
        for shard in 0..plan.shard_count() {
            let mut buf = Vec::new();
            write_shard(
                &fleet,
                &out,
                &plan,
                shard,
                CascadeStyle::RaidOnly,
                NoiseParams::none(),
                0,
                &mut buf,
            )
            .unwrap();
            classifier.feed_reader(buf.as_slice()).unwrap();
        }
        let streamed = classifier.finish().unwrap();
        let mono =
            render_support_log_noisy(&fleet, &out, CascadeStyle::RaidOnly, NoiseParams::none(), 0);
        assert_eq!(streamed, classify(&mono).unwrap());
    }
}
