//! AutoSupport-style storage support logs: rendering, parsing, cascades,
//! and RAID-layer failure classification.
//!
//! The FAST'08 study works from *support logs*: when a failure happens,
//! events propagate up the I/O stack (Fibre Channel → SCSI → RAID), and the
//! RAID layer — which sits directly above the storage subsystem — tags the
//! resulting event with a failure type (paper §2.5, Figure 3). This crate
//! reproduces that pipeline for the synthetic fleet:
//!
//! - [`event`]: the typed log events of each layer, with the text rendering
//!   shown in the paper's Figure 3 (e.g. `[fci.device.timeout:error]:
//!   Adapter 8 encountered a device timeout on device 8.24`), plus
//!   configuration-snapshot records carrying topology and disk
//!   install/remove information.
//! - [`cascade`]: expands one failure into the multi-line event cascade a
//!   real system would log.
//! - [`corpus`]: a line-oriented log corpus ([`LogBook`]) that renders to
//!   and parses from plain text.
//! - [`mod@classify`]: the analysis-side classifier that re-derives topology,
//!   disk lifetimes, and typed failure records *from the text corpus
//!   alone* — the paper's methodology, with no access to simulator ground
//!   truth.
//!
//! # Example
//!
//! ```
//! use ssfa_logs::{classify::classify, render::render_support_log, CascadeStyle, LogBook};
//! use ssfa_model::{Fleet, FleetConfig};
//! use ssfa_sim::Simulator;
//!
//! let fleet = Fleet::build(&FleetConfig::paper().scaled(0.0005), 3);
//! let output = Simulator::default().run(&fleet, 3);
//! let book = render_support_log(&fleet, &output, CascadeStyle::Full);
//!
//! // The analysis pipeline works from text alone.
//! let reparsed = LogBook::from_text(&book.to_text())?;
//! let analysis_input = classify(&reparsed)?;
//! assert_eq!(analysis_input.failures.len(), output.exposed_records().len());
//! # Ok::<(), ssfa_logs::LogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cascade;
pub mod checkpoint;
pub mod classify;
pub mod corpus;
pub mod event;
pub mod faults;
pub mod frame;
pub mod intern;
pub mod render;
pub mod shard;
pub mod store;
pub mod view;

pub use cascade::{CascadeInput, CascadeStyle};
pub use checkpoint::{
    corpus_epoch_digest, CheckpointError, CheckpointManifest, CheckpointReader, CheckpointWriter,
    EpochEntry,
};
pub use classify::{
    classify, classify_parallel, classify_with, AnalysisInput, Classifier, DiskLifetime,
    ShardHealth, Strictness, Topology,
};
pub use corpus::{LogBook, LogError};
pub use event::{LogEvent, LogLine, Severity};
pub use faults::{
    FaultInjector, FaultLedger, FaultSpec, ShardFate, WireAction, WireFaultInjector,
    WireFaultLedger, WireFaultSpec, WirePlan,
};
pub use frame::{
    checksum64, decode_frame, decode_frame_text, encode_frame, Checksum, FrameError, FrameHeader,
    FRAME_MAGIC, FRAME_VERSION, HEADER_LEN,
};
pub use intern::{HostInterner, TagId};
pub use render::{render_support_log, render_support_log_noisy, NoiseParams};
pub use shard::{
    render_chunk_log, render_system_log, write_chunk, write_shard, ChunkPlan, ShardPlan,
    DEFAULT_CHUNK_TARGET_BYTES,
};
pub use store::{
    CorpusError, CorpusReader, CorpusSummary, CorpusWriter, Manifest, ShardEntry,
    DEFAULT_SEGMENT_SHARDS, MANIFEST_NAME,
};
pub use view::{EventRef, LogLineRef, SlotsRef};
