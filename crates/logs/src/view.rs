//! Borrowed, zero-allocation views of log lines.
//!
//! [`LogLineRef`] is the hot-path twin of [`LogLine`]:
//! the same grammar, the same accept/reject decisions, but every
//! variable-width field (`serial`, `reason`, the raid-group member list)
//! is a slice borrowed from the input text instead of an owned `String`.
//! A chunk worker can therefore parse and classify a whole rendered shard
//! without allocating per line — the classifier consumes the view and
//! only the handful of state-changing records (installs, topology) ever
//! reach owned storage.
//!
//! Equivalence with the owned parser is load-bearing and proven three
//! ways: [`LogLineRef::from_owned`] lets the owned feed path delegate to
//! the view path (equal by construction), `to_owned` round-trips are
//! unit-tested against [`LogLine::parse`](crate::LogLine::parse) here,
//! and `crates/logs/tests/parser_equivalence.rs` fuzzes both parsers
//! over well-formed, malformed, truncated, and UTF-8-boundary inputs.

use ssfa_model::{
    DeviceAddr, DiskModelId, LayoutPolicy, LoopId, PathConfig, RaidGroupId, RaidType, ShelfId,
    ShelfModel, SimTime, SlotAddr, SystemClass, SystemId,
};

use crate::event::{LogEvent, LogLine, Severity};
use crate::intern::TagId;

/// A raid-group member list that is either still rendered text
/// (validated during parse, iterated lazily) or a borrowed slice of an
/// owned event's slots. Either way iteration yields [`SlotAddr`]s
/// without allocating.
#[derive(Debug, Clone, Copy)]
pub enum SlotsRef<'a> {
    /// Validated `shelf:bay,shelf:bay,...` text borrowed from the line.
    Text(&'a str),
    /// Slots borrowed from an owned [`LogEvent::CfgRaidGroup`].
    Slice(&'a [SlotAddr]),
}

impl<'a> SlotsRef<'a> {
    /// Validates and wraps a rendered member list. Applies exactly the
    /// owned parser's grammar: comma-separated `shelf:bay` pairs, every
    /// pair must split on `:` with a `u32` shelf and `u8` bay — so an
    /// empty list (or any bad pair) rejects, as it does there.
    fn parse(text: &'a str) -> Option<SlotsRef<'a>> {
        // Byte-level restatement of the grammar above. `,` and `:` are
        // ASCII so byte splits land on the same boundaries as str splits,
        // and `valid_uint` accepts exactly the strings `u32`/`u8` `parse`
        // does (one optional `+`, then digits, within range).
        for pair in text.as_bytes().split(|&b| b == b',') {
            let colon = pair.iter().position(|&b| b == b':')?;
            if !valid_uint(&pair[..colon], u32::MAX as u64) || !valid_uint(&pair[colon + 1..], 255)
            {
                return None;
            }
        }
        Some(SlotsRef::Text(text))
    }

    /// Iterates the member slots. Infallible: text variants were fully
    /// validated at parse time.
    pub fn iter(&self) -> SlotsIter<'a> {
        match self {
            SlotsRef::Text(text) => SlotsIter::Text(text.split(',')),
            SlotsRef::Slice(slots) => SlotsIter::Slice(slots.iter()),
        }
    }

    /// Collects the members into an owned vector (the only allocation a
    /// raid-group record costs, and only when the classifier keeps it).
    // lint: alloc-ok the promotion boundary for kept raid-group records
    pub fn to_vec(&self) -> Vec<SlotAddr> {
        self.iter().collect()
    }
}

/// Iterator over a [`SlotsRef`]'s members.
#[derive(Debug)]
pub enum SlotsIter<'a> {
    /// Lazily re-parsing validated text.
    Text(std::str::Split<'a, char>),
    /// Walking a borrowed slice.
    Slice(std::slice::Iter<'a, SlotAddr>),
}

impl Iterator for SlotsIter<'_> {
    type Item = SlotAddr;

    fn next(&mut self) -> Option<SlotAddr> {
        match self {
            SlotsIter::Text(split) => {
                let pair = split.next()?;
                let (shelf, bay) = pair.split_once(':').expect("validated by SlotsRef::parse");
                Some(SlotAddr {
                    shelf: ShelfId(shelf.parse().expect("validated by SlotsRef::parse")),
                    bay: bay.parse().expect("validated by SlotsRef::parse"),
                })
            }
            SlotsIter::Slice(iter) => iter.next().copied(),
        }
    }
}

/// Borrowed twin of [`LogEvent`]: identical variants and fixed-width
/// fields, with `&str` slices where the owned event holds `String`s.
#[derive(Debug, Clone, Copy)]
pub enum EventRef<'a> {
    /// See [`LogEvent::FciDeviceTimeout`].
    FciDeviceTimeout {
        /// The unresponsive device.
        device: DeviceAddr,
    },
    /// See [`LogEvent::FciAdapterReset`].
    FciAdapterReset {
        /// The adapter being reset.
        adapter: u8,
    },
    /// See [`LogEvent::ScsiCmdAborted`].
    ScsiCmdAborted {
        /// The device whose command was aborted.
        device: DeviceAddr,
    },
    /// See [`LogEvent::ScsiSelectionTimeout`].
    ScsiSelectionTimeout {
        /// The silent target.
        device: DeviceAddr,
    },
    /// See [`LogEvent::ScsiNoMorePaths`].
    ScsiNoMorePaths {
        /// The unreachable device.
        device: DeviceAddr,
    },
    /// See [`LogEvent::ScsiPathFailover`].
    ScsiPathFailover {
        /// The device whose primary path failed.
        device: DeviceAddr,
    },
    /// See [`LogEvent::DiskMediumError`].
    DiskMediumError {
        /// The disk reporting the error.
        device: DeviceAddr,
        /// The broken sector's LBA.
        sector: u64,
    },
    /// See [`LogEvent::ScsiProtocolViolation`].
    ScsiProtocolViolation {
        /// The misbehaving device.
        device: DeviceAddr,
    },
    /// See [`LogEvent::ScsiSlowResponse`].
    ScsiSlowResponse {
        /// The slow device.
        device: DeviceAddr,
        /// Observed completion latency in milliseconds.
        latency_ms: u32,
    },
    /// See [`LogEvent::RaidDiskMissing`].
    RaidDiskMissing {
        /// The missing disk's address.
        device: DeviceAddr,
        /// The missing disk's serial number, borrowed from the line.
        serial: &'a str,
    },
    /// See [`LogEvent::RaidDiskFailed`].
    RaidDiskFailed {
        /// The failed disk's address.
        device: DeviceAddr,
        /// The failed disk's serial number, borrowed from the line.
        serial: &'a str,
    },
    /// See [`LogEvent::RaidProtocolError`].
    RaidProtocolError {
        /// The affected disk's address.
        device: DeviceAddr,
        /// The affected disk's serial number, borrowed from the line.
        serial: &'a str,
    },
    /// See [`LogEvent::RaidDiskSlow`].
    RaidDiskSlow {
        /// The slow disk's address.
        device: DeviceAddr,
        /// The slow disk's serial number, borrowed from the line.
        serial: &'a str,
    },
    /// See [`LogEvent::CfgSystem`].
    CfgSystem {
        /// Capability class.
        class: SystemClass,
        /// Disk model populated throughout the system.
        disk_model: DiskModelId,
        /// Shelf enclosure model in use.
        shelf_model: ShelfModel,
        /// Single or dual FC paths.
        paths: PathConfig,
        /// RAID layout policy.
        layout: LayoutPolicy,
    },
    /// See [`LogEvent::CfgShelf`].
    CfgShelf {
        /// Fleet-unique shelf id.
        shelf: ShelfId,
        /// Enclosure model.
        model: ShelfModel,
        /// FC loop the shelf is chained on.
        fc_loop: LoopId,
        /// Host adapter number.
        adapter: u8,
        /// Position on the loop.
        position: u8,
        /// Populated bays.
        bays: u8,
    },
    /// See [`LogEvent::CfgRaidGroup`].
    CfgRaidGroup {
        /// Fleet-unique RAID group id.
        rg: RaidGroupId,
        /// RAID level.
        raid_type: RaidType,
        /// Member slots (borrowed; iterate without allocating).
        slots: SlotsRef<'a>,
    },
    /// See [`LogEvent::CfgDiskInstall`].
    CfgDiskInstall {
        /// Serial of the installed disk, borrowed from the line.
        serial: &'a str,
        /// Product model.
        model: DiskModelId,
        /// Slot occupied.
        slot: SlotAddr,
        /// Device address of the slot.
        device: DeviceAddr,
    },
    /// See [`LogEvent::CfgDiskRemove`].
    CfgDiskRemove {
        /// Serial of the removed disk, borrowed from the line.
        serial: &'a str,
        /// `failed` or `study_end`, borrowed from the line.
        reason: &'a str,
    },
}

/// Positional fast path for the renderer's canonical `k=v` message
/// layout: the given keys in exactly this order, single-space separated,
/// no other whitespace anywhere, no trailing tokens. `None` means "not
/// canonical", at which point the caller falls back to [`kv_scan`] — so
/// this only ever accepts messages where both readings agree, and the
/// last value being space-free means trailing duplicates (which last-wins
/// scanning would resolve differently) always take the fallback.
// lint: fast-path(kv_scan)
fn canonical_kv<'a, const N: usize>(msg: &'a str, keys: [&str; N]) -> Option<[Option<&'a str>; N]> {
    if msg
        .bytes()
        .any(|b| b >= 0x80 || (b != b' ' && ascii_space(b)))
    {
        return None;
    }
    let mut out = [None; N];
    let mut rest = msg;
    for (i, key) in keys.iter().enumerate() {
        rest = rest.strip_prefix(key)?.strip_prefix('=')?;
        if i + 1 == N {
            if rest.contains(' ') {
                return None;
            }
            out[i] = Some(rest);
        } else {
            let (value, next) = rest.split_once(' ')?;
            out[i] = Some(value);
            rest = next;
        }
    }
    Some(out)
}

/// Last-wins scan for `key=value` whitespace-separated tokens.
///
/// Equivalent to the owned parser's `HashMap` collect for any fixed key
/// set: collecting into a map lets later duplicates overwrite earlier
/// ones, so per key the map holds the *last* occurrence — which is what
/// this scan keeps — and unknown keys are ignored by both.
fn kv_scan<'a, const N: usize>(msg: &'a str, keys: [&str; N]) -> [Option<&'a str>; N] {
    if let Some(out) = canonical_kv(msg, keys) {
        return out;
    }
    if !msg.is_ascii() {
        return kv_scan_unicode(msg, keys);
    }
    // Byte-level tokenizer; for pure-ASCII input the `ascii_space` set is
    // exactly the sub-0x80 slice of `char::is_whitespace`, so token
    // boundaries match `split_whitespace` and the first `=` within a token
    // matches `split_once('=')`.
    let bytes = msg.as_bytes();
    let mut out = [None; N];
    let mut i = 0;
    while i < bytes.len() {
        while i < bytes.len() && ascii_space(bytes[i]) {
            i += 1;
        }
        let start = i;
        let mut eq = usize::MAX;
        while i < bytes.len() && !ascii_space(bytes[i]) {
            if eq == usize::MAX && bytes[i] == b'=' {
                eq = i;
            }
            i += 1;
        }
        if eq != usize::MAX {
            let key = &msg[start..eq];
            let value = &msg[eq + 1..i];
            for (k, want) in keys.iter().enumerate() {
                if key == *want {
                    out[k] = Some(value);
                    break;
                }
            }
        }
    }
    out
}

/// Fallback for messages containing non-ASCII bytes, where whitespace
/// splitting must honor Unicode whitespace exactly as the owned parser's
/// `split_whitespace` does.
fn kv_scan_unicode<'a, const N: usize>(msg: &'a str, keys: [&str; N]) -> [Option<&'a str>; N] {
    let mut out = [None; N];
    for token in msg.split_whitespace() {
        if let Some((key, value)) = token.split_once('=') {
            for (i, want) in keys.iter().enumerate() {
                if key == *want {
                    out[i] = Some(value);
                    break;
                }
            }
        }
    }
    out
}

/// ASCII bytes `char::is_whitespace` treats as whitespace (the only ones
/// below 0x80): tab, LF, VT, FF, CR, space.
#[inline]
fn ascii_space(c: u8) -> bool {
    matches!(c, b'\t' | b'\n' | 0x0b | 0x0c | b'\r' | b' ')
}

/// Fused byte-level fast path for the renderer's canonical
/// `cfg.disk.install` message (`serial=S model=F-N shelf=D bay=D
/// device=A.T`, plain digits, single spaces). `cfg.disk.install` is by
/// far the most common line in a rendered corpus, so this is the hottest
/// arm of [`EventRef::parse`]. Any deviation — exotic whitespace, signs,
/// overflow, trailing tokens — returns `None` and the caller re-reads the
/// message through [`kv_scan`], so this path only ever accepts inputs
/// where both readings agree.
// lint: fast-path(kv_scan)
fn parse_disk_install_fast(msg: &str) -> Option<EventRef<'_>> {
    let b = msg.as_bytes();
    let rest = b.strip_prefix(b"serial=")?;
    // Serial token: printable ASCII up to a single `' '`. Anything else
    // (other whitespace, 0x80+) bails so tokenization stays byte-for-byte
    // with `split_whitespace`.
    let mut n = 0;
    while n < rest.len() && rest[n] != b' ' {
        if rest[n] >= 0x80 || ascii_space(rest[n]) {
            return None;
        }
        n += 1;
    }
    let serial = &msg[7..7 + n];
    let b = rest[n..].strip_prefix(b" model=")?;
    let (family, b) = match b {
        [f @ b'A'..=b'Z', b'-', rest @ ..] => (*f as char, rest),
        _ => return None,
    };
    let (cap, b) = strip_u8(b)?;
    let b = b.strip_prefix(b" shelf=")?;
    let (shelf, b) = strip_u16(b)?;
    let b = b.strip_prefix(b" bay=")?;
    let (bay, b) = strip_u8(b)?;
    let b = b.strip_prefix(b" device=")?;
    let (adapter, b) = strip_u8(b)?;
    let b = b.strip_prefix(b".")?;
    let (target, b) = strip_u8(b)?;
    if !b.is_empty() || cap == 0 {
        return None;
    }
    Some(EventRef::CfgDiskInstall {
        serial,
        model: DiskModelId::new(family, cap),
        slot: SlotAddr {
            shelf: ShelfId(shelf.into()),
            bay,
        },
        device: DeviceAddr::new(adapter, target),
    })
}

/// Accepts exactly the strings `u32::from_str`-family parsers do for an
/// unsigned integer bounded by `max`: one optional `+`, then one or more
/// digits (leading zeros fine), value in range. `max` must be at most
/// `u32::MAX` so the running value cannot overflow `u64`.
fn valid_uint(b: &[u8], max: u64) -> bool {
    let digits = match b.first() {
        Some(b'+') => &b[1..],
        _ => b,
    };
    if digits.is_empty() {
        return false;
    }
    let mut v: u64 = 0;
    for &c in digits {
        if !c.is_ascii_digit() {
            return false;
        }
        v = v * 10 + (c - b'0') as u64;
        if v > max {
            return false;
        }
    }
    true
}

/// Strips a leading plain-digit `u8` (no sign), bailing on overflow so
/// the fallback parser makes the accept/reject call.
#[inline]
fn strip_u8(b: &[u8]) -> Option<(u8, &[u8])> {
    let (v, rest) = strip_u16(b)?;
    (v <= u8::MAX as u16).then_some((v as u8, rest))
}

/// Strips a leading plain-digit `u32` (no sign), bailing on overflow.
#[inline]
fn strip_u32(b: &[u8]) -> Option<(u32, &[u8])> {
    let mut v: u64 = 0;
    let mut i = 0;
    while i < b.len() && b[i].is_ascii_digit() {
        v = v * 10 + (b[i] - b'0') as u64;
        if v > u32::MAX as u64 {
            return None;
        }
        i += 1;
    }
    if i == 0 {
        return None;
    }
    Some((v as u32, &b[i..]))
}

/// Strips a leading plain-digit `u16` (no sign), bailing on overflow.
#[inline]
fn strip_u16(b: &[u8]) -> Option<(u16, &[u8])> {
    let mut v: u32 = 0;
    let mut i = 0;
    while i < b.len() && b[i].is_ascii_digit() {
        v = v * 10 + (b[i] - b'0') as u32;
        if v > u16::MAX as u32 {
            return None;
        }
        i += 1;
    }
    if i == 0 {
        return None;
    }
    Some((v as u16, &b[i..]))
}

fn device_after(msg: &str, prefix: &str) -> Option<DeviceAddr> {
    let rest = msg.strip_prefix(prefix)?;
    let end = rest.find([':', ' '])?;
    rest[..end].parse().ok()
}

fn device_and_serial(msg: &str) -> Option<(DeviceAddr, &str)> {
    let rest = msg.strip_prefix("File system Disk ")?;
    let sp = rest.find(' ')?;
    let device: DeviceAddr = rest[..sp].parse().ok()?;
    let open = rest.find('[')?;
    let close = rest.find(']')?;
    if close <= open + 1 {
        return None;
    }
    Some((device, &rest[open + 1..close]))
}

impl<'a> EventRef<'a> {
    /// Parses a message into a borrowed event, given the interned tag.
    /// Accepts and rejects exactly the inputs [`LogEvent::parse`] does.
    pub fn parse(tag: TagId, message: &'a str) -> Option<EventRef<'a>> {
        match tag {
            TagId::FciDeviceTimeout => {
                let idx = message.rfind(" on device ")?;
                let device: DeviceAddr = message[idx + 11..].trim().parse().ok()?;
                Some(EventRef::FciDeviceTimeout { device })
            }
            TagId::FciAdapterReset => {
                let rest = message.strip_prefix("Resetting Fibre Channel adapter ")?;
                let adapter: u8 = rest.trim_end_matches('.').parse().ok()?;
                Some(EventRef::FciAdapterReset { adapter })
            }
            TagId::ScsiCmdAborted => Some(EventRef::ScsiCmdAborted {
                device: device_after(message, "Device ")?,
            }),
            TagId::ScsiSelectionTimeout => Some(EventRef::ScsiSelectionTimeout {
                device: device_after(message, "Device ")?,
            }),
            TagId::ScsiNoMorePaths => Some(EventRef::ScsiNoMorePaths {
                device: device_after(message, "Device ")?,
            }),
            TagId::ScsiPathFailover => Some(EventRef::ScsiPathFailover {
                device: device_after(message, "Device ")?,
            }),
            TagId::DiskMediumError => {
                let device = device_after(message, "Device ")?;
                let idx = message.find("sector ")?;
                let rest = &message[idx + 7..];
                let end = rest.find('.')?;
                let sector: u64 = rest[..end].parse().ok()?;
                Some(EventRef::DiskMediumError { device, sector })
            }
            TagId::ScsiProtocolViolation => Some(EventRef::ScsiProtocolViolation {
                device: device_after(message, "Device ")?,
            }),
            TagId::ScsiSlowResponse => {
                let device = device_after(message, "Device ")?;
                let open = message.find('(')?;
                let end = message.find(" ms)")?;
                let latency_ms: u32 = message[open + 1..end].parse().ok()?;
                Some(EventRef::ScsiSlowResponse { device, latency_ms })
            }
            TagId::RaidDiskMissing => {
                let (device, serial) = device_and_serial(message)?;
                Some(EventRef::RaidDiskMissing { device, serial })
            }
            TagId::RaidDiskFailed => {
                let (device, serial) = device_and_serial(message)?;
                Some(EventRef::RaidDiskFailed { device, serial })
            }
            TagId::RaidProtocolError => {
                let (device, serial) = device_and_serial(message)?;
                Some(EventRef::RaidProtocolError { device, serial })
            }
            TagId::RaidDiskSlow => {
                let (device, serial) = device_and_serial(message)?;
                Some(EventRef::RaidDiskSlow { device, serial })
            }
            TagId::CfgSystem => {
                let [class, disk_model, shelf_model, paths, layout] = kv_scan(
                    message,
                    ["class", "disk_model", "shelf_model", "paths", "layout"],
                );
                Some(EventRef::CfgSystem {
                    class: SystemClass::from_tag(class?)?,
                    disk_model: DiskModelId::parse(disk_model?)?,
                    shelf_model: ShelfModel::from_letter(shelf_model?.chars().next()?)?,
                    paths: match paths? {
                        "1" => PathConfig::SinglePath,
                        "2" => PathConfig::DualPath,
                        _ => return None,
                    },
                    layout: match layout? {
                        "span-shelves" => LayoutPolicy::SpanShelves,
                        "same-shelf" => LayoutPolicy::SameShelf,
                        _ => return None,
                    },
                })
            }
            TagId::CfgShelf => {
                let [shelf, model, fc_loop, adapter, position, bays] = kv_scan(
                    message,
                    ["shelf", "model", "loop", "adapter", "position", "bays"],
                );
                Some(EventRef::CfgShelf {
                    shelf: ShelfId(shelf?.parse().ok()?),
                    model: ShelfModel::from_letter(model?.chars().next()?)?,
                    fc_loop: LoopId(fc_loop?.parse().ok()?),
                    adapter: adapter?.parse().ok()?,
                    position: position?.parse().ok()?,
                    bays: bays?.parse().ok()?,
                })
            }
            TagId::CfgRaidGroup => {
                let [rg, raid_type, slots] = kv_scan(message, ["rg", "type", "slots"]);
                Some(EventRef::CfgRaidGroup {
                    rg: RaidGroupId(rg?.parse().ok()?),
                    raid_type: match raid_type? {
                        "RAID4" => RaidType::Raid4,
                        "RAID6" => RaidType::Raid6,
                        _ => return None,
                    },
                    slots: SlotsRef::parse(slots?)?,
                })
            }
            TagId::CfgDiskInstall => {
                if let Some(ev) = parse_disk_install_fast(message) {
                    return Some(ev);
                }
                let [serial, model, shelf, bay, device] =
                    kv_scan(message, ["serial", "model", "shelf", "bay", "device"]);
                Some(EventRef::CfgDiskInstall {
                    serial: serial?,
                    model: DiskModelId::parse(model?)?,
                    slot: SlotAddr {
                        shelf: ShelfId(shelf?.parse().ok()?),
                        bay: bay?.parse().ok()?,
                    },
                    device: device?.parse().ok()?,
                })
            }
            TagId::CfgDiskRemove => {
                let [serial, reason] = kv_scan(message, ["serial", "reason"]);
                Some(EventRef::CfgDiskRemove {
                    serial: serial?,
                    reason: reason?,
                })
            }
        }
    }

    /// Converts the view into an owned [`LogEvent`], allocating only the
    /// fields the owned representation must hold.
    // lint: alloc-ok the view->owned promotion for state-changing records
    pub fn to_owned(&self) -> LogEvent {
        match *self {
            EventRef::FciDeviceTimeout { device } => LogEvent::FciDeviceTimeout { device },
            EventRef::FciAdapterReset { adapter } => LogEvent::FciAdapterReset { adapter },
            EventRef::ScsiCmdAborted { device } => LogEvent::ScsiCmdAborted { device },
            EventRef::ScsiSelectionTimeout { device } => LogEvent::ScsiSelectionTimeout { device },
            EventRef::ScsiNoMorePaths { device } => LogEvent::ScsiNoMorePaths { device },
            EventRef::ScsiPathFailover { device } => LogEvent::ScsiPathFailover { device },
            EventRef::DiskMediumError { device, sector } => {
                LogEvent::DiskMediumError { device, sector }
            }
            EventRef::ScsiProtocolViolation { device } => {
                LogEvent::ScsiProtocolViolation { device }
            }
            EventRef::ScsiSlowResponse { device, latency_ms } => {
                LogEvent::ScsiSlowResponse { device, latency_ms }
            }
            EventRef::RaidDiskMissing { device, serial } => LogEvent::RaidDiskMissing {
                device,
                serial: serial.to_owned(),
            },
            EventRef::RaidDiskFailed { device, serial } => LogEvent::RaidDiskFailed {
                device,
                serial: serial.to_owned(),
            },
            EventRef::RaidProtocolError { device, serial } => LogEvent::RaidProtocolError {
                device,
                serial: serial.to_owned(),
            },
            EventRef::RaidDiskSlow { device, serial } => LogEvent::RaidDiskSlow {
                device,
                serial: serial.to_owned(),
            },
            EventRef::CfgSystem {
                class,
                disk_model,
                shelf_model,
                paths,
                layout,
            } => LogEvent::CfgSystem {
                class,
                disk_model,
                shelf_model,
                paths,
                layout,
            },
            EventRef::CfgShelf {
                shelf,
                model,
                fc_loop,
                adapter,
                position,
                bays,
            } => LogEvent::CfgShelf {
                shelf,
                model,
                fc_loop,
                adapter,
                position,
                bays,
            },
            EventRef::CfgRaidGroup {
                rg,
                raid_type,
                slots,
            } => LogEvent::CfgRaidGroup {
                rg,
                raid_type,
                slots: slots.to_vec(),
            },
            EventRef::CfgDiskInstall {
                serial,
                model,
                slot,
                device,
            } => LogEvent::CfgDiskInstall {
                serial: serial.to_owned(),
                model,
                slot,
                device,
            },
            EventRef::CfgDiskRemove { serial, reason } => LogEvent::CfgDiskRemove {
                serial: serial.to_owned(),
                reason: reason.to_owned(),
            },
        }
    }

    /// Borrows a view from an owned event (the owned feed path delegates
    /// through this, so both paths share one classifier implementation).
    pub fn from_owned(event: &'a LogEvent) -> EventRef<'a> {
        match event {
            LogEvent::FciDeviceTimeout { device } => EventRef::FciDeviceTimeout { device: *device },
            LogEvent::FciAdapterReset { adapter } => {
                EventRef::FciAdapterReset { adapter: *adapter }
            }
            LogEvent::ScsiCmdAborted { device } => EventRef::ScsiCmdAborted { device: *device },
            LogEvent::ScsiSelectionTimeout { device } => {
                EventRef::ScsiSelectionTimeout { device: *device }
            }
            LogEvent::ScsiNoMorePaths { device } => EventRef::ScsiNoMorePaths { device: *device },
            LogEvent::ScsiPathFailover { device } => EventRef::ScsiPathFailover { device: *device },
            LogEvent::DiskMediumError { device, sector } => EventRef::DiskMediumError {
                device: *device,
                sector: *sector,
            },
            LogEvent::ScsiProtocolViolation { device } => {
                EventRef::ScsiProtocolViolation { device: *device }
            }
            LogEvent::ScsiSlowResponse { device, latency_ms } => EventRef::ScsiSlowResponse {
                device: *device,
                latency_ms: *latency_ms,
            },
            LogEvent::RaidDiskMissing { device, serial } => EventRef::RaidDiskMissing {
                device: *device,
                serial,
            },
            LogEvent::RaidDiskFailed { device, serial } => EventRef::RaidDiskFailed {
                device: *device,
                serial,
            },
            LogEvent::RaidProtocolError { device, serial } => EventRef::RaidProtocolError {
                device: *device,
                serial,
            },
            LogEvent::RaidDiskSlow { device, serial } => EventRef::RaidDiskSlow {
                device: *device,
                serial,
            },
            LogEvent::CfgSystem {
                class,
                disk_model,
                shelf_model,
                paths,
                layout,
            } => EventRef::CfgSystem {
                class: *class,
                disk_model: *disk_model,
                shelf_model: *shelf_model,
                paths: *paths,
                layout: *layout,
            },
            LogEvent::CfgShelf {
                shelf,
                model,
                fc_loop,
                adapter,
                position,
                bays,
            } => EventRef::CfgShelf {
                shelf: *shelf,
                model: *model,
                fc_loop: *fc_loop,
                adapter: *adapter,
                position: *position,
                bays: *bays,
            },
            LogEvent::CfgRaidGroup {
                rg,
                raid_type,
                slots,
            } => EventRef::CfgRaidGroup {
                rg: *rg,
                raid_type: *raid_type,
                slots: SlotsRef::Slice(slots),
            },
            LogEvent::CfgDiskInstall {
                serial,
                model,
                slot,
                device,
            } => EventRef::CfgDiskInstall {
                serial,
                model: *model,
                slot: *slot,
                device: *device,
            },
            LogEvent::CfgDiskRemove { serial, reason } => {
                EventRef::CfgDiskRemove { serial, reason }
            }
        }
    }

    /// The interned tag for this event's variant.
    pub fn tag(&self) -> TagId {
        match self {
            EventRef::FciDeviceTimeout { .. } => TagId::FciDeviceTimeout,
            EventRef::FciAdapterReset { .. } => TagId::FciAdapterReset,
            EventRef::ScsiCmdAborted { .. } => TagId::ScsiCmdAborted,
            EventRef::ScsiSelectionTimeout { .. } => TagId::ScsiSelectionTimeout,
            EventRef::ScsiNoMorePaths { .. } => TagId::ScsiNoMorePaths,
            EventRef::ScsiPathFailover { .. } => TagId::ScsiPathFailover,
            EventRef::DiskMediumError { .. } => TagId::DiskMediumError,
            EventRef::ScsiProtocolViolation { .. } => TagId::ScsiProtocolViolation,
            EventRef::ScsiSlowResponse { .. } => TagId::ScsiSlowResponse,
            EventRef::RaidDiskMissing { .. } => TagId::RaidDiskMissing,
            EventRef::RaidDiskFailed { .. } => TagId::RaidDiskFailed,
            EventRef::RaidProtocolError { .. } => TagId::RaidProtocolError,
            EventRef::RaidDiskSlow { .. } => TagId::RaidDiskSlow,
            EventRef::CfgSystem { .. } => TagId::CfgSystem,
            EventRef::CfgShelf { .. } => TagId::CfgShelf,
            EventRef::CfgRaidGroup { .. } => TagId::CfgRaidGroup,
            EventRef::CfgDiskInstall { .. } => TagId::CfgDiskInstall,
            EventRef::CfgDiskRemove { .. } => TagId::CfgDiskRemove,
        }
    }
}

/// Borrowed twin of [`LogLine`]: one parsed line whose event borrows
/// from the input text. The lifetime ties the view to the chunk buffer
/// (or mmap'd segment) it was parsed from.
#[derive(Debug, Clone, Copy)]
pub struct LogLineRef<'a> {
    /// The storage system that emitted the line.
    pub host: SystemId,
    /// When the line was emitted.
    pub at: SimTime,
    /// The interned subsystem tag.
    pub tag: TagId,
    /// The typed event, borrowing its strings from the line.
    pub event: EventRef<'a>,
}

impl<'a> LogLineRef<'a> {
    /// Parses one rendered line without allocating.
    ///
    /// Accepts and rejects exactly the inputs [`LogLine::parse`] does —
    /// including the severity cross-check (severity is a function of the
    /// tag, so the interned [`TagId::severity`] stands in for the owned
    /// parser's post-parse `event.severity()` comparison).
    pub fn parse(line: &'a str) -> Option<LogLineRef<'a>> {
        if let Some(view) = Self::parse_canonical(line) {
            return Some(view);
        }
        let line = line.trim_end();
        let (host_tok, rest) = line.split_once(' ')?;
        let host = SystemId(host_tok.strip_prefix("sys-")?.parse().ok()?);
        let rest = rest.trim_start();
        let bracket = rest.find('[')?;
        let ts_text = rest[..bracket].trim();
        let at = SimTime::parse_log_timestamp(ts_text)?;
        let rest = &rest[bracket + 1..];
        let close = rest.find("]: ")?;
        let (tag_text, severity_tag) = rest[..close].rsplit_once(':')?;
        let severity = Severity::from_tag(severity_tag)?;
        let message = &rest[close + 3..];
        let tag = TagId::lookup(tag_text)?;
        let event = EventRef::parse(tag, message)?;
        if tag.severity() != severity {
            return None;
        }
        Some(LogLineRef {
            host,
            at,
            tag,
            event,
        })
    }

    /// Single-byte-walk fast path for the renderer's exact line layout:
    /// `sys-D Www Mmm dd HH:MM:SS TZm yyyy [tag:sev]: msg` with single
    /// separators and nothing trailing. Any deviation — extra spaces,
    /// trailing whitespace, a non-ASCII byte anywhere it would change
    /// tokenization — returns `None` so the general path above (the
    /// proven equivalent of the owned parser) makes the call.
    // lint: fast-path(LogLineRef::parse)
    fn parse_canonical(line: &'a str) -> Option<LogLineRef<'a>> {
        let b = line.as_bytes();
        // `trim_end` must be an identity: last byte ASCII and non-space.
        // (Unicode whitespace ends in a 0x80+ byte, so this check covers
        // multi-byte trailers too.)
        let &last = b.last()?;
        if last >= 0x80 || ascii_space(last) {
            return None;
        }
        let rest = b.strip_prefix(b"sys-")?;
        let (host, rest) = strip_u32(rest)?;
        let rest = rest.strip_prefix(b" ")?;
        // The timestamp region is exactly 28 canonical bytes followed by
        // ` [`; `SimTime::parse_log_timestamp` re-checks the layout and
        // bails (to the general path) on anything non-canonical. The `[`
        // scan keeps the general parser's bracket search honest: its
        // `find('[')` must land on byte 29, not inside a free-content
        // weekday/timezone token.
        if rest.len() < 30 || rest[28] != b' ' || rest[29] != b'[' || rest[..28].contains(&b'[') {
            return None;
        }
        let ts = std::str::from_utf8(&rest[..28]).ok()?;
        let at = SimTime::parse_log_timestamp(ts)?;
        let offset = line.len() - rest.len() + 30;
        let rest = &line[offset..];
        // First `]` must begin the `]: ` separator, and the bracket body
        // must hold exactly one `:` — the general parser splits on the
        // *last* colon, which only coincides with this reading in the
        // canonical single-colon case.
        let close = rest.find(']')?;
        let inside = &rest[..close];
        if !rest[close..].starts_with("]: ") {
            return None;
        }
        let colon = inside.find(':')?;
        let (tag_text, severity_tag) = (&inside[..colon], &inside[colon + 1..]);
        if severity_tag.contains(':') {
            return None;
        }
        let severity = Severity::from_tag(severity_tag)?;
        let message = &rest[close + 3..];
        let tag = TagId::lookup(tag_text)?;
        let event = EventRef::parse(tag, message)?;
        if tag.severity() != severity {
            return None;
        }
        Some(LogLineRef {
            host: SystemId(host),
            at,
            tag,
            event,
        })
    }

    /// Converts the view into an owned [`LogLine`].
    // lint: alloc-ok delegates to EventRef::to_owned at the same boundary
    pub fn to_owned(&self) -> LogLine {
        LogLine {
            host: self.host,
            at: self.at,
            event: self.event.to_owned(),
        }
    }

    /// Borrows a view from an owned line.
    pub fn from_owned(line: &'a LogLine) -> LogLineRef<'a> {
        LogLineRef {
            host: line.host,
            at: line.at,
            tag: TagId::lookup(line.event.tag()).expect("owned tags always intern"),
            event: EventRef::from_owned(&line.event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LogEvent;
    use ssfa_model::DiskInstanceId;

    fn sample_lines() -> Vec<String> {
        let d = DeviceAddr::new(8, 24);
        let serial = DiskInstanceId(31337).serial();
        let events = vec![
            LogEvent::FciDeviceTimeout { device: d },
            LogEvent::FciAdapterReset { adapter: 8 },
            LogEvent::ScsiCmdAborted { device: d },
            LogEvent::ScsiSelectionTimeout { device: d },
            LogEvent::ScsiNoMorePaths { device: d },
            LogEvent::ScsiPathFailover { device: d },
            LogEvent::DiskMediumError {
                device: d,
                sector: 123_456_789,
            },
            LogEvent::ScsiProtocolViolation { device: d },
            LogEvent::ScsiSlowResponse {
                device: d,
                latency_ms: 30_000,
            },
            LogEvent::RaidDiskMissing {
                device: d,
                serial: serial.clone(),
            },
            LogEvent::RaidDiskFailed {
                device: d,
                serial: serial.clone(),
            },
            LogEvent::RaidProtocolError {
                device: d,
                serial: serial.clone(),
            },
            LogEvent::RaidDiskSlow {
                device: d,
                serial: serial.clone(),
            },
            LogEvent::CfgSystem {
                class: SystemClass::MidRange,
                disk_model: DiskModelId::new('D', 2),
                shelf_model: ShelfModel::B,
                paths: PathConfig::DualPath,
                layout: LayoutPolicy::SpanShelves,
            },
            LogEvent::CfgShelf {
                shelf: ShelfId(1234),
                model: ShelfModel::C,
                fc_loop: LoopId(88),
                adapter: 9,
                position: 2,
                bays: 13,
            },
            LogEvent::CfgRaidGroup {
                rg: RaidGroupId(55),
                raid_type: RaidType::Raid6,
                slots: vec![
                    SlotAddr {
                        shelf: ShelfId(1),
                        bay: 0,
                    },
                    SlotAddr {
                        shelf: ShelfId(2),
                        bay: 7,
                    },
                ],
            },
            LogEvent::CfgDiskInstall {
                serial: serial.clone(),
                model: DiskModelId::new('H', 2),
                slot: SlotAddr {
                    shelf: ShelfId(9),
                    bay: 13,
                },
                device: DeviceAddr::new(8, 45),
            },
            LogEvent::CfgDiskRemove {
                serial,
                reason: "failed".to_owned(),
            },
        ];
        events
            .into_iter()
            .map(|event| {
                LogLine::new(SystemId(42), SimTime::from_secs(79_876_543), event).to_string()
            })
            .collect()
    }

    #[test]
    fn borrowed_parse_matches_owned_parse_on_every_event_kind() {
        for text in sample_lines() {
            let owned = LogLine::parse(&text).expect("owned parser accepts rendered lines");
            let view = LogLineRef::parse(&text).expect("borrowed parser accepts rendered lines");
            assert_eq!(view.to_owned(), owned, "mismatch for: {text}");
            assert_eq!(view.tag.as_str(), owned.event.tag());
        }
    }

    #[test]
    fn borrowed_parse_rejects_what_the_owned_parser_rejects() {
        let cases = [
            "",
            "garbage line",
            "sys-x Sun Jul 23 05:43:36 PDT 2006 [a:info]: b",
            "sys-1 Sun Jul 23 05:43:36 PDT 2006 [unknown.tag:error]: whatever",
            // Severity mismatch.
            "sys-1 Sun Jul 23 05:43:36 PDT 2006 [fci.device.timeout:info]: \
             Adapter 8 encountered a device timeout on device 8.24",
            // Truncated payload.
            "sys-1 Sun Jul 23 05:43:36 PDT 2006 [raid.config.filesystem.disk.missing:info]: \
             File system Disk 8.24 S/N [",
            // Raid group with a malformed member pair.
            "sys-1 Sun Jul 23 05:43:36 PDT 2006 [cfg.raidgroup:info]: \
             rg=55 type=RAID6 slots=1:0,borked",
            // Empty member list.
            "sys-1 Sun Jul 23 05:43:36 PDT 2006 [cfg.raidgroup:info]: rg=55 type=RAID6 slots=",
        ];
        for text in cases {
            assert!(LogLine::parse(text).is_none(), "owned accepted: {text:?}");
            assert!(
                LogLineRef::parse(text).is_none(),
                "borrowed accepted: {text:?}"
            );
        }
    }

    #[test]
    fn duplicate_kv_tokens_are_last_wins_in_both_parsers() {
        let text = "sys-1 Sun Jul 23 05:43:36 PDT 2006 [cfg.disk.remove:info]: \
                    serial=3ELAAAAAAAA reason=study_end reason=failed";
        let owned = LogLine::parse(text).unwrap();
        let view = LogLineRef::parse(text).unwrap();
        assert_eq!(view.to_owned(), owned);
        match view.event {
            EventRef::CfgDiskRemove { reason, .. } => assert_eq!(reason, "failed"),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn from_owned_round_trips_through_to_owned() {
        for text in sample_lines() {
            let owned = LogLine::parse(&text).unwrap();
            let view = LogLineRef::from_owned(&owned);
            assert_eq!(view.to_owned(), owned);
        }
    }
}
