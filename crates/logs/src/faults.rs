//! Deterministic fault injection for shard corpora.
//!
//! Real AutoSupport archives are not clean: uploads get truncated, lines
//! get garbled in transit, serial numbers reference devices nobody ever
//! configured, and whole system bundles simply never arrive. The analysis
//! has to tolerate — and *account for* — that loss, the way the disk
//! population studies built on lossy field telemetry do. This module is
//! the adversary: a seedable [`FaultInjector`] that corrupts rendered
//! shard text with a configurable mix of faults, while keeping an exact
//! [`FaultLedger`] of what it did and what the classifier is therefore
//! expected to skip.
//!
//! Two properties make the harness usable as a test oracle:
//!
//! 1. **Determinism.** Every decision is drawn from an RNG derived from
//!    `(seed, shard)` alone — never from the worker thread, the attempt
//!    number, or wall-clock — so a run corrupts identically at any thread
//!    count, and a retried shard re-corrupts byte-identically.
//! 2. **Landed-fault accounting.** A fault only counts once it is
//!    guaranteed to have an observable effect. A bit flip that happens to
//!    leave the line parseable is re-rolled (and eventually recorded in
//!    [`FaultLedger::faults_not_landed`]), so
//!    [`FaultLedger::expect_malformed`] and
//!    [`FaultLedger::expect_missing_topology`] predict the lenient
//!    classifier's skip counters *exactly*, not approximately.
//!
//! Structural configuration records (`cfg.system`, `cfg.shelf`,
//! `cfg.raidgroup`) are immune to line corruption: destroying one would
//! cascade into an unpredictable number of `MissingTopology` skips on
//! every later event of that shelf or group, which breaks exact
//! accounting. Disk lifecycle records (`cfg.disk.install` / `.remove`)
//! and event lines carry no such downstream resolution dependency (bay
//! devices are pre-registered by their shelf record) and stay fair game.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ssfa_model::DeviceAddr;
use ssfa_sim::rng::derive;

use crate::event::{LogEvent, LogLine};

/// Domain separator folded into the fault seed so corruption streams never
/// collide with simulation or noise streams derived from the same run seed.
pub(crate) const FAULT_STREAM: u64 = 0xFA01_7500;

/// Device address rewritten into orphaned RAID events. Never declared by
/// any configuration record: shelf records pre-register targets
/// `position * 16 + bay` with per-loop positions and bays far below 16
/// each, so target 255 is unreachable for every fleet configuration.
const ORPHAN_DEVICE: DeviceAddr = DeviceAddr {
    adapter: 255,
    target: 255,
};

/// How many alternative mutations to try before declaring that a fault
/// could not land on a line (e.g. every candidate bit flip left the line
/// parseable — astronomically unlikely, but bounded).
const LANDING_ATTEMPTS: usize = 32;

/// Per-fault rates for one injection run. All line rates are per rendered
/// line, shard rates per shard; a single uniform draw per line picks at
/// most one line fault, so the line rates must sum to at most 1.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability a line gets one bit flipped (verified to make the line
    /// unparseable; structural `cfg.*` records are immune).
    pub bit_flip_per_line: f64,
    /// Probability a line is truncated at a random byte (verified
    /// unparseable; structural `cfg.*` records are immune).
    pub truncate_line_per_line: f64,
    /// Probability a line is emitted twice.
    pub duplicate_per_line: f64,
    /// Probability a line of non-UTF-8 garbage is inserted after a line.
    pub garbage_per_line: f64,
    /// Probability a RAID event line has its device rewritten to a device
    /// no configuration record ever declared (rate applies only to
    /// `raid.*` lines; other lines are unaffected by this draw).
    pub orphan_per_line: f64,
    /// Probability two adjacent non-`cfg` event lines are swapped.
    pub reorder_per_line: f64,
    /// Probability a whole shard is dropped (upload never arrived).
    pub drop_per_shard: f64,
    /// Probability a shard is cut short mid-line (truncated upload).
    pub truncate_per_shard: f64,
    /// Shards whose worker panics on **every** attempt (simulates a
    /// persistent classify bug → quarantine after the bounded retry).
    pub panic_shards: BTreeSet<usize>,
    /// Shards whose worker panics on the **first** attempt only
    /// (simulates a transient crash → the bounded retry succeeds).
    pub panic_once_shards: BTreeSet<usize>,
}

impl FaultSpec {
    /// No faults at all — the identity spec.
    pub fn none() -> FaultSpec {
        FaultSpec::default()
    }

    /// Every fault kind at the same `rate` (line faults per line, shard
    /// faults per shard), no panics.
    ///
    /// # Panics
    ///
    /// Panics if the implied line-fault total exceeds 1.
    pub fn uniform(rate: f64) -> FaultSpec {
        let spec = FaultSpec {
            bit_flip_per_line: rate,
            truncate_line_per_line: rate,
            duplicate_per_line: rate,
            garbage_per_line: rate,
            orphan_per_line: rate,
            reorder_per_line: rate,
            drop_per_shard: rate,
            truncate_per_shard: rate,
            panic_shards: BTreeSet::new(),
            panic_once_shards: BTreeSet::new(),
        };
        spec.validate();
        spec
    }

    /// Whether this spec can never alter anything.
    pub fn is_none(&self) -> bool {
        self.line_fault_total() == 0.0
            && self.reorder_per_line == 0.0
            && self.drop_per_shard == 0.0
            && self.truncate_per_shard == 0.0
            && self.panic_shards.is_empty()
            && self.panic_once_shards.is_empty()
    }

    fn line_fault_total(&self) -> f64 {
        self.bit_flip_per_line
            + self.truncate_line_per_line
            + self.duplicate_per_line
            + self.garbage_per_line
            + self.orphan_per_line
    }

    /// Asserts every rate is a probability and the single-draw line fault
    /// rates sum to at most 1.
    ///
    /// # Panics
    ///
    /// Panics when a rate is out of range.
    pub fn validate(&self) {
        for (name, rate) in [
            ("bit_flip_per_line", self.bit_flip_per_line),
            ("truncate_line_per_line", self.truncate_line_per_line),
            ("duplicate_per_line", self.duplicate_per_line),
            ("garbage_per_line", self.garbage_per_line),
            ("orphan_per_line", self.orphan_per_line),
            ("reorder_per_line", self.reorder_per_line),
            ("drop_per_shard", self.drop_per_shard),
            ("truncate_per_shard", self.truncate_per_shard),
        ] {
            assert!(
                (0.0..=1.0).contains(&rate),
                "{name} = {rate} is not a probability"
            );
        }
        assert!(
            self.line_fault_total() <= 1.0,
            "line fault rates sum to {} > 1",
            self.line_fault_total()
        );
    }
}

/// Exact record of what an injection run did — the oracle the degraded
/// pipeline's `RunHealth` is checked against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLedger {
    /// Shards the injector examined (processed or dropped).
    pub shards_seen: usize,
    /// Shards dropped whole.
    pub shards_dropped: usize,
    /// Shards cut short mid-corpus.
    pub shards_truncated: usize,
    /// Lines entering the injector across non-dropped shards.
    pub lines_in: u64,
    /// Lines leaving the injector — exactly what the classifier will see.
    pub lines_out: u64,
    /// Complete lines lost to shard truncation.
    pub lines_lost_truncation: u64,
    /// Bit flips that landed (line made unparseable).
    pub bit_flips: u64,
    /// Line truncations that landed (line made unparseable).
    pub line_truncations: u64,
    /// Lines emitted twice.
    pub lines_duplicated: u64,
    /// Adjacent event-line swaps applied.
    pub lines_reordered: u64,
    /// Non-UTF-8 garbage lines inserted.
    pub garbage_lines: u64,
    /// RAID events rewritten to reference an undeclared device.
    pub orphaned_refs: u64,
    /// Faults drawn that could not land (ineligible or revertible) and
    /// were skipped without effect.
    pub faults_not_landed: u64,
    /// Lines the lenient classifier must skip as `Malformed`.
    pub expect_malformed: u64,
    /// Lines the lenient classifier must skip as `MissingTopology`.
    pub expect_missing_topology: u64,
}

impl FaultLedger {
    /// Folds another ledger (e.g. a different shard's) into this one.
    pub fn merge(&mut self, other: &FaultLedger) {
        self.shards_seen += other.shards_seen;
        self.shards_dropped += other.shards_dropped;
        self.shards_truncated += other.shards_truncated;
        self.lines_in += other.lines_in;
        self.lines_out += other.lines_out;
        self.lines_lost_truncation += other.lines_lost_truncation;
        self.bit_flips += other.bit_flips;
        self.line_truncations += other.line_truncations;
        self.lines_duplicated += other.lines_duplicated;
        self.lines_reordered += other.lines_reordered;
        self.garbage_lines += other.garbage_lines;
        self.orphaned_refs += other.orphaned_refs;
        self.faults_not_landed += other.faults_not_landed;
        self.expect_malformed += other.expect_malformed;
        self.expect_missing_topology += other.expect_missing_topology;
    }

    /// Total faults that landed with an observable effect.
    pub fn faults_landed(&self) -> u64 {
        self.bit_flips
            + self.line_truncations
            + self.lines_duplicated
            + self.lines_reordered
            + self.garbage_lines
            + self.orphaned_refs
            + self.lines_lost_truncation
            + self.shards_dropped as u64
    }
}

/// What became of one shard after injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardFate {
    /// The (possibly mutated) shard bytes to feed the classifier.
    Processed(Vec<u8>),
    /// The shard never arrived; nothing to feed.
    Dropped,
}

/// The corruption engine: applies a [`FaultSpec`] to shard text with a
/// per-shard RNG derived from the run seed.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    spec: FaultSpec,
    seed: u64,
}

impl FaultInjector {
    /// An injector for one run.
    ///
    /// # Panics
    ///
    /// Panics if the spec's rates are invalid (see [`FaultSpec::validate`]).
    pub fn new(spec: FaultSpec, seed: u64) -> FaultInjector {
        spec.validate();
        FaultInjector { spec, seed }
    }

    /// The spec in effect.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Corrupts one shard's rendered text, recording every decision in
    /// `ledger`. Deterministic in `(seed, shard)`: the `attempt` number
    /// only controls the deliberate-panic faults, never the corruption
    /// stream, so a retried shard re-corrupts identically.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is listed in [`FaultSpec::panic_shards`], or in
    /// [`FaultSpec::panic_once_shards`] with `attempt == 0` — that *is*
    /// the fault being injected.
    pub fn corrupt_shard(
        &self,
        shard: usize,
        attempt: u32,
        text: &str,
        ledger: &mut FaultLedger,
    ) -> ShardFate {
        if self.spec.panic_shards.contains(&shard)
            || (attempt == 0 && self.spec.panic_once_shards.contains(&shard))
        {
            panic!("fault injection: deliberate worker panic on shard {shard} (attempt {attempt})");
        }

        let mut rng = StdRng::seed_from_u64(derive(derive(self.seed, FAULT_STREAM), shard as u64));
        ledger.shards_seen += 1;

        if rng.gen_bool(self.spec.drop_per_shard) {
            ledger.shards_dropped += 1;
            return ShardFate::Dropped;
        }

        let mut lines: Vec<Vec<u8>> = text
            .split('\n')
            .filter(|l| !l.is_empty())
            .map(|l| l.as_bytes().to_vec())
            .collect();
        ledger.lines_in += lines.len() as u64;

        // Shard truncation first, so later per-line faults only ever touch
        // surviving lines (a fault on a line that then gets cut would leave
        // the ledger overcounting).
        let mut mangled_tail: Option<usize> = None;
        if lines.len() >= 2 && rng.gen_bool(self.spec.truncate_per_shard) {
            let cut = rng.gen_range(0..lines.len());
            let lost = (lines.len() - cut - 1) as u64;
            lines.truncate(cut + 1);
            let tail_landed = truncate_verified(&mut lines[cut], &mut rng);
            if lost > 0 || tail_landed {
                ledger.shards_truncated += 1;
                ledger.lines_lost_truncation += lost;
                if tail_landed {
                    ledger.expect_malformed += 1;
                    mangled_tail = Some(cut);
                }
            } else {
                ledger.faults_not_landed += 1;
            }
        }

        // Per-line faults: one uniform draw per line picks at most one
        // fault, so landed effects never compound on a single line.
        let s = &self.spec;
        let t_flip = s.bit_flip_per_line;
        let t_trunc = t_flip + s.truncate_line_per_line;
        let t_dup = t_trunc + s.duplicate_per_line;
        let t_garbage = t_dup + s.garbage_per_line;
        let t_orphan = t_garbage + s.orphan_per_line;

        let mut out: Vec<Vec<u8>> = Vec::with_capacity(lines.len());
        for (i, mut line) in lines.into_iter().enumerate() {
            if mangled_tail == Some(i) {
                out.push(line);
                continue;
            }
            let r: f64 = rng.gen();
            if r < t_flip {
                if corruptible(&line) && bit_flip_verified(&mut line, &mut rng) {
                    ledger.bit_flips += 1;
                    ledger.expect_malformed += 1;
                } else {
                    ledger.faults_not_landed += 1;
                }
            } else if r < t_trunc {
                if corruptible(&line) && truncate_verified(&mut line, &mut rng) {
                    ledger.line_truncations += 1;
                    ledger.expect_malformed += 1;
                } else {
                    ledger.faults_not_landed += 1;
                }
            } else if r < t_dup {
                ledger.lines_duplicated += 1;
                out.push(line.clone());
            } else if r < t_garbage {
                ledger.garbage_lines += 1;
                ledger.expect_malformed += 1;
                out.push(line);
                out.push(garbage_line(&mut rng));
                continue;
            } else if r < t_orphan {
                // A draw landing on a non-RAID line is not a fault — the
                // orphan rate is defined per RAID line.
                if let Some(orphaned) = orphan_raid_event(&line) {
                    line = orphaned;
                    ledger.orphaned_refs += 1;
                    ledger.expect_missing_topology += 1;
                }
            }
            out.push(line);
        }

        // Reorder pass: swap adjacent pairs only when both are parseable
        // non-`cfg` event lines, so a swap can never move a topology
        // declaration after an event that needs it.
        if s.reorder_per_line > 0.0 {
            for i in 0..out.len().saturating_sub(1) {
                if rng.gen_bool(s.reorder_per_line) {
                    if swappable(&out[i]) && swappable(&out[i + 1]) {
                        out.swap(i, i + 1);
                        ledger.lines_reordered += 1;
                    } else {
                        ledger.faults_not_landed += 1;
                    }
                }
            }
        }

        ledger.lines_out += out.len() as u64;
        let mut bytes = Vec::with_capacity(text.len() + 64);
        for line in &out {
            bytes.extend_from_slice(line);
            bytes.push(b'\n');
        }
        ShardFate::Processed(bytes)
    }
}

/// Domain separator for the wire-level fault stream, distinct from
/// [`FAULT_STREAM`] so corpus corruption and transport corruption drawn
/// from the same run seed never correlate.
pub(crate) const WIRE_FAULT_STREAM: u64 = 0xFA01_7501;

/// Per-frame rates for wire-level fault injection on a framed byte
/// stream (the `ssfad` ingest bus). These model the *transport* failure
/// domain the paper says dominates disks — interconnect and protocol
/// faults between producer and analyzer — rather than data corruption
/// inside a shard: every fault here is visible to (and survivable by)
/// the wire protocol's checksums, cursors, and reconnect machinery.
///
/// A single uniform draw per frame picks at most one fault, so the rates
/// must sum to at most 1 (validated like [`FaultSpec`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WireFaultSpec {
    /// Probability a frame is cut mid-transmission and the connection
    /// dropped (models a failing interconnect / abrupt peer death).
    pub cut_per_frame: f64,
    /// Probability the writer stalls before a frame for longer than the
    /// server's idle limit (models a hung HBA or wedged producer; the
    /// server must disconnect, not wait forever).
    pub stall_per_frame: f64,
    /// Probability a frame is transmitted twice (models retransmission
    /// by a confused transport; the receiver must not absorb it twice).
    pub duplicate_per_frame: f64,
    /// Probability a frame is swapped with its successor (models
    /// reordering across a multi-path transport).
    pub swap_per_frame: f64,
    /// Probability a burst of non-protocol garbage precedes the frame
    /// (models a desynchronized or noisy stream; the receiver must
    /// detect it by framing, not crash or mis-absorb).
    pub garbage_per_frame: f64,
}

impl WireFaultSpec {
    /// No wire faults — the identity spec.
    pub fn none() -> WireFaultSpec {
        WireFaultSpec::default()
    }

    /// Every wire fault kind at the same per-frame `rate`.
    ///
    /// # Panics
    ///
    /// Panics if the implied per-frame total exceeds 1.
    pub fn uniform(rate: f64) -> WireFaultSpec {
        let spec = WireFaultSpec {
            cut_per_frame: rate,
            stall_per_frame: rate,
            duplicate_per_frame: rate,
            swap_per_frame: rate,
            garbage_per_frame: rate,
        };
        spec.validate();
        spec
    }

    /// Whether this spec can never perturb the stream.
    pub fn is_none(&self) -> bool {
        self.total() == 0.0
    }

    fn total(&self) -> f64 {
        self.cut_per_frame
            + self.stall_per_frame
            + self.duplicate_per_frame
            + self.swap_per_frame
            + self.garbage_per_frame
    }

    /// Asserts every rate is a probability and the single-draw totals
    /// stay at most 1.
    ///
    /// # Panics
    ///
    /// Panics when a rate is out of range.
    pub fn validate(&self) {
        for (name, rate) in [
            ("cut_per_frame", self.cut_per_frame),
            ("stall_per_frame", self.stall_per_frame),
            ("duplicate_per_frame", self.duplicate_per_frame),
            ("swap_per_frame", self.swap_per_frame),
            ("garbage_per_frame", self.garbage_per_frame),
        ] {
            assert!(
                (0.0..=1.0).contains(&rate),
                "{name} = {rate} is not a probability"
            );
        }
        assert!(
            self.total() <= 1.0,
            "wire fault rates sum to {} > 1",
            self.total()
        );
    }
}

/// Exact record of the wire faults one sender injected — what the soak
/// test checks the daemon's recovery accounting against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireFaultLedger {
    /// Frames the planner examined.
    pub frames_planned: u64,
    /// Frames cut mid-transmission (each forces a disconnect).
    pub frames_cut: u64,
    /// Stalls inserted before a frame.
    pub stalls: u64,
    /// Frames transmitted twice.
    pub frames_duplicated: u64,
    /// Adjacent frame pairs swapped on the wire.
    pub frames_swapped: u64,
    /// Garbage bursts inserted between frames.
    pub garbage_bursts: u64,
}

impl WireFaultLedger {
    /// Folds another sender's ledger into this one.
    pub fn merge(&mut self, other: &WireFaultLedger) {
        self.frames_planned += other.frames_planned;
        self.frames_cut += other.frames_cut;
        self.stalls += other.stalls;
        self.frames_duplicated += other.frames_duplicated;
        self.frames_swapped += other.frames_swapped;
        self.garbage_bursts += other.garbage_bursts;
    }

    /// Total wire faults injected.
    pub fn faults_injected(&self) -> u64 {
        self.frames_cut
            + self.stalls
            + self.frames_duplicated
            + self.frames_swapped
            + self.garbage_bursts
    }
}

/// How one frame should be perturbed on the wire. Produced by
/// [`WireFaultInjector::plan_frame`]; interpreted by the sender (the
/// daemon's replay agent) because only the sender owns the socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireAction {
    /// Transmit the frame unmodified.
    Send,
    /// Transmit the frame twice, back to back.
    SendTwice,
    /// Transmit the frame, then transmit the *next* frame before this
    /// one would normally complete — i.e. swap this frame with its
    /// successor. The sender buffers one frame to honor this.
    SwapWithNext,
    /// Transmit only the first `cut_at` bytes of the frame, then drop
    /// the connection. `cut_at` is strictly inside the frame, so the
    /// receiver observes a mid-frame disconnect.
    CutAt(usize),
    /// Pause for at least the receiver's idle limit before transmitting
    /// the frame (a stalled writer; the sender sleeps, the receiver is
    /// expected to hang up).
    StallThenSend,
}

/// One frame's wire plan: optional garbage burst first, then the action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePlan {
    /// Non-protocol bytes to inject before the frame, if any. Never
    /// starts with a valid frame magic, so the receiver's framing layer
    /// is guaranteed to reject it.
    pub pre_garbage: Option<Vec<u8>>,
    /// How to transmit the frame itself.
    pub action: WireAction,
}

impl WirePlan {
    /// The no-fault plan.
    pub fn clean() -> WirePlan {
        WirePlan {
            pre_garbage: None,
            action: WireAction::Send,
        }
    }
}

/// Deterministic wire-fault planner: decisions are drawn from an RNG
/// derived from `(seed, connection attempt)` alone, advanced one draw per
/// frame, so a faulted run replays identically — and a frame that was cut
/// or stalled on attempt `n` is *not* automatically faulted again on
/// attempt `n + 1`, which is what lets a retrying sender converge instead
/// of looping on a deterministic poison frame.
#[derive(Debug, Clone)]
pub struct WireFaultInjector {
    spec: WireFaultSpec,
    seed: u64,
}

impl WireFaultInjector {
    /// An injector for one sender.
    ///
    /// # Panics
    ///
    /// Panics if the spec's rates are invalid (see
    /// [`WireFaultSpec::validate`]).
    pub fn new(spec: WireFaultSpec, seed: u64) -> WireFaultInjector {
        spec.validate();
        WireFaultInjector { spec, seed }
    }

    /// The spec in effect.
    pub fn spec(&self) -> &WireFaultSpec {
        &self.spec
    }

    /// The per-connection-attempt RNG: every frame sent on one attempt
    /// draws from this stream in order.
    pub fn attempt_rng(&self, attempt: u32) -> StdRng {
        StdRng::seed_from_u64(derive(
            derive(self.seed, WIRE_FAULT_STREAM),
            u64::from(attempt),
        ))
    }

    /// Plans one frame's transmission. `rng` must be the
    /// [`WireFaultInjector::attempt_rng`] for the current connection
    /// attempt, advanced only by this method; `frame_len` is the encoded
    /// frame's width (a cut lands strictly inside it); `last` suppresses
    /// `SwapWithNext` (there is no successor to swap with).
    pub fn plan_frame(
        &self,
        rng: &mut StdRng,
        frame_len: usize,
        last: bool,
        ledger: &mut WireFaultLedger,
    ) -> WirePlan {
        ledger.frames_planned += 1;
        let s = &self.spec;
        let t_cut = s.cut_per_frame;
        let t_stall = t_cut + s.stall_per_frame;
        let t_dup = t_stall + s.duplicate_per_frame;
        let t_swap = t_dup + s.swap_per_frame;
        let t_garbage = t_swap + s.garbage_per_frame;
        let r: f64 = rng.gen();
        if r < t_cut && frame_len >= 2 {
            ledger.frames_cut += 1;
            let cut_at = rng.gen_range(1..frame_len);
            return WirePlan {
                pre_garbage: None,
                action: WireAction::CutAt(cut_at),
            };
        }
        if r < t_stall {
            ledger.stalls += 1;
            return WirePlan {
                pre_garbage: None,
                action: WireAction::StallThenSend,
            };
        }
        if r < t_dup {
            ledger.frames_duplicated += 1;
            return WirePlan {
                pre_garbage: None,
                action: WireAction::SendTwice,
            };
        }
        if r < t_swap && !last {
            ledger.frames_swapped += 1;
            return WirePlan {
                pre_garbage: None,
                action: WireAction::SwapWithNext,
            };
        }
        if r < t_garbage {
            ledger.garbage_bursts += 1;
            return WirePlan {
                pre_garbage: Some(garbage_line(rng)),
                action: WireAction::Send,
            };
        }
        WirePlan::clean()
    }
}

/// Parses a candidate line if it is valid UTF-8 and a valid log line.
fn parse_line(raw: &[u8]) -> Option<LogLine> {
    LogLine::parse(std::str::from_utf8(raw).ok()?)
}

/// Whether a line may be destroyed without cascading into unpredictable
/// downstream skips: everything except the structural topology records.
fn corruptible(raw: &[u8]) -> bool {
    match parse_line(raw) {
        Some(line) => !matches!(
            line.event,
            LogEvent::CfgSystem { .. } | LogEvent::CfgShelf { .. } | LogEvent::CfgRaidGroup { .. }
        ),
        // Already unparseable (shouldn't happen for rendered corpora, but
        // be conservative): corrupting it further cannot change counts.
        None => false,
    }
}

/// Whether a line is blank once trimmed — blank lines are silently skipped
/// by the classifier, so a mutation must never produce one.
fn is_blank(raw: &[u8]) -> bool {
    raw.iter().all(u8::is_ascii_whitespace)
}

/// A mutated line "lands" when it is non-blank and no longer parses —
/// guaranteeing exactly one `Malformed` skip in the lenient classifier.
fn lands_as_malformed(raw: &[u8]) -> bool {
    !is_blank(raw) && parse_line(raw).is_none()
}

/// Flips one random bit so the line no longer parses. Returns `false` if
/// no candidate flip landed within the attempt budget.
fn bit_flip_verified(line: &mut [u8], rng: &mut StdRng) -> bool {
    for _ in 0..LANDING_ATTEMPTS {
        let idx = rng.gen_range(0..line.len());
        let bit = 1u8 << rng.gen_range(0u8..8);
        let flipped = line[idx] ^ bit;
        if flipped == b'\n' {
            continue; // must not split the line in two
        }
        let original = line[idx];
        line[idx] = flipped;
        if lands_as_malformed(line) {
            return true;
        }
        line[idx] = original;
    }
    false
}

/// Truncates the line at a random byte so it no longer parses. Returns
/// `false` if no cut landed within the attempt budget.
fn truncate_verified(line: &mut Vec<u8>, rng: &mut StdRng) -> bool {
    if line.len() < 2 {
        return false;
    }
    for _ in 0..LANDING_ATTEMPTS {
        let cut = rng.gen_range(1..line.len());
        if lands_as_malformed(&line[..cut]) {
            line.truncate(cut);
            return true;
        }
    }
    false
}

/// A short burst of non-UTF-8 bytes: guaranteed malformed (0xFF is never
/// valid in UTF-8) and newline-free.
fn garbage_line(rng: &mut StdRng) -> Vec<u8> {
    let len = rng.gen_range(4usize..=40);
    let mut bytes = Vec::with_capacity(len);
    bytes.push(0xFF);
    for _ in 1..len {
        bytes.push(rng.gen_range(0x80u8..=0xFE));
    }
    bytes
}

/// Rewrites a RAID event's device to [`ORPHAN_DEVICE`], which no
/// configuration record can declare — the classifier resolves it to a
/// guaranteed `MissingTopology`. Returns `None` for non-RAID lines.
fn orphan_raid_event(raw: &[u8]) -> Option<Vec<u8>> {
    let line = parse_line(raw)?;
    let event = match line.event {
        LogEvent::RaidDiskMissing { serial, .. } => LogEvent::RaidDiskMissing {
            device: ORPHAN_DEVICE,
            serial,
        },
        LogEvent::RaidDiskFailed { serial, .. } => LogEvent::RaidDiskFailed {
            device: ORPHAN_DEVICE,
            serial,
        },
        LogEvent::RaidProtocolError { serial, .. } => LogEvent::RaidProtocolError {
            device: ORPHAN_DEVICE,
            serial,
        },
        LogEvent::RaidDiskSlow { serial, .. } => LogEvent::RaidDiskSlow {
            device: ORPHAN_DEVICE,
            serial,
        },
        _ => return None,
    };
    Some(
        LogLine::new(line.host, line.at, event)
            .to_string()
            .into_bytes(),
    )
}

/// Whether a line may participate in a reorder swap: parseable and not a
/// configuration record of any kind.
fn swappable(raw: &[u8]) -> bool {
    parse_line(raw).is_some_and(|line| !line.event.tag().starts_with("cfg."))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, Classifier, Strictness};
    use crate::corpus::LogBook;
    use crate::render::{render_support_log, NoiseParams};
    use crate::shard::{render_system_log, ShardPlan};
    use crate::CascadeStyle;
    use ssfa_model::{Fleet, FleetConfig};
    use ssfa_sim::Simulator;

    fn shard_text(seed: u64, shard: usize) -> String {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.002), seed);
        let out = Simulator::default().run(&fleet, seed);
        let plan = ShardPlan::new(&fleet, &out);
        render_system_log(
            &fleet,
            &out,
            &plan,
            shard,
            CascadeStyle::RaidOnly,
            NoiseParams::none(),
            seed,
        )
        .to_text()
    }

    #[test]
    fn wire_zero_spec_plans_clean_frames() {
        let injector = WireFaultInjector::new(WireFaultSpec::none(), 9);
        let mut rng = injector.attempt_rng(0);
        let mut ledger = WireFaultLedger::default();
        for _ in 0..64 {
            assert_eq!(
                injector.plan_frame(&mut rng, 100, false, &mut ledger),
                WirePlan::clean()
            );
        }
        assert_eq!(ledger.frames_planned, 64);
        assert_eq!(ledger.faults_injected(), 0);
    }

    #[test]
    fn wire_plans_are_deterministic_per_attempt() {
        let injector = WireFaultInjector::new(WireFaultSpec::uniform(0.1), 42);
        let plan_all = |attempt: u32| {
            let mut rng = injector.attempt_rng(attempt);
            let mut ledger = WireFaultLedger::default();
            let plans: Vec<WirePlan> = (0..200)
                .map(|i| injector.plan_frame(&mut rng, 80 + i, i == 199, &mut ledger))
                .collect();
            (plans, ledger)
        };
        let (p0a, l0a) = plan_all(0);
        let (p0b, l0b) = plan_all(0);
        assert_eq!(p0a, p0b, "same attempt must replay identically");
        assert_eq!(l0a, l0b);
        let (p1, _) = plan_all(1);
        assert_ne!(p0a, p1, "attempts must draw from distinct streams");
    }

    #[test]
    fn wire_ledger_accounts_for_every_planned_fault() {
        let injector = WireFaultInjector::new(WireFaultSpec::uniform(0.08), 7);
        let mut rng = injector.attempt_rng(2);
        let mut ledger = WireFaultLedger::default();
        let mut counted = WireFaultLedger::default();
        for i in 0..500usize {
            let plan = injector.plan_frame(&mut rng, 120, i == 499, &mut ledger);
            if plan.pre_garbage.is_some() {
                counted.garbage_bursts += 1;
            }
            match plan.action {
                WireAction::Send => {}
                WireAction::SendTwice => counted.frames_duplicated += 1,
                WireAction::SwapWithNext => {
                    assert!(i < 499, "last frame must never swap");
                    counted.frames_swapped += 1;
                }
                WireAction::CutAt(at) => {
                    assert!(
                        (1..120).contains(&at),
                        "cut must land strictly inside the frame"
                    );
                    counted.frames_cut += 1;
                }
                WireAction::StallThenSend => counted.stalls += 1,
            }
        }
        assert_eq!(ledger.frames_planned, 500);
        assert_eq!(ledger.frames_cut, counted.frames_cut);
        assert_eq!(ledger.stalls, counted.stalls);
        assert_eq!(ledger.frames_duplicated, counted.frames_duplicated);
        assert_eq!(ledger.frames_swapped, counted.frames_swapped);
        assert_eq!(ledger.garbage_bursts, counted.garbage_bursts);
        assert!(
            ledger.faults_injected() > 0,
            "an 0.08-uniform spec over 500 frames should land faults"
        );
    }

    #[test]
    fn wire_garbage_never_opens_with_frame_magic() {
        let spec = WireFaultSpec {
            garbage_per_frame: 1.0,
            ..WireFaultSpec::default()
        };
        let injector = WireFaultInjector::new(spec, 3);
        let mut rng = injector.attempt_rng(0);
        let mut ledger = WireFaultLedger::default();
        for _ in 0..100 {
            let plan = injector.plan_frame(&mut rng, 64, false, &mut ledger);
            let garbage = plan.pre_garbage.expect("rate 1.0 must always inject");
            assert!(!garbage.starts_with(&crate::frame::FRAME_MAGIC));
        }
        assert_eq!(ledger.garbage_bursts, 100);
    }

    #[test]
    fn zero_spec_is_identity() {
        let text = shard_text(3, 0);
        let injector = FaultInjector::new(FaultSpec::none(), 7);
        let mut ledger = FaultLedger::default();
        match injector.corrupt_shard(0, 0, &text, &mut ledger) {
            ShardFate::Processed(bytes) => assert_eq!(bytes, text.as_bytes()),
            ShardFate::Dropped => panic!("zero spec dropped a shard"),
        }
        assert_eq!(ledger.faults_landed(), 0);
        assert_eq!(ledger.lines_in, ledger.lines_out);
    }

    #[test]
    fn corruption_is_deterministic_and_attempt_independent() {
        let text = shard_text(5, 1);
        let injector = FaultInjector::new(FaultSpec::uniform(0.05), 11);
        let mut l1 = FaultLedger::default();
        let mut l2 = FaultLedger::default();
        let a = injector.corrupt_shard(1, 0, &text, &mut l1);
        let b = injector.corrupt_shard(1, 3, &text, &mut l2);
        assert_eq!(
            a, b,
            "attempt number must not perturb the corruption stream"
        );
        assert_eq!(l1, l2);
    }

    #[test]
    fn ledger_predicts_lenient_skip_counts_exactly() {
        for seed in [1u64, 2, 9] {
            let fleet = Fleet::build(&FleetConfig::paper().scaled(0.002), seed);
            let out = Simulator::default().run(&fleet, seed);
            let plan = ShardPlan::new(&fleet, &out);
            let injector = FaultInjector::new(FaultSpec::uniform(0.04), seed);
            for shard in 0..plan.shard_count() {
                let text = render_system_log(
                    &fleet,
                    &out,
                    &plan,
                    shard,
                    CascadeStyle::RaidOnly,
                    NoiseParams::none(),
                    seed,
                )
                .to_text();
                let mut ledger = FaultLedger::default();
                let bytes = match injector.corrupt_shard(shard, 0, &text, &mut ledger) {
                    ShardFate::Processed(bytes) => bytes,
                    ShardFate::Dropped => continue,
                };
                let mut classifier = Classifier::with_strictness(Strictness::Lenient);
                classifier.feed_bytes(&bytes).unwrap();
                let (_, health) = classifier.finish_with_health().unwrap();
                assert_eq!(health.lines_seen, ledger.lines_out, "shard {shard}");
                assert_eq!(
                    health.malformed_skipped, ledger.expect_malformed,
                    "shard {shard}"
                );
                assert_eq!(
                    health.missing_topology_skipped, ledger.expect_missing_topology,
                    "shard {shard}"
                );
            }
        }
    }

    #[test]
    fn orphan_rewrite_targets_an_undeclared_device() {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.002), 3);
        let out = Simulator::default().run(&fleet, 3);
        let book = render_support_log(&fleet, &out, CascadeStyle::RaidOnly);
        let input = classify(&LogBook::from_text(&book.to_text()).unwrap()).unwrap();
        assert!(
            !input
                .topology
                .device_to_slot
                .keys()
                .any(|(_, device)| *device == ORPHAN_DEVICE),
            "a fleet declared the orphan device; pick a different sentinel"
        );
    }

    #[test]
    #[should_panic(expected = "deliberate worker panic")]
    fn panic_shards_panic() {
        let spec = FaultSpec {
            panic_shards: BTreeSet::from([4]),
            ..FaultSpec::none()
        };
        let injector = FaultInjector::new(spec, 0);
        let mut ledger = FaultLedger::default();
        let _ = injector.corrupt_shard(4, 0, "x\n", &mut ledger);
    }

    #[test]
    fn panic_once_shards_recover_on_retry() {
        let spec = FaultSpec {
            panic_once_shards: BTreeSet::from([2]),
            ..FaultSpec::none()
        };
        let injector = FaultInjector::new(spec, 0);
        let text = shard_text(3, 2);
        let mut ledger = FaultLedger::default();
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut scratch = FaultLedger::default();
            injector.corrupt_shard(2, 0, &text, &mut scratch)
        }));
        assert!(first.is_err(), "attempt 0 must panic");
        match injector.corrupt_shard(2, 1, &text, &mut ledger) {
            ShardFate::Processed(bytes) => assert_eq!(bytes, text.as_bytes()),
            ShardFate::Dropped => panic!("retry dropped the shard"),
        }
    }
}
