//! The on-disk shard frame codec: one fixed-width binary header plus one
//! UTF-8 corpus-text payload per shard.
//!
//! This module is the **single** definition of what a well-formed frame
//! is. The corpus writer ([`crate::store::CorpusWriter`]), the verifier
//! ([`crate::store::CorpusReader::verify`]), and both disk-backed pipeline
//! sources decode through [`FrameHeader::parse`] and
//! [`FrameHeader::verify_payload`], so "corrupt" cannot mean different
//! things on different paths — the drift the duplicated-checksum bug
//! class produces (satellite of ISSUE 6).
//!
//! # Layout (version 1)
//!
//! All integers are **little-endian**. The header is exactly
//! [`HEADER_LEN`] = 36 bytes:
//!
//! | offset | size | field        | contents                                  |
//! |--------|------|--------------|-------------------------------------------|
//! | 0      | 4    | magic        | `b"SSFC"` ([`FRAME_MAGIC`])               |
//! | 4      | 4    | version      | `u32` = 1 ([`FRAME_VERSION`])             |
//! | 8      | 4    | system id    | `u32` owning-system id                    |
//! | 12     | 8    | line count   | `u64` rendered log lines in the payload   |
//! | 20     | 8    | payload len  | `u64` payload bytes following the header  |
//! | 28     | 8    | checksum     | `u64` FNV-1a over bytes 0..28 ++ payload  |
//!
//! The payload is the shard's rendered corpus text
//! ([`crate::LogBook::to_text`]), newline-terminated UTF-8.
//!
//! # Corruption detection
//!
//! The checksum covers every header field *and* the payload, so a flip in
//! the length or identity fields is caught even when the payload is
//! intact. FNV-1a's update step (xor a byte, multiply by an odd prime) is
//! a bijection of the accumulator, so **any single flipped byte at a
//! fixed length is guaranteed — not just overwhelmingly likely — to
//! change the digest**: a flipped byte yields a different accumulator at
//! that step, and every later step is injective in the accumulator. That
//! is exactly the bit-rot fault model of [`crate::faults`]
//! (`FaultSpec::bitflip_rate`), and the property suite
//! (`crates/logs/tests/frame_props.rs`) proves the rejection end to end.

use std::fmt;

/// The four magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"SSFC";

/// The frame format version this build writes and accepts.
pub const FRAME_VERSION: u32 = 1;

/// Fixed header width in bytes.
pub const HEADER_LEN: usize = 36;

/// Bytes of the header covered by the checksum (everything before the
/// checksum field itself).
const CHECKSUMMED_PREFIX: usize = 28;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Streaming FNV-1a 64 digest — the corpus checksum.
///
/// Chosen over a CRC because the single-byte-flip guarantee is provable
/// from the update step alone (see the module docs) and the whole
/// implementation is four lines of dependency-free code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checksum(u64);

impl Checksum {
    /// A fresh digest at the FNV-1a offset basis.
    pub fn new() -> Checksum {
        Checksum(FNV_OFFSET)
    }

    /// Absorbs `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// The digest value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl Default for Checksum {
    fn default() -> Checksum {
        Checksum::new()
    }
}

/// One-shot digest of a byte string.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut c = Checksum::new();
    c.update(bytes);
    c.value()
}

/// A decoded (and structurally validated) frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Owning-system id of the shard in this frame.
    pub system_id: u32,
    /// Rendered log lines in the payload.
    pub line_count: u64,
    /// Payload bytes following the header.
    pub payload_len: u64,
    /// FNV-1a digest over the header's checksummed prefix and the payload.
    pub checksum: u64,
}

/// Everything that can be wrong with a frame, as a typed error with a
/// pinned `Display` rendering (the negative-path suite asserts the exact
/// messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes are not [`FRAME_MAGIC`].
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The version field names a format this build does not read.
    UnsupportedVersion {
        /// The version actually found.
        found: u32,
    },
    /// The byte stream ends before the frame does.
    Truncated {
        /// Which part of the frame was cut short.
        what: &'static str,
        /// Bytes the frame needed.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// The stored checksum does not match the recomputed digest.
    ChecksumMismatch {
        /// Digest stored in the header.
        stored: u64,
        /// Digest recomputed over header prefix + payload.
        computed: u64,
    },
    /// The payload passed its checksum but is not valid UTF-8 (cannot
    /// happen for frames this codec wrote; defends against hand-built
    /// frames).
    PayloadNotUtf8 {
        /// Byte offset of the first invalid sequence within the payload.
        at: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic { found } => {
                write!(
                    f,
                    "bad frame magic: expected {:02x?}, found {:02x?}",
                    FRAME_MAGIC, found
                )
            }
            FrameError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported frame version {found} (this build reads version {FRAME_VERSION})"
                )
            }
            FrameError::Truncated {
                what,
                needed,
                available,
            } => {
                write!(
                    f,
                    "truncated frame {what}: need {needed} bytes, have {available}"
                )
            }
            FrameError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "frame checksum mismatch: stored {stored:016x}, computed {computed:016x}"
                )
            }
            FrameError::PayloadNotUtf8 { at } => {
                write!(f, "frame payload is not UTF-8 (first invalid byte at {at})")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameHeader {
    /// Parses and structurally validates one header from the first
    /// [`HEADER_LEN`] bytes of `bytes`: magic, version, and width checks
    /// happen here; payload integrity needs
    /// [`FrameHeader::verify_payload`].
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] if fewer than [`HEADER_LEN`] bytes are
    /// available, [`FrameError::BadMagic`] /
    /// [`FrameError::UnsupportedVersion`] on field mismatches.
    pub fn parse(bytes: &[u8]) -> Result<FrameHeader, FrameError> {
        if bytes.len() < HEADER_LEN {
            return Err(FrameError::Truncated {
                what: "header",
                needed: HEADER_LEN as u64,
                available: bytes.len() as u64,
            });
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("fixed slice");
        if magic != FRAME_MAGIC {
            return Err(FrameError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("fixed slice"));
        if version != FRAME_VERSION {
            return Err(FrameError::UnsupportedVersion { found: version });
        }
        Ok(FrameHeader {
            system_id: u32::from_le_bytes(bytes[8..12].try_into().expect("fixed slice")),
            line_count: u64::from_le_bytes(bytes[12..20].try_into().expect("fixed slice")),
            payload_len: u64::from_le_bytes(bytes[20..28].try_into().expect("fixed slice")),
            checksum: u64::from_le_bytes(bytes[28..36].try_into().expect("fixed slice")),
        })
    }

    /// Serializes this header (recomputing nothing — the caller provides a
    /// consistent `checksum` via [`encode_frame`]).
    fn to_bytes(self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..4].copy_from_slice(&FRAME_MAGIC);
        out[4..8].copy_from_slice(&FRAME_VERSION.to_le_bytes());
        out[8..12].copy_from_slice(&self.system_id.to_le_bytes());
        out[12..20].copy_from_slice(&self.line_count.to_le_bytes());
        out[20..28].copy_from_slice(&self.payload_len.to_le_bytes());
        out[28..36].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }

    /// Recomputes the digest over this header's checksummed prefix and
    /// `payload`, and compares it to the stored checksum. This is *the*
    /// corruption check — every reader goes through it.
    ///
    /// # Errors
    ///
    /// [`FrameError::ChecksumMismatch`] with both digests on disagreement.
    pub fn verify_payload(&self, payload: &[u8]) -> Result<(), FrameError> {
        let computed = self.compute_checksum(payload);
        if computed != self.checksum {
            return Err(FrameError::ChecksumMismatch {
                stored: self.checksum,
                computed,
            });
        }
        Ok(())
    }

    /// The digest a frame with this header's fields and `payload` should
    /// carry.
    fn compute_checksum(&self, payload: &[u8]) -> u64 {
        let mut c = Checksum::new();
        c.update(&self.to_bytes()[..CHECKSUMMED_PREFIX]);
        c.update(payload);
        c.value()
    }

    /// Total encoded frame width: header plus payload.
    pub fn frame_len(&self) -> u64 {
        HEADER_LEN as u64 + self.payload_len
    }
}

/// Encodes one shard frame — header and payload — appending to `out`.
/// Returns the written header (whose `checksum` is what a manifest
/// records as the shard's digest).
pub fn encode_frame(
    out: &mut Vec<u8>,
    system_id: u32,
    line_count: u64,
    payload: &[u8],
) -> FrameHeader {
    let mut header = FrameHeader {
        system_id,
        line_count,
        payload_len: payload.len() as u64,
        checksum: 0,
    };
    header.checksum = header.compute_checksum(payload);
    out.extend_from_slice(&header.to_bytes());
    out.extend_from_slice(payload);
    header
}

/// Decodes one frame from the front of `bytes`, borrowing the payload —
/// the zero-copy entry point the mmap-backed source reads through.
/// Trailing bytes after the frame are allowed (frames are concatenated
/// inside segment files); the consumed width is `header.frame_len()`.
///
/// # Errors
///
/// Any [`FrameError`]: structural header errors from
/// [`FrameHeader::parse`], [`FrameError::Truncated`] when the payload
/// runs past `bytes`, and [`FrameError::ChecksumMismatch`] from
/// [`FrameHeader::verify_payload`].
pub fn decode_frame(bytes: &[u8]) -> Result<(FrameHeader, &[u8]), FrameError> {
    let header = FrameHeader::parse(bytes)?;
    let end = header.frame_len();
    if (bytes.len() as u64) < end {
        return Err(FrameError::Truncated {
            what: "payload",
            needed: header.payload_len,
            available: bytes.len() as u64 - HEADER_LEN as u64,
        });
    }
    let payload = &bytes[HEADER_LEN..end as usize];
    header.verify_payload(payload)?;
    Ok((header, payload))
}

/// [`decode_frame`], then checks the payload is UTF-8 and returns it as
/// `&str` — what corpus readers feed the line parser, with no
/// intermediate `String`.
///
/// # Errors
///
/// As [`decode_frame`], plus [`FrameError::PayloadNotUtf8`].
pub fn decode_frame_text(bytes: &[u8]) -> Result<(FrameHeader, &str), FrameError> {
    let (header, payload) = decode_frame(bytes)?;
    let text = std::str::from_utf8(payload).map_err(|e| FrameError::PayloadNotUtf8 {
        at: e.valid_up_to(),
    })?;
    Ok((header, text))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Vec<u8> {
        let mut out = Vec::new();
        encode_frame(&mut out, 42, 3, b"line a\nline b\nline c\n");
        out
    }

    #[test]
    fn encode_decode_round_trip() {
        let frame = sample_frame();
        let (header, payload) = decode_frame(&frame).unwrap();
        assert_eq!(header.system_id, 42);
        assert_eq!(header.line_count, 3);
        assert_eq!(payload, b"line a\nline b\nline c\n");
        assert_eq!(header.frame_len() as usize, frame.len());
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let mut out = Vec::new();
        encode_frame(&mut out, 7, 0, b"");
        let (header, payload) = decode_frame(&out).unwrap();
        assert_eq!(header.payload_len, 0);
        assert!(payload.is_empty());
    }

    #[test]
    fn trailing_bytes_are_tolerated_by_decode() {
        let mut frame = sample_frame();
        let clean_len = frame.len();
        frame.extend_from_slice(b"next frame starts here");
        let (header, _) = decode_frame(&frame).unwrap();
        assert_eq!(header.frame_len() as usize, clean_len);
    }

    #[test]
    fn short_header_is_truncated() {
        let frame = sample_frame();
        let err = decode_frame(&frame[..HEADER_LEN - 1]).unwrap_err();
        assert_eq!(
            err.to_string(),
            "truncated frame header: need 36 bytes, have 35"
        );
    }

    #[test]
    fn short_payload_is_truncated() {
        let frame = sample_frame();
        let err = decode_frame(&frame[..frame.len() - 1]).unwrap_err();
        assert!(
            matches!(
                err,
                FrameError::Truncated {
                    what: "payload",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn wrong_magic_is_rejected_before_anything_else() {
        let mut frame = sample_frame();
        frame[0] = b'X';
        assert!(matches!(
            decode_frame(&frame),
            Err(FrameError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_is_rejected_without_checksum_recompute() {
        let mut frame = sample_frame();
        frame[4] = 2;
        assert_eq!(
            decode_frame(&frame).unwrap_err(),
            FrameError::UnsupportedVersion { found: 2 }
        );
    }

    #[test]
    fn payload_flip_fails_the_checksum() {
        let mut frame = sample_frame();
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert!(matches!(
            decode_frame(&frame),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn header_field_flip_fails_the_checksum() {
        // Flip a system-id byte: payload untouched, but the digest covers
        // the header prefix, so the mismatch is still caught.
        let mut frame = sample_frame();
        frame[8] ^= 0x80;
        assert!(matches!(
            decode_frame(&frame),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn non_utf8_payload_is_typed_not_panicked() {
        let mut out = Vec::new();
        encode_frame(&mut out, 1, 1, &[0x66, 0xFF, 0x67]);
        assert_eq!(
            decode_frame_text(&out).unwrap_err(),
            FrameError::PayloadNotUtf8 { at: 1 }
        );
    }

    #[test]
    fn checksum_is_streaming_equal_to_oneshot() {
        let mut c = Checksum::new();
        c.update(b"hello ");
        c.update(b"world");
        assert_eq!(c.value(), checksum64(b"hello world"));
    }
}
