//! Renders a simulated fleet's history into a support-log corpus.
//!
//! This is the bridge between the simulator's ground truth and the
//! analysis pipeline: configuration records at install time, disk
//! install/remove records as replacements happen, and a Figure-3-style
//! cascade per failure occurrence. The resulting [`LogBook`] is all the
//! analysis ever sees.

use ssfa_model::Fleet;
use ssfa_sim::SimOutput;

use crate::cascade::CascadeStyle;
use crate::corpus::LogBook;
use crate::shard::{render_system_log, ShardPlan};

/// Benign log noise: events healthy components emit without failing.
///
/// Real support logs are mostly noise — occasional remapped sectors on
/// disks that never die, transient FC timeouts that recover on retry.
/// Rendering noise makes the corpus realistic and gives failure
/// *predictors* (paper §7, future work) genuine false-positive pressure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseParams {
    /// Benign medium-error lines per disk-year.
    pub medium_errors_per_disk_year: f64,
    /// Recovered FC timeout lines per disk-year.
    pub transient_timeouts_per_disk_year: f64,
}

impl NoiseParams {
    /// No noise at all (the default corpus).
    pub fn none() -> Self {
        NoiseParams {
            medium_errors_per_disk_year: 0.0,
            transient_timeouts_per_disk_year: 0.0,
        }
    }

    /// A realistic noise floor: one remapped sector per ~3 disk-years and
    /// one recovered timeout per ~5 disk-years.
    pub fn realistic() -> Self {
        NoiseParams {
            medium_errors_per_disk_year: 0.35,
            transient_timeouts_per_disk_year: 0.2,
        }
    }
}

impl Default for NoiseParams {
    fn default() -> Self {
        NoiseParams::none()
    }
}

/// Renders the full support-log corpus for a simulated run.
///
/// The corpus contains, in chronological order:
/// 1. per-system configuration snapshots (`cfg.system`, `cfg.shelf`,
///    `cfg.raidgroup`) at system install time;
/// 2. `cfg.disk.install` / `cfg.disk.remove` records for every disk
///    instance lifecycle event;
/// 3. one event cascade per failure occurrence (masked occurrences render
///    their low-layer lines only).
pub fn render_support_log(fleet: &Fleet, output: &SimOutput, style: CascadeStyle) -> LogBook {
    render_support_log_noisy(fleet, output, style, NoiseParams::none(), 0)
}

/// [`render_support_log`] plus benign log noise at the given rates,
/// deterministic for `noise_seed`.
///
/// The monolithic corpus is *defined* as the chronological merge of the
/// per-system shards of [`crate::shard::render_system_log`] — one source
/// of truth, so the sharded streaming pipeline and this function can never
/// drift apart.
pub fn render_support_log_noisy(
    fleet: &Fleet,
    output: &SimOutput,
    style: CascadeStyle,
    noise: NoiseParams,
    noise_seed: u64,
) -> LogBook {
    let plan = ShardPlan::new(fleet, output);
    let mut book = LogBook::new();
    for shard in 0..plan.shard_count() {
        let piece = render_system_log(fleet, output, &plan, shard, style, noise, noise_seed);
        book.extend_lines(piece);
    }
    book.sort_chronological();
    book
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use ssfa_model::{FailureType, FleetConfig};
    use ssfa_sim::Simulator;

    fn small_run() -> (Fleet, SimOutput) {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.001), 21);
        let out = Simulator::default().run(&fleet, 21);
        (fleet, out)
    }

    #[test]
    fn corpus_round_trips_through_text() {
        let (fleet, out) = small_run();
        let book = render_support_log(&fleet, &out, CascadeStyle::Full);
        assert!(book.len() > fleet.disk_count());
        let text = book.to_text();
        let parsed = LogBook::from_text(&text).expect("every rendered line parses");
        assert_eq!(parsed.len(), book.len());
    }

    #[test]
    fn classifier_recovers_exactly_the_exposed_failures() {
        let (fleet, out) = small_run();
        let book = render_support_log(&fleet, &out, CascadeStyle::Full);
        let input = classify(&book).expect("classification succeeds");

        let mut truth = out.exposed_records();
        truth.sort_by(ssfa_model::FailureRecord::chronological);
        assert_eq!(
            input.failures, truth,
            "classifier must re-derive ground truth"
        );
    }

    #[test]
    fn classifier_recovers_disk_lifetimes() {
        let (fleet, out) = small_run();
        let book = render_support_log(&fleet, &out, CascadeStyle::Full);
        let input = classify(&book).unwrap();
        assert_eq!(input.lifetimes.len(), out.disks().len());
        let truth_years = out.total_disk_years();
        let got_years = input.total_disk_years();
        assert!(
            (got_years - truth_years).abs() / truth_years < 1e-6,
            "disk-years mismatch: {got_years} vs {truth_years}"
        );
    }

    #[test]
    fn raid_only_style_shrinks_the_corpus() {
        let (fleet, out) = small_run();
        let full = render_support_log(&fleet, &out, CascadeStyle::Full);
        let compact = render_support_log(&fleet, &out, CascadeStyle::RaidOnly);
        assert!(compact.len() < full.len());
        // Classification results are identical.
        let a = classify(&full).unwrap();
        let b = classify(&compact).unwrap();
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn noise_adds_lines_but_never_failures() {
        let (fleet, out) = small_run();
        let clean = render_support_log(&fleet, &out, CascadeStyle::RaidOnly);
        let noisy = render_support_log_noisy(
            &fleet,
            &out,
            CascadeStyle::RaidOnly,
            NoiseParams::realistic(),
            9,
        );
        assert!(
            noisy.len() > clean.len() + 100,
            "noise should add many lines"
        );
        // Classification is untouched: noise lines carry no RAID events.
        let a = classify(&clean).unwrap();
        let b = classify(&noisy).unwrap();
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.lifetimes.len(), b.lifetimes.len());
        // Noise volume tracks the configured rate.
        let noise_lines = noisy.len() - clean.len();
        let expected = a.total_disk_years() * 0.55;
        let ratio = noise_lines as f64 / expected;
        assert!(
            (0.8..1.2).contains(&ratio),
            "noise volume off: {noise_lines} vs {expected}"
        );
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let (fleet, out) = small_run();
        let a = render_support_log_noisy(
            &fleet,
            &out,
            CascadeStyle::RaidOnly,
            NoiseParams::realistic(),
            1,
        );
        let b = render_support_log_noisy(
            &fleet,
            &out,
            CascadeStyle::RaidOnly,
            NoiseParams::realistic(),
            1,
        );
        assert_eq!(a, b);
        let c = render_support_log_noisy(
            &fleet,
            &out,
            CascadeStyle::RaidOnly,
            NoiseParams::realistic(),
            2,
        );
        assert_ne!(a, c);
    }

    #[test]
    fn disk_cascades_carry_precursor_medium_errors() {
        let (fleet, out) = small_run();
        let book = render_support_log(&fleet, &out, CascadeStyle::Full);
        let disk_failures = out
            .occurrences()
            .iter()
            .filter(|o| o.failure_type == ssfa_model::FailureType::Disk)
            .count();
        let medium_errors = book
            .iter()
            .filter(|l| l.event.tag() == "disk.ioMediumError")
            .count();
        // Each failed disk announces itself with 3-5 precursors.
        assert!(medium_errors >= disk_failures * 3);
        assert!(medium_errors <= disk_failures * crate::cascade::PRECURSOR_OFFSETS.len());
    }

    #[test]
    fn masked_failures_never_appear_as_records() {
        let (fleet, out) = small_run();
        let masked_types: Vec<FailureType> = out
            .occurrences()
            .iter()
            .filter(|o| o.masked)
            .map(|o| o.failure_type)
            .collect();
        let book = render_support_log(&fleet, &out, CascadeStyle::Full);
        let input = classify(&book).unwrap();
        let exposed = out.exposed_records().len();
        assert_eq!(input.failures.len(), exposed);
        // If any masking happened, the corpus must contain failover lines.
        if !masked_types.is_empty() {
            let failovers = book
                .iter()
                .filter(|l| l.event.tag() == "scsi.path.failover")
                .count();
            assert_eq!(failovers, masked_types.len());
        }
    }
}
