//! Interned identifiers for the parse/classify hot path.
//!
//! Two small tables keep the per-line work allocation-free and
//! comparison-cheap:
//!
//! - [`TagId`]: the closed set of subsystem tags that can appear inside
//!   `[tag:severity]`. The borrowed parser resolves the tag text to a
//!   `TagId` once; every later decision (severity check, event-layout
//!   dispatch) is an integer compare instead of a string compare.
//! - [`HostInterner`]: maps [`SystemId`]s to dense `u32` bucket indices in
//!   first-appearance order. [`crate::classify_parallel`] buckets every
//!   line by emitting host; the interner answers that lookup from a flat
//!   vector (hosts are dense fleet indices) instead of hashing each id,
//!   with a one-entry cache for the run-of-same-host pattern shard-ordered
//!   corpora exhibit.

use ssfa_model::SystemId;

use crate::event::Severity;

/// Interned subsystem tag: one variant per tag string the support-log
/// format defines. `repr(u8)` so classifier dispatch is a jump table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TagId {
    /// `fci.device.timeout`
    FciDeviceTimeout,
    /// `fci.adapter.reset`
    FciAdapterReset,
    /// `scsi.cmd.abortedByHost`
    ScsiCmdAborted,
    /// `scsi.cmd.selectionTimeout`
    ScsiSelectionTimeout,
    /// `scsi.cmd.noMorePaths`
    ScsiNoMorePaths,
    /// `scsi.path.failover`
    ScsiPathFailover,
    /// `disk.ioMediumError`
    DiskMediumError,
    /// `scsi.cmd.protocolViolation`
    ScsiProtocolViolation,
    /// `scsi.cmd.slowResponse`
    ScsiSlowResponse,
    /// `raid.config.filesystem.disk.missing`
    RaidDiskMissing,
    /// `raid.config.filesystem.disk.failed`
    RaidDiskFailed,
    /// `raid.config.filesystem.disk.protocolError`
    RaidProtocolError,
    /// `raid.config.filesystem.disk.slow`
    RaidDiskSlow,
    /// `cfg.system`
    CfgSystem,
    /// `cfg.shelf`
    CfgShelf,
    /// `cfg.raidgroup`
    CfgRaidGroup,
    /// `cfg.disk.install`
    CfgDiskInstall,
    /// `cfg.disk.remove`
    CfgDiskRemove,
}

/// Every tag, for exhaustive table tests.
pub const ALL_TAGS: [TagId; 18] = [
    TagId::FciDeviceTimeout,
    TagId::FciAdapterReset,
    TagId::ScsiCmdAborted,
    TagId::ScsiSelectionTimeout,
    TagId::ScsiNoMorePaths,
    TagId::ScsiPathFailover,
    TagId::DiskMediumError,
    TagId::ScsiProtocolViolation,
    TagId::ScsiSlowResponse,
    TagId::RaidDiskMissing,
    TagId::RaidDiskFailed,
    TagId::RaidProtocolError,
    TagId::RaidDiskSlow,
    TagId::CfgSystem,
    TagId::CfgShelf,
    TagId::CfgRaidGroup,
    TagId::CfgDiskInstall,
    TagId::CfgDiskRemove,
];

impl TagId {
    /// Resolves tag text to its interned id. Returns `None` for unknown
    /// tags — exactly the lines [`crate::LogLine::parse`] rejects.
    pub fn lookup(tag: &str) -> Option<TagId> {
        Some(match tag {
            "fci.device.timeout" => TagId::FciDeviceTimeout,
            "fci.adapter.reset" => TagId::FciAdapterReset,
            "scsi.cmd.abortedByHost" => TagId::ScsiCmdAborted,
            "scsi.cmd.selectionTimeout" => TagId::ScsiSelectionTimeout,
            "scsi.cmd.noMorePaths" => TagId::ScsiNoMorePaths,
            "scsi.path.failover" => TagId::ScsiPathFailover,
            "disk.ioMediumError" => TagId::DiskMediumError,
            "scsi.cmd.protocolViolation" => TagId::ScsiProtocolViolation,
            "scsi.cmd.slowResponse" => TagId::ScsiSlowResponse,
            "raid.config.filesystem.disk.missing" => TagId::RaidDiskMissing,
            "raid.config.filesystem.disk.failed" => TagId::RaidDiskFailed,
            "raid.config.filesystem.disk.protocolError" => TagId::RaidProtocolError,
            "raid.config.filesystem.disk.slow" => TagId::RaidDiskSlow,
            "cfg.system" => TagId::CfgSystem,
            "cfg.shelf" => TagId::CfgShelf,
            "cfg.raidgroup" => TagId::CfgRaidGroup,
            "cfg.disk.install" => TagId::CfgDiskInstall,
            "cfg.disk.remove" => TagId::CfgDiskRemove,
            _ => return None,
        })
    }

    /// The tag text this id interns.
    pub fn as_str(self) -> &'static str {
        match self {
            TagId::FciDeviceTimeout => "fci.device.timeout",
            TagId::FciAdapterReset => "fci.adapter.reset",
            TagId::ScsiCmdAborted => "scsi.cmd.abortedByHost",
            TagId::ScsiSelectionTimeout => "scsi.cmd.selectionTimeout",
            TagId::ScsiNoMorePaths => "scsi.cmd.noMorePaths",
            TagId::ScsiPathFailover => "scsi.path.failover",
            TagId::DiskMediumError => "disk.ioMediumError",
            TagId::ScsiProtocolViolation => "scsi.cmd.protocolViolation",
            TagId::ScsiSlowResponse => "scsi.cmd.slowResponse",
            TagId::RaidDiskMissing => "raid.config.filesystem.disk.missing",
            TagId::RaidDiskFailed => "raid.config.filesystem.disk.failed",
            TagId::RaidProtocolError => "raid.config.filesystem.disk.protocolError",
            TagId::RaidDiskSlow => "raid.config.filesystem.disk.slow",
            TagId::CfgSystem => "cfg.system",
            TagId::CfgShelf => "cfg.shelf",
            TagId::CfgRaidGroup => "cfg.raidgroup",
            TagId::CfgDiskInstall => "cfg.disk.install",
            TagId::CfgDiskRemove => "cfg.disk.remove",
        }
    }

    /// The fixed severity every line carrying this tag renders with —
    /// agrees with [`crate::LogEvent::severity`] variant for variant
    /// (severity is a function of the tag alone).
    pub fn severity(self) -> Severity {
        match self {
            TagId::FciDeviceTimeout
            | TagId::ScsiCmdAborted
            | TagId::ScsiSelectionTimeout
            | TagId::ScsiNoMorePaths
            | TagId::ScsiProtocolViolation
            | TagId::RaidDiskFailed
            | TagId::RaidProtocolError => Severity::Error,
            TagId::DiskMediumError | TagId::ScsiSlowResponse | TagId::RaidDiskSlow => {
                Severity::Warning
            }
            _ => Severity::Info,
        }
    }
}

/// Hosts with ids below this are interned through the flat dense table;
/// anything larger (possible only in hand-crafted or corrupt corpora —
/// fleet ids are dense) falls back to the ordered map so a hostile id
/// cannot force a multi-gigabyte table.
const DENSE_HOST_CAP: usize = 1 << 20;

/// Sentinel for "host not yet interned" in the dense table.
const UNASSIGNED: u32 = u32::MAX;

/// Dense `SystemId -> u32` interner assigning bucket indices in
/// first-appearance order — the hashed `HashMap<SystemId, usize>` lookup
/// [`crate::classify_parallel`] used to pay per line, replaced by a
/// vector index plus a one-entry last-host cache.
#[derive(Debug, Default)]
pub struct HostInterner {
    dense: Vec<u32>,
    sparse: std::collections::BTreeMap<u32, u32>,
    len: u32,
    last: Option<(u32, u32)>,
}

impl HostInterner {
    /// An empty interner.
    pub fn new() -> HostInterner {
        HostInterner::default()
    }

    /// Number of distinct hosts interned so far.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no host has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `host`'s dense index, assigning the next free one
    /// (`self.len() - 1` after the call) on first appearance.
    pub fn intern(&mut self, host: SystemId) -> u32 {
        if let Some((last_host, last_id)) = self.last {
            if last_host == host.0 {
                return last_id;
            }
        }
        let id = if (host.0 as usize) < DENSE_HOST_CAP {
            let slot = host.0 as usize;
            if slot >= self.dense.len() {
                self.dense.resize(slot + 1, UNASSIGNED);
            }
            if self.dense[slot] == UNASSIGNED {
                self.dense[slot] = self.len;
                self.len += 1;
            }
            self.dense[slot]
        } else {
            let next = self.len;
            let id = *self.sparse.entry(host.0).or_insert(next);
            if id == next {
                self.len += 1;
            }
            id
        };
        self.last = Some((host.0, id));
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LogEvent, LogLine};
    use ssfa_model::{DeviceAddr, SimTime};

    #[test]
    fn tag_strings_round_trip_through_the_intern_table() {
        for tag in ALL_TAGS {
            assert_eq!(TagId::lookup(tag.as_str()), Some(tag));
        }
        assert_eq!(TagId::lookup("raid.config.filesystem.disk.unknown"), None);
        assert_eq!(TagId::lookup(""), None);
    }

    #[test]
    fn tag_severity_agrees_with_the_owned_event_severity() {
        // One representative owned event per tag; the interned severity
        // must match what the renderer would emit.
        let d = DeviceAddr::new(8, 24);
        let s = || "3EL00000042A".to_owned();
        let events = [
            LogEvent::FciDeviceTimeout { device: d },
            LogEvent::FciAdapterReset { adapter: 8 },
            LogEvent::ScsiCmdAborted { device: d },
            LogEvent::ScsiSelectionTimeout { device: d },
            LogEvent::ScsiNoMorePaths { device: d },
            LogEvent::ScsiPathFailover { device: d },
            LogEvent::DiskMediumError {
                device: d,
                sector: 7,
            },
            LogEvent::ScsiProtocolViolation { device: d },
            LogEvent::ScsiSlowResponse {
                device: d,
                latency_ms: 9,
            },
            LogEvent::RaidDiskMissing {
                device: d,
                serial: s(),
            },
            LogEvent::RaidDiskFailed {
                device: d,
                serial: s(),
            },
            LogEvent::RaidProtocolError {
                device: d,
                serial: s(),
            },
            LogEvent::RaidDiskSlow {
                device: d,
                serial: s(),
            },
        ];
        for event in events {
            let tag = TagId::lookup(event.tag()).expect("every rendered tag interns");
            assert_eq!(tag.severity(), event.severity(), "{}", event.tag());
        }
        // And the cfg records (all Info) via a rendered line round trip.
        let line = LogLine::new(
            SystemId(3),
            SimTime::from_secs(1000),
            LogEvent::CfgDiskRemove {
                serial: s(),
                reason: "failed".to_owned(),
            },
        );
        let tag = TagId::lookup(line.event.tag()).unwrap();
        assert_eq!(tag.severity(), Severity::Info);
    }

    #[test]
    fn interner_assigns_dense_ids_in_first_appearance_order() {
        let mut interner = HostInterner::new();
        assert!(interner.is_empty());
        assert_eq!(interner.intern(SystemId(7)), 0);
        assert_eq!(interner.intern(SystemId(7)), 0); // cached
        assert_eq!(interner.intern(SystemId(2)), 1);
        assert_eq!(interner.intern(SystemId(7)), 0); // back via dense table
        assert_eq!(interner.intern(SystemId(2)), 1);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn interner_survives_hostile_host_ids_without_a_huge_table() {
        let mut interner = HostInterner::new();
        assert_eq!(interner.intern(SystemId(u32::MAX - 1)), 0);
        assert_eq!(interner.intern(SystemId(0)), 1);
        assert_eq!(interner.intern(SystemId(u32::MAX - 1)), 0);
        assert_eq!(interner.len(), 2);
        assert!(interner.dense.len() <= 1);
    }
}
