//! The on-disk sharded corpus store: build once, analyze many times.
//!
//! A corpus directory holds the rendered support logs of one `(fleet,
//! seed)` run so analysis never has to re-simulate or re-render:
//!
//! ```text
//! corpus/
//!   MANIFEST            run metadata + shard index + per-shard digests
//!   segment-00000.seg   shard frames 0..segment_shards, concatenated
//!   segment-00001.seg   ...
//! ```
//!
//! Each shard (one system's self-contained log) is stored as one binary
//! frame — fixed-width header plus UTF-8 corpus text — defined by
//! [`crate::frame`]. Frames are packed into *segment* files of
//! [`CorpusWriter::segment_shards`] shards each, so a full-scale fleet
//! (~39k systems) is a few dozen files, not tens of thousands.
//!
//! The `MANIFEST` is line-oriented text: run parameters (seed, cascade
//! style, free-form `param` pairs recorded by the builder), then one
//! `shard` record per shard carrying its segment, byte offset, payload
//! length, line count, owning system, and FNV-1a digest. The digest in
//! the manifest and the checksum in the frame header are written from the
//! same [`crate::frame::encode_frame`] call and re-checked against each
//! other on every read, so tampering with either is caught
//! ([`CorpusError::DigestMismatch`]).
//!
//! Storage integrity is the corpus's whole job — bytes at rest rot
//! (Gray & van Ingen, MSR-TR-2005-166) — so every read path routes
//! through the one shared codec in [`crate::frame`]; see the
//! corruption-detection notes there.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ssfa_model::Fleet;
use ssfa_sim::SimOutput;

use crate::cascade::CascadeStyle;
use crate::corpus::{LogBook, LogError};
use crate::frame::{self, FrameError, FrameHeader, HEADER_LEN};
use crate::render::NoiseParams;
use crate::shard::{render_system_log, ShardPlan};

/// The manifest file name inside a corpus directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// The manifest format line this build writes and accepts.
pub const MANIFEST_VERSION_LINE: &str = "ssfa-corpus v1";

/// Default shards per segment file: a full-scale fleet (~39k systems)
/// packs into ~77 segment files of a few hundred MiB of text each.
pub const DEFAULT_SEGMENT_SHARDS: usize = 512;

/// Errors from corpus build, open, read, and verify, each with a pinned
/// `Display` rendering (the negative-path suite asserts exact messages).
#[derive(Debug)]
pub enum CorpusError {
    /// The directory holds no `MANIFEST` (an empty or non-corpus dir).
    MissingManifest {
        /// The manifest path that was not found.
        path: PathBuf,
    },
    /// The directory already holds a corpus and the writer refuses to
    /// clobber it.
    AlreadyExists {
        /// The existing manifest path.
        path: PathBuf,
    },
    /// A manifest line failed to parse or violated the layout invariants.
    Manifest {
        /// 1-based line number in the manifest.
        line_no: usize,
        /// What was wrong.
        what: String,
    },
    /// A frame failed to decode (bad magic, version, truncation, checksum).
    Frame {
        /// Shard index the frame belongs to.
        shard: usize,
        /// Segment file index holding it.
        segment: usize,
        /// The codec's typed error.
        source: FrameError,
    },
    /// The manifest's digest for a shard disagrees with the digest stored
    /// in the frame header (one of the two was tampered with).
    DigestMismatch {
        /// Shard index.
        shard: usize,
        /// Digest recorded in the manifest.
        manifest: u64,
        /// Checksum stored in the frame header.
        frame: u64,
    },
    /// A manifest field for a shard disagrees with the frame header.
    EntryMismatch {
        /// Shard index.
        shard: usize,
        /// Which field disagreed.
        field: &'static str,
        /// The manifest's value.
        manifest: u64,
        /// The frame's value.
        frame: u64,
    },
    /// A segment file continues past its last frame.
    TrailingBytes {
        /// Segment file index.
        segment: usize,
        /// How many bytes of trailing garbage follow the last frame.
        bytes: u64,
    },
    /// A shard payload passed its checksum but failed to parse as corpus
    /// text (deep verification only).
    Log(LogError),
    /// Underlying filesystem error.
    Io {
        /// What was being done.
        what: String,
        /// The OS error.
        source: io::Error,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::MissingManifest { path } => {
                write!(f, "corpus manifest not found: {}", path.display())
            }
            CorpusError::AlreadyExists { path } => {
                write!(
                    f,
                    "corpus directory already holds a manifest: {}",
                    path.display()
                )
            }
            CorpusError::Manifest { line_no, what } => {
                write!(f, "corpus manifest line {line_no}: {what}")
            }
            CorpusError::Frame {
                shard,
                segment,
                source,
            } => {
                write!(f, "corpus shard {shard} (segment {segment}): {source}")
            }
            CorpusError::DigestMismatch {
                shard,
                manifest,
                frame,
            } => {
                write!(
                    f,
                    "corpus shard {shard}: manifest digest {manifest:016x} disagrees with frame \
                     digest {frame:016x}"
                )
            }
            CorpusError::EntryMismatch {
                shard,
                field,
                manifest,
                frame,
            } => {
                write!(
                    f,
                    "corpus shard {shard}: manifest {field} {manifest} disagrees with frame \
                     {field} {frame}"
                )
            }
            CorpusError::TrailingBytes { segment, bytes } => {
                write!(
                    f,
                    "corpus segment {segment}: {bytes} trailing byte(s) after the last frame"
                )
            }
            CorpusError::Log(e) => write!(f, "corpus payload failed to parse: {e}"),
            CorpusError::Io { what, source } => {
                write!(f, "corpus i/o error ({what}): {source}")
            }
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Frame { source, .. } => Some(source),
            CorpusError::Log(e) => Some(e),
            CorpusError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<LogError> for CorpusError {
    fn from(e: LogError) -> Self {
        CorpusError::Log(e)
    }
}

fn io_err(what: impl Into<String>) -> impl FnOnce(io::Error) -> CorpusError {
    let what = what.into();
    move |source| CorpusError::Io { what, source }
}

/// One shard's record in the manifest index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardEntry {
    /// Segment file index holding the shard's frame.
    pub segment: usize,
    /// Byte offset of the frame (header start) within the segment file.
    pub offset: u64,
    /// Payload bytes of the frame.
    pub payload_len: u64,
    /// Rendered log lines in the payload (what quarantine accounting
    /// charges when the shard is lost — no re-render needed).
    pub line_count: u64,
    /// Owning system id.
    pub system_id: u32,
    /// FNV-1a digest, equal to the frame header's checksum.
    pub checksum: u64,
}

/// A parsed corpus manifest: the run's identity plus the shard index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Simulation/noise seed the corpus was rendered with.
    pub seed: u64,
    /// Cascade style of the rendered logs.
    pub style: CascadeStyle,
    /// Shards per segment file the writer used.
    pub segment_shards: usize,
    /// Free-form `(key, value)` parameters recorded by the builder
    /// (e.g. fleet scale).
    pub params: Vec<(String, String)>,
    /// Per-shard index, in shard (= fleet system) order.
    pub shards: Vec<ShardEntry>,
    /// Number of segment files.
    pub segments: usize,
    /// Total payload bytes across all shards.
    pub total_payload_bytes: u64,
}

pub(crate) fn style_name(style: CascadeStyle) -> &'static str {
    match style {
        CascadeStyle::Full => "full",
        CascadeStyle::RaidOnly => "raid-only",
    }
}

pub(crate) fn style_from_name(name: &str) -> Option<CascadeStyle> {
    match name {
        "full" => Some(CascadeStyle::Full),
        "raid-only" => Some(CascadeStyle::RaidOnly),
        _ => None,
    }
}

impl Manifest {
    /// Renders the manifest to its canonical text form (deterministic:
    /// the same corpus always serializes to identical bytes).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64 + self.shards.len() * 72);
        out.push_str(MANIFEST_VERSION_LINE);
        out.push('\n');
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "style {}", style_name(self.style));
        let _ = writeln!(out, "segment_shards {}", self.segment_shards);
        let _ = writeln!(out, "shards {}", self.shards.len());
        let _ = writeln!(out, "segments {}", self.segments);
        for (key, value) in &self.params {
            let _ = writeln!(out, "param {key} {value}");
        }
        for (i, e) in self.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "shard {i} {} {} {} {} {} {:016x}",
                e.segment, e.offset, e.payload_len, e.line_count, e.system_id, e.checksum,
            );
        }
        let _ = writeln!(out, "total_payload_bytes {}", self.total_payload_bytes);
        out
    }

    /// Parses a manifest, validating the layout invariants: shard records
    /// in order, frames abutting within each segment, segments used in
    /// order, and totals consistent.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Manifest`] with the offending line number.
    pub fn parse(text: &str) -> Result<Manifest, CorpusError> {
        let bad = |line_no: usize, what: String| CorpusError::Manifest { line_no, what };
        let mut lines = text.lines().enumerate();
        let (_, first) = lines
            .next()
            .ok_or_else(|| bad(1, "empty manifest".into()))?;
        if first != MANIFEST_VERSION_LINE {
            return Err(bad(
                1,
                format!("expected header `{MANIFEST_VERSION_LINE}`, found `{first}`"),
            ));
        }

        let mut seed = None;
        let mut style = None;
        let mut segment_shards = None;
        let mut declared_shards = None;
        let mut declared_segments = None;
        let mut params = Vec::new();
        let mut shards: Vec<ShardEntry> = Vec::new();
        let mut total = None;

        for (idx, raw) in lines {
            let line_no = idx + 1;
            let mut fields = raw.split_ascii_whitespace();
            let Some(key) = fields.next() else {
                continue; // blank line
            };
            let rest: Vec<&str> = fields.collect();
            let one = |what: &str| -> Result<&str, CorpusError> {
                if rest.len() == 1 {
                    Ok(rest[0])
                } else {
                    Err(bad(line_no, format!("`{key}` needs exactly one {what}")))
                }
            };
            match key {
                "seed" => {
                    seed = Some(one("integer")?.parse::<u64>().map_err(|_| {
                        bad(line_no, format!("`seed` is not an integer: {}", rest[0]))
                    })?);
                }
                "style" => {
                    let name = one("name")?;
                    style =
                        Some(style_from_name(name).ok_or_else(|| {
                            bad(line_no, format!("unknown cascade style `{name}`"))
                        })?);
                }
                "segment_shards" => {
                    let n = one("integer")?
                        .parse::<usize>()
                        .map_err(|_| bad(line_no, "`segment_shards` is not an integer".into()))?;
                    if n == 0 {
                        return Err(bad(line_no, "`segment_shards` must be positive".into()));
                    }
                    segment_shards = Some(n);
                }
                "shards" => {
                    declared_shards = Some(
                        one("integer")?
                            .parse::<usize>()
                            .map_err(|_| bad(line_no, "`shards` is not an integer".into()))?,
                    );
                }
                "segments" => {
                    declared_segments = Some(
                        one("integer")?
                            .parse::<usize>()
                            .map_err(|_| bad(line_no, "`segments` is not an integer".into()))?,
                    );
                }
                "param" => {
                    if rest.len() < 2 {
                        return Err(bad(line_no, "`param` needs a key and a value".into()));
                    }
                    params.push((rest[0].to_owned(), rest[1..].join(" ")));
                }
                "shard" => {
                    if rest.len() != 7 {
                        return Err(bad(
                            line_no,
                            format!("`shard` needs 7 fields, found {}", rest.len()),
                        ));
                    }
                    let num = |i: usize, what: &str| -> Result<u64, CorpusError> {
                        rest[i]
                            .parse::<u64>()
                            .map_err(|_| bad(line_no, format!("shard {what} is not an integer")))
                    };
                    let index = num(0, "index")? as usize;
                    if index != shards.len() {
                        return Err(bad(
                            line_no,
                            format!(
                                "shard records out of order: expected {}, found {index}",
                                shards.len()
                            ),
                        ));
                    }
                    let entry = ShardEntry {
                        segment: num(1, "segment")? as usize,
                        offset: num(2, "offset")?,
                        payload_len: num(3, "payload length")?,
                        line_count: num(4, "line count")?,
                        system_id: u32::try_from(num(5, "system id")?)
                            .map_err(|_| bad(line_no, "shard system id overflows u32".into()))?,
                        checksum: u64::from_str_radix(rest[6], 16)
                            .map_err(|_| bad(line_no, "shard digest is not hex".into()))?,
                    };
                    // Frames must tile their segment: a new segment starts
                    // at offset 0, and within a segment each frame abuts
                    // the previous frame's end.
                    let expected = match shards.last() {
                        Some(prev) if prev.segment == entry.segment => (
                            prev.segment,
                            prev.offset + HEADER_LEN as u64 + prev.payload_len,
                        ),
                        Some(prev) => (prev.segment + 1, 0),
                        None => (0, 0),
                    };
                    if (entry.segment, entry.offset) != expected {
                        return Err(bad(
                            line_no,
                            format!(
                                "shard {index} at segment {} offset {} does not abut the previous \
                                 frame (expected segment {} offset {})",
                                entry.segment, entry.offset, expected.0, expected.1,
                            ),
                        ));
                    }
                    shards.push(entry);
                }
                "total_payload_bytes" => {
                    total = Some(one("integer")?.parse::<u64>().map_err(|_| {
                        bad(line_no, "`total_payload_bytes` is not an integer".into())
                    })?);
                }
                other => {
                    return Err(bad(line_no, format!("unknown manifest key `{other}`")));
                }
            }
        }

        let require = |what: &str, ok: bool| -> Result<(), CorpusError> {
            if ok {
                Ok(())
            } else {
                Err(bad(0, format!("missing `{what}` record")))
            }
        };
        require("seed", seed.is_some())?;
        require("style", style.is_some())?;
        require("segment_shards", segment_shards.is_some())?;
        require("total_payload_bytes", total.is_some())?;
        let segments = shards.last().map_or(0, |e| e.segment + 1);
        if declared_shards != Some(shards.len()) {
            return Err(bad(
                0,
                format!(
                    "`shards` declares {:?} but {} shard records follow",
                    declared_shards,
                    shards.len()
                ),
            ));
        }
        if declared_segments != Some(segments) {
            return Err(bad(
                0,
                format!(
                    "`segments` declares {:?} but the shard records span {segments}",
                    declared_segments
                ),
            ));
        }
        let actual_total: u64 = shards.iter().map(|e| e.payload_len).sum();
        if total != Some(actual_total) {
            return Err(bad(
                0,
                format!(
                    "`total_payload_bytes` declares {:?} but the shard records sum to \
                     {actual_total}",
                    total
                ),
            ));
        }
        Ok(Manifest {
            seed: seed.expect("checked above"),
            style: style.expect("checked above"),
            segment_shards: segment_shards.expect("checked above"),
            params,
            shards,
            segments,
            total_payload_bytes: actual_total,
        })
    }
}

/// What a corpus build or verification walked: the summary printed by the
/// `ssfa corpus` CLI and asserted by the differential suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusSummary {
    /// Shards written or verified.
    pub shards: usize,
    /// Segment files.
    pub segments: usize,
    /// Total payload (rendered corpus text) bytes.
    pub payload_bytes: u64,
    /// Total rendered log lines.
    pub lines: u64,
}

impl fmt::Display for CorpusSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shard(s) in {} segment file(s), {} payload bytes, {} log lines",
            self.shards, self.segments, self.payload_bytes, self.lines
        )
    }
}

/// Segment file name for index `segment`.
pub fn segment_file_name(segment: usize) -> String {
    format!("segment-{segment:05}.seg")
}

/// Renders a seeded run to an on-disk sharded corpus: one frame per
/// system shard, packed into segment files, indexed by a `MANIFEST`.
///
/// The rendered bytes are exactly what the in-memory pipeline's
/// `SimSource` yields (cascade style from the builder, no benign noise,
/// noise stream keyed by the run seed), which is what makes disk-backed
/// analysis bit-identical to in-memory analysis — the differential suite
/// proves it.
#[derive(Debug, Clone)]
pub struct CorpusWriter {
    dir: PathBuf,
    segment_shards: usize,
    params: Vec<(String, String)>,
}

impl CorpusWriter {
    /// A writer targeting `dir` (created if absent) with
    /// [`DEFAULT_SEGMENT_SHARDS`] shards per segment file.
    pub fn new(dir: impl Into<PathBuf>) -> CorpusWriter {
        CorpusWriter {
            dir: dir.into(),
            segment_shards: DEFAULT_SEGMENT_SHARDS,
            params: Vec::new(),
        }
    }

    /// Sets how many shards each segment file packs.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn segment_shards(mut self, n: usize) -> CorpusWriter {
        assert!(n > 0, "segments must hold at least one shard");
        self.segment_shards = n;
        self
    }

    /// Records a free-form `(key, value)` parameter in the manifest
    /// (e.g. the fleet scale the builder used). Keys must be single
    /// tokens; values may contain spaces.
    #[must_use]
    pub fn param(mut self, key: impl Into<String>, value: impl Into<String>) -> CorpusWriter {
        let key = key.into();
        assert!(
            !key.is_empty() && !key.contains(char::is_whitespace),
            "param keys must be single non-empty tokens"
        );
        self.params.push((key, value.into()));
        self
    }

    /// Renders every shard of `(fleet, output)` and writes the corpus.
    /// Shards render in fleet system order with no benign noise and the
    /// noise stream keyed by `seed` — the same parameters the in-memory
    /// `SimSource` uses.
    ///
    /// The manifest is written last (via a temp file + rename), so a
    /// crashed build leaves a directory that readers reject as missing
    /// its manifest rather than a silently short corpus.
    ///
    /// # Errors
    ///
    /// [`CorpusError::AlreadyExists`] if `dir` already holds a manifest,
    /// otherwise [`CorpusError::Io`] on filesystem failures.
    pub fn write(
        &self,
        fleet: &Fleet,
        output: &SimOutput,
        style: CascadeStyle,
        seed: u64,
    ) -> Result<CorpusSummary, CorpusError> {
        let manifest_path = self.dir.join(MANIFEST_NAME);
        if manifest_path.exists() {
            return Err(CorpusError::AlreadyExists {
                path: manifest_path,
            });
        }
        std::fs::create_dir_all(&self.dir)
            .map_err(io_err(format!("create {}", self.dir.display())))?;

        let plan = ShardPlan::new(fleet, output);
        let n = plan.shard_count();
        let mut entries = Vec::with_capacity(n);
        let mut lines_total = 0u64;
        let mut frame_buf = Vec::new();
        let mut segment: Option<(usize, BufWriter<File>, u64)> = None;

        for shard in 0..n {
            let seg_index = shard / self.segment_shards;
            if segment.as_ref().map(|(i, _, _)| *i) != Some(seg_index) {
                self.finish_segment(segment.take())?;
                let path = self.dir.join(segment_file_name(seg_index));
                let file =
                    File::create(&path).map_err(io_err(format!("create {}", path.display())))?;
                segment = Some((seg_index, BufWriter::new(file), 0));
            }
            let (_, writer, offset) = segment.as_mut().expect("segment just opened");

            let book = render_system_log(
                fleet,
                output,
                &plan,
                shard,
                style,
                NoiseParams::none(),
                seed,
            );
            let text = book.to_text();
            let system_id = fleet.systems()[shard].id.0;
            frame_buf.clear();
            let header = frame::encode_frame(
                &mut frame_buf,
                system_id,
                book.len() as u64,
                text.as_bytes(),
            );
            writer
                .write_all(&frame_buf)
                .map_err(io_err(format!("write shard {shard}")))?;
            entries.push(ShardEntry {
                segment: seg_index,
                offset: *offset,
                payload_len: header.payload_len,
                line_count: header.line_count,
                system_id,
                checksum: header.checksum,
            });
            *offset += header.frame_len();
            lines_total += header.line_count;
        }
        self.finish_segment(segment.take())?;

        let manifest = Manifest {
            seed,
            style,
            segment_shards: self.segment_shards,
            params: self.params.clone(),
            shards: entries,
            segments: n.div_ceil(self.segment_shards),
            total_payload_bytes: 0, // recomputed below
        };
        let manifest = Manifest {
            total_payload_bytes: manifest.shards.iter().map(|e| e.payload_len).sum(),
            ..manifest
        };
        let tmp = self.dir.join("MANIFEST.tmp");
        std::fs::write(&tmp, manifest.to_text())
            .map_err(io_err(format!("write {}", tmp.display())))?;
        std::fs::rename(&tmp, &manifest_path)
            .map_err(io_err(format!("publish {}", manifest_path.display())))?;

        Ok(CorpusSummary {
            shards: manifest.shards.len(),
            segments: manifest.segments,
            payload_bytes: manifest.total_payload_bytes,
            lines: lines_total,
        })
    }

    /// Flushes and syncs a finished segment file.
    fn finish_segment(
        &self,
        segment: Option<(usize, BufWriter<File>, u64)>,
    ) -> Result<(), CorpusError> {
        if let Some((index, writer, _)) = segment {
            let file = writer.into_inner().map_err(|e| CorpusError::Io {
                what: format!("flush segment {index}"),
                source: e.into_error(),
            })?;
            file.sync_all()
                .map_err(io_err(format!("sync segment {index}")))?;
        }
        Ok(())
    }
}

/// Read access to an on-disk corpus: manifest metadata plus validated
/// per-shard reads. Opening parses only the manifest; shard payloads are
/// read (and integrity-checked) on demand.
#[derive(Debug)]
pub struct CorpusReader {
    dir: PathBuf,
    manifest: Manifest,
}

impl CorpusReader {
    /// Opens the corpus at `dir` by parsing its `MANIFEST`.
    ///
    /// # Errors
    ///
    /// [`CorpusError::MissingManifest`] when `dir` has no manifest (e.g.
    /// an empty directory), [`CorpusError::Manifest`] on parse failures,
    /// [`CorpusError::Io`] on filesystem errors.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CorpusReader, CorpusError> {
        let dir = dir.into();
        let path = dir.join(MANIFEST_NAME);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(CorpusError::MissingManifest { path });
            }
            Err(e) => return Err(io_err(format!("read {}", path.display()))(e)),
        };
        let manifest = Manifest::parse(&text)?;
        Ok(CorpusReader { dir, manifest })
    }

    /// The parsed manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shards in the corpus.
    pub fn shard_count(&self) -> usize {
        self.manifest.shards.len()
    }

    /// Path of segment file `segment`.
    pub fn segment_path(&self, segment: usize) -> PathBuf {
        self.dir.join(segment_file_name(segment))
    }

    /// Cross-checks a decoded frame header against the manifest's record
    /// for `shard` — the one place manifest/frame agreement is defined.
    /// Public so external readers over the same segment bytes (the
    /// mmap-backed pipeline source) apply the identical check instead of
    /// growing their own.
    ///
    /// # Errors
    ///
    /// [`CorpusError::DigestMismatch`] when the digests disagree,
    /// [`CorpusError::EntryMismatch`] when another field does.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn cross_check(&self, shard: usize, header: &FrameHeader) -> Result<(), CorpusError> {
        let entry = &self.manifest.shards[shard];
        if header.checksum != entry.checksum {
            return Err(CorpusError::DigestMismatch {
                shard,
                manifest: entry.checksum,
                frame: header.checksum,
            });
        }
        let fields: [(&'static str, u64, u64); 3] = [
            ("payload length", entry.payload_len, header.payload_len),
            ("line count", entry.line_count, header.line_count),
            (
                "system id",
                u64::from(entry.system_id),
                u64::from(header.system_id),
            ),
        ];
        for (field, manifest, frame) in fields {
            if manifest != frame {
                return Err(CorpusError::EntryMismatch {
                    shard,
                    field,
                    manifest,
                    frame,
                });
            }
        }
        Ok(())
    }

    /// Reads, integrity-checks, and returns one shard's corpus text via
    /// buffered positioned reads — the `FileSource` read path.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Frame`] when the frame is corrupt (truncation, bad
    /// magic/version, checksum mismatch),
    /// [`CorpusError::DigestMismatch`] / [`CorpusError::EntryMismatch`]
    /// when the frame disagrees with the manifest, [`CorpusError::Io`] on
    /// filesystem errors.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn read_shard_text(&self, shard: usize) -> Result<String, CorpusError> {
        let bytes = self.read_shard_frame(shard)?;
        let framed = |source| CorpusError::Frame {
            shard,
            segment: self.manifest.shards[shard].segment,
            source,
        };
        let (_, text) = frame::decode_frame_text(&bytes).map_err(framed)?;
        Ok(text.to_owned())
    }

    /// Reads and integrity-checks one shard's *encoded frame* — header and
    /// payload bytes exactly as they sit in the segment file. This is the
    /// replay path: the `ssfad` ingest protocol carries whole corpus
    /// frames, so an agent streams these bytes onto the wire verbatim
    /// without re-encoding (and therefore cannot re-encode *differently*).
    ///
    /// # Errors
    ///
    /// As [`CorpusReader::read_shard_text`], minus the UTF-8 check (the
    /// payload is not decoded here).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn read_shard_frame(&self, shard: usize) -> Result<Vec<u8>, CorpusError> {
        let entry = self.manifest.shards[shard];
        let path = self.segment_path(entry.segment);
        let mut file = File::open(&path).map_err(io_err(format!("open {}", path.display())))?;
        file.seek(SeekFrom::Start(entry.offset))
            .map_err(io_err(format!("seek shard {shard}")))?;

        let framed = |source| CorpusError::Frame {
            shard,
            segment: entry.segment,
            source,
        };
        // Read header + payload in one bounded read: what the manifest
        // says the frame occupies, and not a byte more.
        let want = HEADER_LEN as u64 + entry.payload_len;
        let mut bytes = Vec::with_capacity(want as usize);
        file.take(want)
            .read_to_end(&mut bytes)
            .map_err(io_err(format!("read shard {shard}")))?;
        let header = FrameHeader::parse(&bytes).map_err(framed)?;
        self.cross_check(shard, &header)?;
        frame::decode_frame(&bytes).map_err(framed)?;
        Ok(bytes)
    }

    /// Reads and parses one shard into a [`LogBook`].
    ///
    /// # Errors
    ///
    /// As [`CorpusReader::read_shard_text`], plus [`CorpusError::Log`] on
    /// parse failure.
    pub fn read_shard(&self, shard: usize) -> Result<LogBook, CorpusError> {
        Ok(LogBook::from_text(&self.read_shard_text(shard)?)?)
    }

    /// Walks the whole corpus validating every frame against its header
    /// checksum and its manifest record, and every segment file for
    /// trailing garbage. With `deep`, each payload is additionally parsed
    /// as corpus text and its line count re-checked — the `ssfa corpus
    /// verify --deep` mode.
    ///
    /// # Errors
    ///
    /// The first integrity violation found, as the same typed errors the
    /// read path raises — verification and reading share one codec, so
    /// they cannot disagree about what "corrupt" means.
    pub fn verify(&self, deep: bool) -> Result<CorpusSummary, CorpusError> {
        let mut lines = 0u64;
        let mut shard = 0usize;
        for segment in 0..self.manifest.segments {
            let path = self.segment_path(segment);
            let bytes = std::fs::read(&path).map_err(io_err(format!("read {}", path.display())))?;
            let mut offset = 0u64;
            while shard < self.manifest.shards.len()
                && self.manifest.shards[shard].segment == segment
            {
                let framed = |source| CorpusError::Frame {
                    shard,
                    segment,
                    source,
                };
                let (header, text) =
                    frame::decode_frame_text(&bytes[offset as usize..]).map_err(framed)?;
                self.cross_check(shard, &header)?;
                if deep {
                    let book = LogBook::from_text(text)?;
                    if book.len() as u64 != header.line_count {
                        return Err(CorpusError::EntryMismatch {
                            shard,
                            field: "parsed line count",
                            manifest: header.line_count,
                            frame: book.len() as u64,
                        });
                    }
                }
                lines += header.line_count;
                offset += header.frame_len();
                shard += 1;
            }
            if offset != bytes.len() as u64 {
                return Err(CorpusError::TrailingBytes {
                    segment,
                    bytes: bytes.len() as u64 - offset,
                });
            }
        }
        Ok(CorpusSummary {
            shards: self.manifest.shards.len(),
            segments: self.manifest.segments,
            payload_bytes: self.manifest.total_payload_bytes,
            lines,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssfa_model::FleetConfig;
    use ssfa_sim::Simulator;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("ssfa-store-test-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn small_run() -> (Fleet, SimOutput) {
        let fleet = Fleet::build(&FleetConfig::paper().scaled(0.001), 21);
        let out = Simulator::default().run(&fleet, 21);
        (fleet, out)
    }

    #[test]
    fn build_verify_and_read_back_round_trips() {
        let tmp = TempDir::new("roundtrip");
        let (fleet, out) = small_run();
        let summary = CorpusWriter::new(&tmp.0)
            .segment_shards(7)
            .param("scale", "0.001")
            .write(&fleet, &out, CascadeStyle::RaidOnly, 21)
            .unwrap();
        assert_eq!(summary.shards, fleet.systems().len());
        assert_eq!(summary.segments, fleet.systems().len().div_ceil(7));

        let reader = CorpusReader::open(&tmp.0).unwrap();
        assert_eq!(reader.shard_count(), summary.shards);
        assert_eq!(reader.manifest().seed, 21);
        assert_eq!(
            reader.manifest().params,
            vec![("scale".to_owned(), "0.001".to_owned())]
        );
        assert_eq!(reader.verify(true).unwrap(), summary);

        // Every shard reads back as exactly the book SimSource would load.
        let plan = ShardPlan::new(&fleet, &out);
        for shard in 0..reader.shard_count() {
            let expected = render_system_log(
                &fleet,
                &out,
                &plan,
                shard,
                CascadeStyle::RaidOnly,
                NoiseParams::none(),
                21,
            );
            assert_eq!(reader.read_shard(shard).unwrap(), expected, "shard {shard}");
        }
    }

    #[test]
    fn manifest_text_round_trips() {
        let tmp = TempDir::new("manifest");
        let (fleet, out) = small_run();
        CorpusWriter::new(&tmp.0)
            .param("scale", "0.001")
            .param("note", "two words")
            .write(&fleet, &out, CascadeStyle::Full, 3)
            .unwrap();
        let text = std::fs::read_to_string(tmp.0.join(MANIFEST_NAME)).unwrap();
        let manifest = Manifest::parse(&text).unwrap();
        assert_eq!(manifest.to_text(), text);
        assert_eq!(manifest.style, CascadeStyle::Full);
        assert_eq!(manifest.params[1].1, "two words");
    }

    #[test]
    fn writer_refuses_to_clobber_an_existing_corpus() {
        let tmp = TempDir::new("clobber");
        let (fleet, out) = small_run();
        let writer = CorpusWriter::new(&tmp.0);
        writer
            .write(&fleet, &out, CascadeStyle::RaidOnly, 1)
            .unwrap();
        let err = writer
            .write(&fleet, &out, CascadeStyle::RaidOnly, 1)
            .unwrap_err();
        assert!(matches!(err, CorpusError::AlreadyExists { .. }), "{err}");
    }

    #[test]
    fn corpus_bytes_are_deterministic() {
        let tmp_a = TempDir::new("det-a");
        let tmp_b = TempDir::new("det-b");
        let (fleet, out) = small_run();
        for dir in [&tmp_a.0, &tmp_b.0] {
            CorpusWriter::new(dir)
                .segment_shards(5)
                .write(&fleet, &out, CascadeStyle::RaidOnly, 21)
                .unwrap();
        }
        let names: Vec<String> = {
            let mut names: Vec<String> = std::fs::read_dir(&tmp_a.0)
                .unwrap()
                .map(|e| e.unwrap().file_name().into_string().unwrap())
                .collect();
            names.sort();
            names
        };
        assert!(names.contains(&MANIFEST_NAME.to_owned()));
        for name in names {
            let a = std::fs::read(tmp_a.0.join(&name)).unwrap();
            let b = std::fs::read(tmp_b.0.join(&name)).unwrap();
            assert_eq!(a, b, "{name} differs between identical builds");
        }
    }
}
