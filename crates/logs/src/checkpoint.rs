//! The on-disk checkpoint store: durable fold epochs over a corpus.
//!
//! A checkpoint directory persists the analysis fold state at *epoch*
//! boundaries (an epoch = a contiguous, abutting range of corpus
//! shards), so a later run can restore the last durable epoch and absorb
//! only the shards appended since:
//!
//! ```text
//! ckpt/
//!   CHECKPOINT          manifest: corpus identity + epoch index + digests
//!   epoch-00000.ckpt    one SSFC frame per epoch (payload = fold snapshot)
//!   epoch-00001.ckpt    ...
//! ```
//!
//! Every epoch payload travels in the same [`crate::frame`] codec the
//! corpus uses — FNV-1a-64 over header and payload, bijective update
//! step — so a single flipped bit in a checkpoint is rejected exactly
//! like a flipped bit in a corpus shard. The frame header's `system_id`
//! field carries the epoch index and `line_count` carries the epoch's
//! end shard; both are cross-checked against the manifest on every read
//! (tampering with either side is caught, mirroring
//! [`crate::store::CorpusReader::cross_check`]).
//!
//! The manifest additionally *keys* each epoch to the corpus it was
//! folded from: the corpus seed and style, plus a per-epoch FNV digest
//! over the covered corpus shards' own digests
//! ([`corpus_epoch_digest`]). Resume validates these before trusting a
//! snapshot — a checkpoint from a different corpus, or from a corpus
//! whose covered prefix was rebuilt, fails
//! [`CheckpointError::CorpusMismatch`] instead of silently double- or
//! mis-counting failures.
//!
//! Durability follows the corpus store's discipline: epoch frames are
//! written to a temp file, synced, and renamed into place, and the
//! manifest is rewritten via `CHECKPOINT.tmp` + atomic rename *after*
//! the epoch frame lands — a crash mid-write leaves the previous
//! manifest (and thus the previous durable epoch) intact.
//!
//! The store is payload-agnostic: snapshots are opaque bytes here. The
//! payload's own schema version (`ssfa_core::SNAPSHOT_VERSION`) is
//! recorded in the manifest so tooling can refuse early and humans can
//! see what a checkpoint holds.

use std::fmt;
use std::fs::File;
use std::io::{self, Read as _, Write as _};
use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::cascade::CascadeStyle;
use crate::frame::{self, Checksum, FrameError, HEADER_LEN};
use crate::store::{style_from_name, style_name, Manifest};

/// The manifest file name inside a checkpoint directory.
pub const CHECKPOINT_NAME: &str = "CHECKPOINT";

/// The manifest format line this build writes and accepts.
pub const CHECKPOINT_VERSION_LINE: &str = "ssfa-checkpoint v1";

/// Errors from checkpoint create, open, read, and verify, each with a
/// pinned `Display` rendering (the negative-path suite asserts exact
/// messages).
#[derive(Debug)]
pub enum CheckpointError {
    /// The directory holds no `CHECKPOINT` manifest.
    MissingManifest {
        /// The manifest path that was not found.
        path: PathBuf,
    },
    /// The directory already holds a checkpoint and `create` refuses to
    /// clobber it.
    AlreadyExists {
        /// The existing manifest path.
        path: PathBuf,
    },
    /// A manifest line failed to parse or violated the layout invariants.
    Manifest {
        /// 1-based line number in the manifest.
        line_no: usize,
        /// What was wrong.
        what: String,
    },
    /// An epoch frame failed to decode (bad magic, version, truncation,
    /// checksum).
    Frame {
        /// Epoch index the frame belongs to.
        epoch: usize,
        /// The codec's typed error.
        source: FrameError,
    },
    /// The manifest's digest for an epoch disagrees with the digest
    /// stored in the frame header (one of the two was tampered with).
    DigestMismatch {
        /// Epoch index.
        epoch: usize,
        /// Digest recorded in the manifest.
        manifest: u64,
        /// Checksum stored in the frame header.
        frame: u64,
    },
    /// A manifest field for an epoch disagrees with the frame header.
    EntryMismatch {
        /// Epoch index.
        epoch: usize,
        /// Which field disagreed.
        field: &'static str,
        /// The manifest's value.
        manifest: u64,
        /// The frame's value.
        frame: u64,
    },
    /// The checkpoint was folded from a different corpus than the one it
    /// is being resumed against (seed, style, shard coverage, or a
    /// covered shard's digest disagree).
    CorpusMismatch {
        /// Which identity field disagreed.
        what: String,
        /// The checkpoint's value.
        checkpoint: String,
        /// The corpus's value.
        corpus: String,
    },
    /// Underlying filesystem error.
    Io {
        /// What was being done.
        what: String,
        /// The OS error.
        source: io::Error,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::MissingManifest { path } => {
                write!(f, "checkpoint manifest not found: {}", path.display())
            }
            CheckpointError::AlreadyExists { path } => {
                write!(
                    f,
                    "checkpoint directory already holds a manifest: {}",
                    path.display()
                )
            }
            CheckpointError::Manifest { line_no, what } => {
                write!(f, "checkpoint manifest line {line_no}: {what}")
            }
            CheckpointError::Frame { epoch, source } => {
                write!(f, "checkpoint epoch {epoch}: {source}")
            }
            CheckpointError::DigestMismatch {
                epoch,
                manifest,
                frame,
            } => {
                write!(
                    f,
                    "checkpoint epoch {epoch}: manifest digest {manifest:016x} disagrees with \
                     frame digest {frame:016x}"
                )
            }
            CheckpointError::EntryMismatch {
                epoch,
                field,
                manifest,
                frame,
            } => {
                write!(
                    f,
                    "checkpoint epoch {epoch}: manifest {field} {manifest} disagrees with frame \
                     {field} {frame}"
                )
            }
            CheckpointError::CorpusMismatch {
                what,
                checkpoint,
                corpus,
            } => {
                write!(
                    f,
                    "checkpoint/corpus disagreement on {what}: checkpoint has {checkpoint}, \
                     corpus has {corpus}"
                )
            }
            CheckpointError::Io { what, source } => {
                write!(f, "checkpoint i/o error ({what}): {source}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Frame { source, .. } => Some(source),
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(what: impl Into<String>) -> impl FnOnce(io::Error) -> CheckpointError {
    let what = what.into();
    move |source| CheckpointError::Io { what, source }
}

/// The file name of epoch `index`'s frame.
pub fn epoch_file_name(index: usize) -> String {
    format!("epoch-{index:05}.ckpt")
}

/// The FNV digest keying an epoch to the corpus shards it covers: folds
/// each covered shard's own manifest digest, in shard order, through the
/// shared frame checksum. A rebuilt or edited shard anywhere in the
/// covered range changes this digest, so a stale checkpoint cannot be
/// resumed against a corpus whose history it no longer describes.
pub fn corpus_epoch_digest(manifest: &Manifest, shards: Range<usize>) -> u64 {
    let mut digest = Checksum::new();
    for entry in &manifest.shards[shards] {
        digest.update(&entry.checksum.to_le_bytes());
    }
    digest.value()
}

/// One epoch's record in the checkpoint manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochEntry {
    /// First corpus shard the epoch's snapshot covers (inclusive).
    pub shard_start: usize,
    /// One past the last covered corpus shard.
    pub shard_end: usize,
    /// Pipeline chunks folded within this epoch.
    pub chunks: usize,
    /// Snapshot payload bytes of the epoch frame.
    pub payload_len: u64,
    /// FNV-1a digest of the epoch frame, equal to its header checksum.
    pub checksum: u64,
    /// [`corpus_epoch_digest`] over the covered corpus shards.
    pub corpus_digest: u64,
}

/// A parsed checkpoint manifest: the corpus identity the epochs are
/// keyed to, the payload schema version, and the epoch index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointManifest {
    /// Schema version of the snapshot payloads (the writer records
    /// `ssfa_core::SNAPSHOT_VERSION`; the store itself is agnostic).
    pub payload_version: u32,
    /// Seed of the corpus the epochs were folded from.
    pub corpus_seed: u64,
    /// Cascade style of that corpus.
    pub corpus_style: CascadeStyle,
    /// Per-epoch index, in epoch order; ranges abut starting at shard 0.
    pub epochs: Vec<EpochEntry>,
}

impl CheckpointManifest {
    /// Renders the manifest to its canonical text form (deterministic:
    /// the same checkpoint always serializes to identical bytes).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(96 + self.epochs.len() * 80);
        out.push_str(CHECKPOINT_VERSION_LINE);
        out.push('\n');
        let _ = writeln!(out, "payload_version {}", self.payload_version);
        let _ = writeln!(out, "corpus_seed {}", self.corpus_seed);
        let _ = writeln!(out, "corpus_style {}", style_name(self.corpus_style));
        let _ = writeln!(out, "epochs {}", self.epochs.len());
        for (i, e) in self.epochs.iter().enumerate() {
            let _ = writeln!(
                out,
                "epoch {i} {} {} {} {} {:016x} {:016x}",
                e.shard_start, e.shard_end, e.chunks, e.payload_len, e.checksum, e.corpus_digest,
            );
        }
        out
    }

    /// Parses a manifest, validating the layout invariants: epoch
    /// records in order, shard ranges non-empty and abutting from shard
    /// 0, and the declared count consistent.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Manifest`] with the offending line number.
    pub fn parse(text: &str) -> Result<CheckpointManifest, CheckpointError> {
        let bad = |line_no: usize, what: String| CheckpointError::Manifest { line_no, what };
        let mut lines = text.lines().enumerate();
        let (_, first) = lines
            .next()
            .ok_or_else(|| bad(1, "empty manifest".into()))?;
        if first != CHECKPOINT_VERSION_LINE {
            return Err(bad(
                1,
                format!("expected header `{CHECKPOINT_VERSION_LINE}`, found `{first}`"),
            ));
        }

        let mut payload_version = None;
        let mut corpus_seed = None;
        let mut corpus_style = None;
        let mut declared_epochs = None;
        let mut epochs: Vec<EpochEntry> = Vec::new();

        for (idx, raw) in lines {
            let line_no = idx + 1;
            let mut fields = raw.split_ascii_whitespace();
            let Some(key) = fields.next() else {
                continue; // blank line
            };
            let rest: Vec<&str> = fields.collect();
            let one = |what: &str| -> Result<&str, CheckpointError> {
                if rest.len() == 1 {
                    Ok(rest[0])
                } else {
                    Err(bad(line_no, format!("`{key}` needs exactly one {what}")))
                }
            };
            match key {
                "payload_version" => {
                    payload_version =
                        Some(one("integer")?.parse::<u32>().map_err(|_| {
                            bad(line_no, "`payload_version` is not an integer".into())
                        })?);
                }
                "corpus_seed" => {
                    corpus_seed = Some(
                        one("integer")?
                            .parse::<u64>()
                            .map_err(|_| bad(line_no, "`corpus_seed` is not an integer".into()))?,
                    );
                }
                "corpus_style" => {
                    let name = one("name")?;
                    corpus_style =
                        Some(style_from_name(name).ok_or_else(|| {
                            bad(line_no, format!("unknown cascade style `{name}`"))
                        })?);
                }
                "epochs" => {
                    declared_epochs = Some(
                        one("integer")?
                            .parse::<usize>()
                            .map_err(|_| bad(line_no, "`epochs` is not an integer".into()))?,
                    );
                }
                "epoch" => {
                    if rest.len() != 7 {
                        return Err(bad(
                            line_no,
                            format!("`epoch` needs 7 fields, found {}", rest.len()),
                        ));
                    }
                    let num = |i: usize, what: &str| -> Result<u64, CheckpointError> {
                        rest[i]
                            .parse::<u64>()
                            .map_err(|_| bad(line_no, format!("epoch {what} is not an integer")))
                    };
                    let hex = |i: usize, what: &str| -> Result<u64, CheckpointError> {
                        u64::from_str_radix(rest[i], 16)
                            .map_err(|_| bad(line_no, format!("epoch {what} is not hex")))
                    };
                    let index = num(0, "index")? as usize;
                    if index != epochs.len() {
                        return Err(bad(
                            line_no,
                            format!(
                                "epoch records out of order: expected {}, found {index}",
                                epochs.len()
                            ),
                        ));
                    }
                    let entry = EpochEntry {
                        shard_start: num(1, "shard start")? as usize,
                        shard_end: num(2, "shard end")? as usize,
                        chunks: num(3, "chunk count")? as usize,
                        payload_len: num(4, "payload length")?,
                        checksum: hex(5, "digest")?,
                        corpus_digest: hex(6, "corpus digest")?,
                    };
                    // Epochs must tile the covered shard prefix: the
                    // first starts at shard 0, each next at the previous
                    // end, and every epoch covers at least one shard.
                    let expected = epochs.last().map_or(0, |prev| prev.shard_end);
                    if entry.shard_start != expected {
                        return Err(bad(
                            line_no,
                            format!(
                                "epoch {index} starts at shard {} but the previous epoch ends at \
                                 shard {expected}",
                                entry.shard_start
                            ),
                        ));
                    }
                    if entry.shard_end <= entry.shard_start {
                        return Err(bad(line_no, format!("epoch {index} covers no shards")));
                    }
                    epochs.push(entry);
                }
                other => {
                    return Err(bad(line_no, format!("unknown manifest key `{other}`")));
                }
            }
        }

        let require = |what: &str, ok: bool| -> Result<(), CheckpointError> {
            if ok {
                Ok(())
            } else {
                Err(bad(0, format!("missing `{what}` record")))
            }
        };
        require("payload_version", payload_version.is_some())?;
        require("corpus_seed", corpus_seed.is_some())?;
        require("corpus_style", corpus_style.is_some())?;
        require("epochs", declared_epochs.is_some())?;
        let declared = declared_epochs.expect("checked");
        if declared != epochs.len() {
            return Err(bad(
                0,
                format!(
                    "manifest declares {declared} epoch(s) but indexes {}",
                    epochs.len()
                ),
            ));
        }
        Ok(CheckpointManifest {
            payload_version: payload_version.expect("checked"),
            corpus_seed: corpus_seed.expect("checked"),
            corpus_style: corpus_style.expect("checked"),
            epochs,
        })
    }

    /// One past the last corpus shard any epoch covers (0 when empty).
    pub fn covered_shards(&self) -> usize {
        self.epochs.last().map_or(0, |e| e.shard_end)
    }

    /// Validates that this checkpoint was folded from (a prefix of) the
    /// given corpus: seed and style match, every epoch's shard range
    /// exists in the corpus, and every epoch's corpus digest matches a
    /// recomputation over the corpus manifest. An appended corpus (new
    /// shards after the covered prefix) passes; a rebuilt or edited one
    /// does not.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::CorpusMismatch`] naming the first disagreeing
    /// field.
    pub fn validate_against(&self, corpus: &Manifest) -> Result<(), CheckpointError> {
        let mismatch = |what: &str, checkpoint: String, corpus: String| {
            Err(CheckpointError::CorpusMismatch {
                what: what.to_string(),
                checkpoint,
                corpus,
            })
        };
        if self.corpus_seed != corpus.seed {
            return mismatch(
                "seed",
                self.corpus_seed.to_string(),
                corpus.seed.to_string(),
            );
        }
        if self.corpus_style != corpus.style {
            return mismatch(
                "style",
                style_name(self.corpus_style).to_string(),
                style_name(corpus.style).to_string(),
            );
        }
        if self.covered_shards() > corpus.shards.len() {
            return mismatch(
                "covered shards",
                self.covered_shards().to_string(),
                corpus.shards.len().to_string(),
            );
        }
        for (i, e) in self.epochs.iter().enumerate() {
            let expected = corpus_epoch_digest(corpus, e.shard_start..e.shard_end);
            if e.corpus_digest != expected {
                return mismatch(
                    &format!("epoch {i} shard digest"),
                    format!("{:016x}", e.corpus_digest),
                    format!("{expected:016x}"),
                );
            }
        }
        Ok(())
    }
}

/// Appends checkpoint epochs durably: one frame file per epoch, the
/// manifest rewritten atomically after each.
#[derive(Debug)]
pub struct CheckpointWriter {
    dir: PathBuf,
    manifest: CheckpointManifest,
}

impl CheckpointWriter {
    /// Starts a new, empty checkpoint in `dir` (created if missing),
    /// keyed to the given corpus identity.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::AlreadyExists`] if `dir` already holds a
    /// manifest; [`CheckpointError::Io`] on filesystem failure.
    pub fn create(
        dir: &Path,
        payload_version: u32,
        corpus_seed: u64,
        corpus_style: CascadeStyle,
    ) -> Result<CheckpointWriter, CheckpointError> {
        let manifest_path = dir.join(CHECKPOINT_NAME);
        if manifest_path.exists() {
            return Err(CheckpointError::AlreadyExists {
                path: manifest_path,
            });
        }
        std::fs::create_dir_all(dir).map_err(io_err(format!("creating {}", dir.display())))?;
        let writer = CheckpointWriter {
            dir: dir.to_path_buf(),
            manifest: CheckpointManifest {
                payload_version,
                corpus_seed,
                corpus_style,
                epochs: Vec::new(),
            },
        };
        writer.persist_manifest()?;
        Ok(writer)
    }

    /// Reopens an existing checkpoint for appending further epochs.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::MissingManifest`] if `dir` holds none;
    /// manifest parse errors otherwise.
    pub fn append_to(dir: &Path) -> Result<CheckpointWriter, CheckpointError> {
        let manifest = read_manifest(dir)?;
        Ok(CheckpointWriter {
            dir: dir.to_path_buf(),
            manifest,
        })
    }

    /// The manifest as currently persisted.
    pub fn manifest(&self) -> &CheckpointManifest {
        &self.manifest
    }

    /// Appends one epoch: writes its frame (temp file, sync, rename),
    /// then rewrites the manifest atomically. Returns the epoch index.
    ///
    /// The shard range must abut the previous epoch (`shards.start` ==
    /// previous end, starting at 0) and be non-empty — violating either
    /// is a caller bug and panics.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure; the previously
    /// persisted manifest (and thus the previous durable epoch) is left
    /// intact.
    pub fn write_epoch(
        &mut self,
        shards: Range<usize>,
        chunks: usize,
        corpus_digest: u64,
        payload: &[u8],
    ) -> Result<usize, CheckpointError> {
        let expected = self.manifest.covered_shards();
        assert_eq!(
            shards.start, expected,
            "epoch shard range must abut the previous epoch"
        );
        assert!(shards.end > shards.start, "epoch must cover shards");
        let index = self.manifest.epochs.len();

        let mut frame_bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        let header =
            frame::encode_frame(&mut frame_bytes, index as u32, shards.end as u64, payload);

        let path = self.dir.join(epoch_file_name(index));
        let tmp = self.dir.join(format!("{}.tmp", epoch_file_name(index)));
        let mut file = File::create(&tmp).map_err(io_err(format!("creating {}", tmp.display())))?;
        file.write_all(&frame_bytes)
            .map_err(io_err(format!("writing {}", tmp.display())))?;
        file.sync_all()
            .map_err(io_err(format!("syncing {}", tmp.display())))?;
        drop(file);
        std::fs::rename(&tmp, &path)
            .map_err(io_err(format!("renaming {} into place", path.display())))?;

        self.manifest.epochs.push(EpochEntry {
            shard_start: shards.start,
            shard_end: shards.end,
            chunks,
            payload_len: header.payload_len,
            checksum: header.checksum,
            corpus_digest,
        });
        // Persist the manifest only after the frame is durable; on
        // failure, roll the in-memory entry back so the writer still
        // mirrors what is on disk.
        if let Err(e) = self.persist_manifest() {
            self.manifest.epochs.pop();
            return Err(e);
        }
        Ok(index)
    }

    /// Drops every epoch past the first `keep`, persisting the shortened
    /// manifest first and then removing the orphaned frame files (best
    /// effort — an unreferenced frame file is inert). A no-op when the
    /// checkpoint already holds `keep` epochs or fewer.
    ///
    /// This is how a resume discards epochs that no longer align with a
    /// re-planned chunking: the aligned prefix stays durable, the
    /// misaligned tail is recomputed.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure; the in-memory
    /// manifest is rolled back so the writer still mirrors the disk.
    pub fn truncate_to(&mut self, keep: usize) -> Result<(), CheckpointError> {
        if self.manifest.epochs.len() <= keep {
            return Ok(());
        }
        let dropped = self.manifest.epochs.split_off(keep);
        if let Err(e) = self.persist_manifest() {
            self.manifest.epochs.extend(dropped);
            return Err(e);
        }
        for index in keep..keep + dropped.len() {
            let _ = std::fs::remove_file(self.dir.join(epoch_file_name(index)));
        }
        Ok(())
    }

    fn persist_manifest(&self) -> Result<(), CheckpointError> {
        let path = self.dir.join(CHECKPOINT_NAME);
        let tmp = self.dir.join(format!("{CHECKPOINT_NAME}.tmp"));
        let mut file = File::create(&tmp).map_err(io_err(format!("creating {}", tmp.display())))?;
        file.write_all(self.manifest.to_text().as_bytes())
            .map_err(io_err(format!("writing {}", tmp.display())))?;
        file.sync_all()
            .map_err(io_err(format!("syncing {}", tmp.display())))?;
        drop(file);
        std::fs::rename(&tmp, &path)
            .map_err(io_err(format!("renaming {} into place", path.display())))
    }
}

fn read_manifest(dir: &Path) -> Result<CheckpointManifest, CheckpointError> {
    let path = dir.join(CHECKPOINT_NAME);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(CheckpointError::MissingManifest { path });
        }
        Err(e) => return Err(io_err(format!("reading {}", path.display()))(e)),
    };
    CheckpointManifest::parse(&text)
}

/// Reads checkpoint epochs back, cross-checking every frame against the
/// manifest.
#[derive(Debug)]
pub struct CheckpointReader {
    dir: PathBuf,
    manifest: CheckpointManifest,
}

impl CheckpointReader {
    /// Opens a checkpoint directory and parses its manifest.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::MissingManifest`] on an empty or non-checkpoint
    /// directory; manifest parse errors otherwise.
    pub fn open(dir: &Path) -> Result<CheckpointReader, CheckpointError> {
        let manifest = read_manifest(dir)?;
        Ok(CheckpointReader {
            dir: dir.to_path_buf(),
            manifest,
        })
    }

    /// The parsed manifest.
    pub fn manifest(&self) -> &CheckpointManifest {
        &self.manifest
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of durable epochs.
    pub fn epoch_count(&self) -> usize {
        self.manifest.epochs.len()
    }

    /// Path of epoch `index`'s frame file.
    pub fn epoch_path(&self, index: usize) -> PathBuf {
        self.dir.join(epoch_file_name(index))
    }

    /// Reads and verifies one epoch's snapshot payload: frame decode
    /// (magic, version, truncation, checksum) plus manifest cross-check
    /// (epoch index, shard end, payload length, digest).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Frame`] on codec failure,
    /// [`CheckpointError::DigestMismatch`]/[`CheckpointError::EntryMismatch`]
    /// when the frame and manifest disagree.
    pub fn read_epoch(&self, index: usize) -> Result<Vec<u8>, CheckpointError> {
        let entry = &self.manifest.epochs[index];
        let path = self.epoch_path(index);
        let mut bytes = Vec::with_capacity(HEADER_LEN + entry.payload_len as usize);
        File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(io_err(format!("reading {}", path.display())))?;
        let (header, payload) =
            frame::decode_frame(&bytes).map_err(|source| CheckpointError::Frame {
                epoch: index,
                source,
            })?;
        if header.checksum != entry.checksum {
            return Err(CheckpointError::DigestMismatch {
                epoch: index,
                manifest: entry.checksum,
                frame: header.checksum,
            });
        }
        for (field, manifest, frame) in [
            ("payload length", entry.payload_len, header.payload_len),
            ("shard end", entry.shard_end as u64, header.line_count),
            ("epoch index", index as u64, u64::from(header.system_id)),
        ] {
            if manifest != frame {
                return Err(CheckpointError::EntryMismatch {
                    epoch: index,
                    field,
                    manifest,
                    frame,
                });
            }
        }
        Ok(payload.to_vec())
    }

    /// Verifies every epoch frame against its checksum and manifest
    /// entry, returning the total payload bytes walked.
    ///
    /// # Errors
    ///
    /// The first failing epoch's error, as in
    /// [`CheckpointReader::read_epoch`].
    pub fn verify(&self) -> Result<u64, CheckpointError> {
        let mut total = 0;
        for index in 0..self.epoch_count() {
            total += self.read_epoch(index)?.len() as u64;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ssfa-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_writer(dir: &Path) -> CheckpointWriter {
        CheckpointWriter::create(dir, 1, 42, CascadeStyle::RaidOnly).expect("create")
    }

    #[test]
    fn manifest_text_round_trips() {
        let dir = tmpdir("roundtrip");
        let mut w = sample_writer(&dir);
        w.write_epoch(0..3, 2, 0xdead_beef, b"alpha")
            .expect("epoch 0");
        w.write_epoch(3..5, 1, 0xfeed_f00d, b"beta")
            .expect("epoch 1");
        let parsed = CheckpointManifest::parse(&w.manifest().to_text()).expect("reparse");
        assert_eq!(&parsed, w.manifest());
        let reader = CheckpointReader::open(&dir).expect("open");
        assert_eq!(reader.manifest(), w.manifest());
        assert_eq!(reader.read_epoch(0).expect("read 0"), b"alpha");
        assert_eq!(reader.read_epoch(1).expect("read 1"), b"beta");
        assert_eq!(reader.verify().expect("verify"), 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_existing_and_append_continues() {
        let dir = tmpdir("append");
        let mut w = sample_writer(&dir);
        w.write_epoch(0..2, 1, 1, b"one").expect("epoch 0");
        drop(w);
        assert!(matches!(
            CheckpointWriter::create(&dir, 1, 42, CascadeStyle::RaidOnly),
            Err(CheckpointError::AlreadyExists { .. })
        ));
        let mut w = CheckpointWriter::append_to(&dir).expect("append");
        assert_eq!(w.write_epoch(2..4, 1, 2, b"two").expect("epoch 1"), 1);
        let reader = CheckpointReader::open(&dir).expect("open");
        assert_eq!(reader.epoch_count(), 2);
        assert_eq!(reader.manifest().covered_shards(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_display_is_pinned() {
        let dir = tmpdir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        let err = CheckpointReader::open(&dir).unwrap_err();
        assert_eq!(
            err.to_string(),
            format!(
                "checkpoint manifest not found: {}",
                dir.join(CHECKPOINT_NAME).display()
            )
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_abutting_epoch_records_are_rejected() {
        let text = format!(
            "{CHECKPOINT_VERSION_LINE}\npayload_version 1\ncorpus_seed 1\n\
             corpus_style raid-only\nepochs 2\n\
             epoch 0 0 2 1 5 {0:016x} {0:016x}\n\
             epoch 1 3 4 1 5 {0:016x} {0:016x}\n",
            7u64
        );
        let err = CheckpointManifest::parse(&text).unwrap_err();
        assert_eq!(
            err.to_string(),
            "checkpoint manifest line 7: epoch 1 starts at shard 3 but the previous epoch ends \
             at shard 2"
        );
    }
}
