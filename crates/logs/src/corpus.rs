//! The log corpus: an ordered collection of log lines with text I/O.

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::event::LogLine;

/// Errors from corpus I/O and classification.
#[derive(Debug)]
pub enum LogError {
    /// A line failed to parse.
    Malformed {
        /// 1-based line number within the corpus text.
        line_no: usize,
        /// The offending line, truncated to [`MALFORMED_PREVIEW_CHARS`]
        /// characters (lossily decoded if it was not valid UTF-8).
        line: String,
        /// Byte length of the original, untruncated line.
        bytes: usize,
    },
    /// A failure event referenced topology the corpus never declared.
    MissingTopology {
        /// What was being resolved.
        what: String,
    },
    /// Underlying I/O error.
    Io(io::Error),
}

/// How many characters of an offending line a [`LogError::Malformed`]
/// preserves. A corrupted corpus can contain arbitrarily long garbage
/// lines; capping the preview keeps error messages from flooding
/// terminals and CI logs, while the recorded byte length still tells the
/// operator how big the damage was.
pub const MALFORMED_PREVIEW_CHARS: usize = 120;

impl LogError {
    /// A [`LogError::Malformed`] for a raw line, with the preview
    /// truncated to [`MALFORMED_PREVIEW_CHARS`] characters and the
    /// original byte length preserved.
    // lint: alloc-ok error path: the bounded preview copy happens only for
    // unparseable lines, never on well-formed steady-state input
    pub fn malformed(line_no: usize, raw: &[u8]) -> LogError {
        LogError::Malformed {
            line_no,
            line: String::from_utf8_lossy(raw)
                .chars()
                .take(MALFORMED_PREVIEW_CHARS)
                .collect(),
            bytes: raw.len(),
        }
    }
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Malformed {
                line_no,
                line,
                bytes,
            } => {
                write!(f, "malformed log line {line_no}: {line}")?;
                if *bytes != line.len() {
                    write!(f, " … [{bytes} bytes total]")?;
                }
                Ok(())
            }
            LogError::MissingTopology { what } => {
                write!(f, "event references undeclared topology: {what}")
            }
            LogError::Io(e) => write!(f, "log i/o error: {e}"),
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LogError {
    fn from(e: io::Error) -> Self {
        LogError::Io(e)
    }
}

/// An ordered support-log corpus.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LogBook {
    lines: Vec<LogLine>,
}

impl LogBook {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one line.
    pub fn push(&mut self, line: LogLine) {
        self.lines.push(line);
    }

    /// Appends many lines.
    pub fn extend_lines<I: IntoIterator<Item = LogLine>>(&mut self, lines: I) {
        self.lines.extend(lines);
    }

    /// Sorts lines chronologically (stable, so cascade-internal order at
    /// equal timestamps is preserved).
    pub fn sort_chronological(&mut self) {
        self.lines.sort_by_key(|l| l.at);
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the corpus holds no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Iterates the lines in corpus order.
    pub fn iter(&self) -> std::slice::Iter<'_, LogLine> {
        self.lines.iter()
    }

    /// Iterates the lines emitted by one host.
    pub fn lines_for_host(
        &self,
        host: ssfa_model::SystemId,
    ) -> impl Iterator<Item = &LogLine> + '_ {
        self.lines.iter().filter(move |l| l.host == host)
    }

    /// Iterates the lines within a half-open time window `[from, to)`.
    pub fn lines_between(
        &self,
        from: ssfa_model::SimTime,
        to: ssfa_model::SimTime,
    ) -> impl Iterator<Item = &LogLine> + '_ {
        self.lines.iter().filter(move |l| l.at >= from && l.at < to)
    }

    /// Iterates the lines whose subsystem tag starts with `prefix`
    /// (e.g. `"raid."` for the classification-bearing events).
    pub fn lines_with_tag_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = &'a LogLine> + 'a {
        self.lines
            .iter()
            .filter(move |l| l.event.tag().starts_with(prefix))
    }

    /// Counts lines per subsystem tag.
    pub fn count_by_tag(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for line in &self.lines {
            *counts.entry(line.event.tag()).or_insert(0) += 1;
        }
        counts
    }

    /// Renders the whole corpus as text, one line per event. Lines are
    /// pushed straight into the output buffer via
    /// [`LogLine::render_into`] — no per-line allocation and no `fmt`
    /// machinery (the `Display` impl stays the pinned oracle).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.lines.len() * 128);
        for line in &self.lines {
            line.render_into(&mut out);
            out.push('\n');
        }
        out
    }

    /// In-memory footprint of the corpus: the sum of every line's
    /// [`LogLine::resident_bytes`]. This is what a pipeline holding the
    /// parsed corpus keeps resident, and the unit the streaming pipeline's
    /// peak-memory statistics are reported in.
    pub fn resident_bytes(&self) -> usize {
        self.lines.iter().map(LogLine::resident_bytes).sum()
    }

    /// Parses a corpus from text. Blank lines are skipped; anything else
    /// that fails to parse is an error.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] with the offending line number.
    pub fn from_text(text: &str) -> Result<LogBook, LogError> {
        let mut book = LogBook::new();
        for (idx, raw) in text.lines().enumerate() {
            if raw.trim().is_empty() {
                continue;
            }
            match LogLine::parse(raw) {
                Some(line) => book.push(line),
                None => return Err(LogError::malformed(idx + 1, raw.as_bytes())),
            }
        }
        Ok(book)
    }

    /// Writes the corpus to a writer. Accepts `&mut` writers as well, per
    /// the usual `io::Write` blanket impl.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), LogError> {
        for line in &self.lines {
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// Reads a corpus from a buffered reader. Accepts `&mut` readers as
    /// well.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Malformed`] for unparseable lines and
    /// [`LogError::Io`] for reader failures.
    pub fn read_from<R: BufRead>(r: R) -> Result<LogBook, LogError> {
        let mut book = LogBook::new();
        for (idx, raw) in r.lines().enumerate() {
            let raw = raw?;
            if raw.trim().is_empty() {
                continue;
            }
            match LogLine::parse(&raw) {
                Some(line) => book.push(line),
                None => return Err(LogError::malformed(idx + 1, raw.as_bytes())),
            }
        }
        Ok(book)
    }
}

impl FromIterator<LogLine> for LogBook {
    fn from_iter<I: IntoIterator<Item = LogLine>>(iter: I) -> Self {
        LogBook {
            lines: iter.into_iter().collect(),
        }
    }
}

impl Extend<LogLine> for LogBook {
    fn extend<I: IntoIterator<Item = LogLine>>(&mut self, iter: I) {
        self.lines.extend(iter);
    }
}

impl IntoIterator for LogBook {
    type Item = LogLine;
    type IntoIter = std::vec::IntoIter<LogLine>;

    fn into_iter(self) -> Self::IntoIter {
        self.lines.into_iter()
    }
}

impl<'a> IntoIterator for &'a LogBook {
    type Item = &'a LogLine;
    type IntoIter = std::slice::Iter<'a, LogLine>;

    fn into_iter(self) -> Self::IntoIter {
        self.lines.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LogEvent;
    use ssfa_model::{DeviceAddr, SimTime, SystemId};

    fn sample_line(t: u64) -> LogLine {
        LogLine::new(
            SystemId(1),
            SimTime::from_secs(t),
            LogEvent::FciDeviceTimeout {
                device: DeviceAddr::new(8, 24),
            },
        )
    }

    #[test]
    fn text_round_trip_preserves_everything() {
        let mut book = LogBook::new();
        book.push(sample_line(1_000));
        book.push(sample_line(50_000));
        let text = book.to_text();
        let parsed = LogBook::from_text(&text).unwrap();
        assert_eq!(parsed, book);
    }

    #[test]
    fn io_round_trip() {
        let book: LogBook = (0..10).map(|i| sample_line(i * 7_000)).collect();
        let mut buf = Vec::new();
        book.write_to(&mut buf).unwrap();
        let parsed = LogBook::read_from(buf.as_slice()).unwrap();
        assert_eq!(parsed, book);
    }

    #[test]
    fn blank_lines_are_skipped_garbage_is_reported() {
        let book: LogBook = vec![sample_line(3_600)].into_iter().collect();
        let text = format!("\n{}\n\n", book.to_text());
        assert_eq!(LogBook::from_text(&text).unwrap().len(), 1);

        let bad = format!("{}not a log line\n", book.to_text());
        match LogBook::from_text(&bad) {
            Err(LogError::Malformed { line_no, .. }) => assert_eq!(line_no, 2),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn malformed_display_is_bounded_for_huge_lines() {
        let huge = "x".repeat(5_000_000);
        let err = LogError::malformed(7, huge.as_bytes());
        let msg = err.to_string();
        assert!(
            msg.len() < 300,
            "display must not embed the whole line: {} bytes",
            msg.len()
        );
        assert!(
            msg.contains("[5000000 bytes total]"),
            "missing byte-length suffix: {msg}"
        );

        // Short lines keep the original exact message, no suffix.
        let short = LogError::malformed(2, b"not a log line");
        assert_eq!(short.to_string(), "malformed log line 2: not a log line");
    }

    #[test]
    fn sorting_is_stable_for_equal_timestamps() {
        let a = LogLine::new(
            SystemId(1),
            SimTime::from_secs(100),
            LogEvent::FciAdapterReset { adapter: 1 },
        );
        let b = LogLine::new(
            SystemId(1),
            SimTime::from_secs(100),
            LogEvent::FciAdapterReset { adapter: 2 },
        );
        let mut book: LogBook = vec![sample_line(500), a.clone(), b.clone()]
            .into_iter()
            .collect();
        book.sort_chronological();
        let lines: Vec<_> = book.iter().cloned().collect();
        assert_eq!(lines[0], a);
        assert_eq!(lines[1], b);
    }

    #[test]
    fn query_api_filters_correctly() {
        use ssfa_model::SimTime;
        let mk = |host: u32, t: u64, adapter: u8| {
            LogLine::new(
                SystemId(host),
                SimTime::from_secs(t),
                LogEvent::FciAdapterReset { adapter },
            )
        };
        let mut book: LogBook = vec![
            mk(1, 100, 1),
            mk(2, 200, 2),
            mk(1, 300, 3),
            LogLine::new(
                SystemId(1),
                SimTime::from_secs(400),
                LogEvent::FciDeviceTimeout {
                    device: DeviceAddr::new(8, 24),
                },
            ),
        ]
        .into_iter()
        .collect();
        book.sort_chronological();

        assert_eq!(book.lines_for_host(SystemId(1)).count(), 3);
        assert_eq!(book.lines_for_host(SystemId(9)).count(), 0);
        assert_eq!(
            book.lines_between(SimTime::from_secs(150), SimTime::from_secs(400))
                .count(),
            2
        );
        assert_eq!(book.lines_with_tag_prefix("fci.adapter").count(), 3);
        let by_tag = book.count_by_tag();
        assert_eq!(by_tag["fci.adapter.reset"], 3);
        assert_eq!(by_tag["fci.device.timeout"], 1);
    }

    #[test]
    fn collect_and_extend() {
        let mut book: LogBook = (0..3).map(sample_line).collect();
        book.extend((3..5).map(sample_line));
        assert_eq!(book.len(), 5);
        assert!(!book.is_empty());
        assert_eq!((&book).into_iter().count(), 5);
    }
}
