//! Expansion of failures into multi-line event cascades.
//!
//! When a failure happens, "multiple events are generated as the failure
//! propagates from lower layers to higher layers (Fibre Channel to SCSI to
//! RAID)" (paper §2.5, Figure 3). The cascade generator reproduces that:
//! the low-layer lines lead up to the RAID-layer classification event, with
//! the inter-line delays of the paper's example. Masked failures (recovered
//! by multipath failover) produce only the low-layer lines — they never
//! reach the RAID layer, which is exactly why they are not storage
//! subsystem failures.

use ssfa_model::{DeviceAddr, FailureType, SimDuration, SimTime, SystemId};

use crate::event::{LogEvent, LogLine};

/// How much of the cascade to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CascadeStyle {
    /// Full Figure-3-style cascades (FC → SCSI → RAID).
    #[default]
    Full,
    /// Only the RAID-layer classification line (compact corpora for very
    /// large fleets).
    RaidOnly,
}

/// The failure to expand into log lines.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeInput {
    /// Emitting system.
    pub host: SystemId,
    /// When the RAID layer detected the failure.
    pub detected_at: SimTime,
    /// Failure type (determines the cascade shape).
    pub failure_type: FailureType,
    /// Whether multipath failover masked the failure before it reached the
    /// RAID layer.
    pub masked: bool,
    /// Affected device address.
    pub device: DeviceAddr,
    /// Affected disk serial number.
    pub serial: String,
}

/// Seconds before the RAID-layer event at which each lower-layer line of
/// the interconnect cascade fires — the gaps of the paper's Figure 3
/// (05:43:36 → 05:46:22).
const INTERCONNECT_OFFSETS: [u64; 5] = [166, 152, 152, 130, 120];

/// Seconds before a disk failure at which its precursor medium errors are
/// logged: roughly 12 days, 6 days, 2 days, 8 hours, and 5 minutes out.
pub const PRECURSOR_OFFSETS: [u64; 5] = [1_036_800, 518_400, 172_800, 28_800, 340];

fn back(at: SimTime, secs: u64) -> SimTime {
    at.saturating_sub(SimDuration::from_secs(secs))
}

/// Deterministic pseudo-sector derived from the serial, for medium-error
/// flavor lines.
fn sector_for(serial: &str) -> u64 {
    serial.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    }) % 976_773_168 // LBAs of a 500 GB disk
}

/// Expands one failure into its log lines, in chronological order.
///
/// The last line of an unmasked cascade is always the RAID-layer
/// classification event; masked cascades end with the failover line.
pub fn expand(input: &CascadeInput, style: CascadeStyle) -> Vec<LogLine> {
    let CascadeInput {
        host,
        detected_at,
        failure_type,
        masked,
        device,
        serial,
    } = input;
    let host = *host;
    let at = *detected_at;
    let device = *device;
    let line = |t: SimTime, e: LogEvent| LogLine::new(host, t, e);

    if *masked {
        // Failover recovered the path: FC noise, then the failover notice.
        // No RAID-layer event is ever logged.
        return vec![
            line(back(at, 30), LogEvent::FciDeviceTimeout { device }),
            line(
                back(at, 16),
                LogEvent::FciAdapterReset {
                    adapter: device.adapter,
                },
            ),
            line(at, LogEvent::ScsiPathFailover { device }),
        ];
    }

    let raid_event = match failure_type {
        FailureType::Disk => LogEvent::RaidDiskFailed {
            device,
            serial: serial.clone(),
        },
        FailureType::PhysicalInterconnect => LogEvent::RaidDiskMissing {
            device,
            serial: serial.clone(),
        },
        FailureType::Protocol => LogEvent::RaidProtocolError {
            device,
            serial: serial.clone(),
        },
        FailureType::Performance => LogEvent::RaidDiskSlow {
            device,
            serial: serial.clone(),
        },
    };

    if style == CascadeStyle::RaidOnly {
        return vec![line(at, raid_event)];
    }

    let mut lines = match failure_type {
        FailureType::Disk => {
            // Disks degrade before they die: sector errors accumulate over
            // the preceding days until the storage layer proactively fails
            // the disk (paper §2.3: "a disk has experienced too many
            // sector errors"). These precursor lines are what failure
            // predictors (paper §7, future work) feed on. How loudly a
            // disk announces its death varies: deterministically per
            // serial, it emits its last 3-5 precursors.
            let sector = sector_for(serial);
            let n = 3 + (sector % 3) as usize;
            PRECURSOR_OFFSETS
                .iter()
                .skip(PRECURSOR_OFFSETS.len() - n)
                .enumerate()
                .map(|(i, &secs)| {
                    line(
                        back(at, secs),
                        LogEvent::DiskMediumError {
                            device,
                            sector: sector + 8 * i as u64,
                        },
                    )
                })
                .collect()
        }
        FailureType::PhysicalInterconnect => vec![
            line(
                back(at, INTERCONNECT_OFFSETS[0]),
                LogEvent::FciDeviceTimeout { device },
            ),
            line(
                back(at, INTERCONNECT_OFFSETS[1]),
                LogEvent::FciAdapterReset {
                    adapter: device.adapter,
                },
            ),
            line(
                back(at, INTERCONNECT_OFFSETS[2]),
                LogEvent::ScsiCmdAborted { device },
            ),
            line(
                back(at, INTERCONNECT_OFFSETS[3]),
                LogEvent::ScsiSelectionTimeout { device },
            ),
            line(
                back(at, INTERCONNECT_OFFSETS[4]),
                LogEvent::ScsiNoMorePaths { device },
            ),
        ],
        FailureType::Protocol => vec![
            line(back(at, 45), LogEvent::ScsiProtocolViolation { device }),
            line(back(at, 20), LogEvent::ScsiProtocolViolation { device }),
        ],
        FailureType::Performance => vec![
            line(
                back(at, 120),
                LogEvent::ScsiSlowResponse {
                    device,
                    latency_ms: 12_400,
                },
            ),
            line(
                back(at, 40),
                LogEvent::ScsiSlowResponse {
                    device,
                    latency_ms: 31_900,
                },
            ),
        ],
    };
    lines.push(line(at, raid_event));
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssfa_model::DiskInstanceId;

    fn input(ty: FailureType, masked: bool) -> CascadeInput {
        CascadeInput {
            host: SystemId(3),
            detected_at: SimTime::from_secs(80_000_000),
            failure_type: ty,
            masked,
            device: DeviceAddr::new(8, 24),
            serial: DiskInstanceId(500).serial(),
        }
    }

    #[test]
    fn interconnect_cascade_matches_figure_3_shape() {
        let lines = expand(
            &input(FailureType::PhysicalInterconnect, false),
            CascadeStyle::Full,
        );
        assert_eq!(lines.len(), 6);
        let tags: Vec<&str> = lines.iter().map(|l| l.event.tag()).collect();
        assert_eq!(
            tags,
            vec![
                "fci.device.timeout",
                "fci.adapter.reset",
                "scsi.cmd.abortedByHost",
                "scsi.cmd.selectionTimeout",
                "scsi.cmd.noMorePaths",
                "raid.config.filesystem.disk.missing",
            ]
        );
        // Chronological and ending exactly at detection.
        for pair in lines.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        assert_eq!(lines.last().unwrap().at, SimTime::from_secs(80_000_000));
    }

    #[test]
    fn each_type_ends_with_its_raid_event() {
        let expect = [
            (FailureType::Disk, "raid.config.filesystem.disk.failed"),
            (
                FailureType::PhysicalInterconnect,
                "raid.config.filesystem.disk.missing",
            ),
            (
                FailureType::Protocol,
                "raid.config.filesystem.disk.protocolError",
            ),
            (FailureType::Performance, "raid.config.filesystem.disk.slow"),
        ];
        for (ty, tag) in expect {
            let lines = expand(&input(ty, false), CascadeStyle::Full);
            assert_eq!(lines.last().unwrap().event.tag(), tag, "{ty}");
            assert!(lines.len() >= 3, "{ty} cascade too short");
        }
    }

    #[test]
    fn masked_cascades_never_reach_the_raid_layer() {
        let lines = expand(
            &input(FailureType::PhysicalInterconnect, true),
            CascadeStyle::Full,
        );
        assert!(lines.iter().all(|l| !l.event.tag().starts_with("raid.")));
        assert_eq!(lines.last().unwrap().event.tag(), "scsi.path.failover");
    }

    #[test]
    fn raid_only_style_is_one_line() {
        let lines = expand(&input(FailureType::Disk, false), CascadeStyle::RaidOnly);
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].event.tag(), "raid.config.filesystem.disk.failed");
    }

    #[test]
    fn early_detection_times_saturate_instead_of_underflowing() {
        let mut i = input(FailureType::PhysicalInterconnect, false);
        i.detected_at = SimTime::from_secs(10);
        let lines = expand(&i, CascadeStyle::Full);
        assert_eq!(lines[0].at, SimTime::ZERO);
    }

    #[test]
    fn sectors_are_deterministic_per_serial() {
        assert_eq!(sector_for("3EL00000001"), sector_for("3EL00000001"));
        assert_ne!(sector_for("3EL00000001"), sector_for("3EL00000002"));
    }
}
