//! Typed log events and their text rendering.
//!
//! Every line in a support log is `<host> <timestamp> [<tag>:<severity>]:
//! <message>`, matching the layout shown in the paper's Figure 3. Events
//! come in three groups: Fibre-Channel/SCSI layer events emitted while a
//! failure propagates, RAID-layer events that *classify* the failure (the
//! four storage subsystem failure types), and `cfg.*` records that carry
//! the configuration snapshots (topology, disk installs/removals) the
//! analysis needs for exposure accounting.

use std::fmt;

use ssfa_model::{
    DeviceAddr, DiskModelId, LayoutPolicy, LoopId, PathConfig, RaidGroupId, RaidType, ShelfId,
    ShelfModel, SimTime, SlotAddr, SystemClass, SystemId,
};

/// Severity of a log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational record.
    Info,
    /// Warning — degraded but operating.
    Warning,
    /// Error — a failure happened.
    Error,
}

impl Severity {
    pub(crate) fn tag(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    pub(crate) fn from_tag(tag: &str) -> Option<Severity> {
        match tag {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One typed log event.
#[derive(Debug, Clone, PartialEq)]
pub enum LogEvent {
    // --- Fibre Channel layer ---------------------------------------------
    /// FC adapter saw a device stop responding.
    FciDeviceTimeout {
        /// The unresponsive device.
        device: DeviceAddr,
    },
    /// FC adapter was reset in an attempt to recover.
    FciAdapterReset {
        /// The adapter being reset.
        adapter: u8,
    },

    // --- SCSI layer --------------------------------------------------------
    /// Host adapter aborted an in-flight command.
    ScsiCmdAborted {
        /// The device whose command was aborted.
        device: DeviceAddr,
    },
    /// Selection timeout: target did not respond; I/O will be retried.
    ScsiSelectionTimeout {
        /// The silent target.
        device: DeviceAddr,
    },
    /// All retries failed; no path to the device remains.
    ScsiNoMorePaths {
        /// The unreachable device.
        device: DeviceAddr,
    },
    /// Multipath failover rerouted I/O through the redundant network.
    ScsiPathFailover {
        /// The device whose primary path failed.
        device: DeviceAddr,
    },
    /// A medium error was detected and the sector remapped.
    DiskMediumError {
        /// The disk reporting the error.
        device: DeviceAddr,
        /// The broken sector's LBA.
        sector: u64,
    },
    /// Response violating the protocol; driver/firmware incompatibility.
    ScsiProtocolViolation {
        /// The misbehaving device.
        device: DeviceAddr,
    },
    /// An I/O took longer than the service threshold.
    ScsiSlowResponse {
        /// The slow device.
        device: DeviceAddr,
        /// Observed completion latency in milliseconds.
        latency_ms: u32,
    },

    // --- RAID layer (classification-bearing) -------------------------------
    /// Disk is missing from the filesystem: a physical interconnect
    /// failure (paper Figure 3).
    RaidDiskMissing {
        /// The missing disk's address.
        device: DeviceAddr,
        /// The missing disk's serial number.
        serial: String,
    },
    /// Disk failed (media/mechanics or proactive fail-out): a disk failure.
    RaidDiskFailed {
        /// The failed disk's address.
        device: DeviceAddr,
        /// The failed disk's serial number.
        serial: String,
    },
    /// Disk visible but requests misbehaving: a protocol failure.
    RaidProtocolError {
        /// The affected disk's address.
        device: DeviceAddr,
        /// The affected disk's serial number.
        serial: String,
    },
    /// Disk cannot serve I/O in time: a performance failure.
    RaidDiskSlow {
        /// The slow disk's address.
        device: DeviceAddr,
        /// The slow disk's serial number.
        serial: String,
    },

    // --- Configuration snapshot records ------------------------------------
    /// System-level configuration record.
    CfgSystem {
        /// Capability class.
        class: SystemClass,
        /// Disk model populated throughout the system.
        disk_model: DiskModelId,
        /// Shelf enclosure model in use.
        shelf_model: ShelfModel,
        /// Single or dual FC paths.
        paths: PathConfig,
        /// RAID layout policy.
        layout: LayoutPolicy,
    },
    /// Shelf enclosure record.
    CfgShelf {
        /// Fleet-unique shelf id.
        shelf: ShelfId,
        /// Enclosure model.
        model: ShelfModel,
        /// FC loop the shelf is chained on.
        fc_loop: LoopId,
        /// Host adapter number.
        adapter: u8,
        /// Position on the loop.
        position: u8,
        /// Populated bays.
        bays: u8,
    },
    /// RAID group membership record.
    CfgRaidGroup {
        /// Fleet-unique RAID group id.
        rg: RaidGroupId,
        /// RAID level.
        raid_type: RaidType,
        /// Member slots.
        slots: Vec<SlotAddr>,
    },
    /// A disk instance entered service in a slot.
    CfgDiskInstall {
        /// Serial of the installed disk.
        serial: String,
        /// Product model.
        model: DiskModelId,
        /// Slot occupied.
        slot: SlotAddr,
        /// Device address of the slot.
        device: DeviceAddr,
    },
    /// A disk instance left service.
    CfgDiskRemove {
        /// Serial of the removed disk.
        serial: String,
        /// `failed` or `study_end`.
        reason: String,
    },
}

impl LogEvent {
    /// The subsystem tag rendered inside `[tag:severity]`.
    pub fn tag(&self) -> &'static str {
        match self {
            LogEvent::FciDeviceTimeout { .. } => "fci.device.timeout",
            LogEvent::FciAdapterReset { .. } => "fci.adapter.reset",
            LogEvent::ScsiCmdAborted { .. } => "scsi.cmd.abortedByHost",
            LogEvent::ScsiSelectionTimeout { .. } => "scsi.cmd.selectionTimeout",
            LogEvent::ScsiNoMorePaths { .. } => "scsi.cmd.noMorePaths",
            LogEvent::ScsiPathFailover { .. } => "scsi.path.failover",
            LogEvent::DiskMediumError { .. } => "disk.ioMediumError",
            LogEvent::ScsiProtocolViolation { .. } => "scsi.cmd.protocolViolation",
            LogEvent::ScsiSlowResponse { .. } => "scsi.cmd.slowResponse",
            LogEvent::RaidDiskMissing { .. } => "raid.config.filesystem.disk.missing",
            LogEvent::RaidDiskFailed { .. } => "raid.config.filesystem.disk.failed",
            LogEvent::RaidProtocolError { .. } => "raid.config.filesystem.disk.protocolError",
            LogEvent::RaidDiskSlow { .. } => "raid.config.filesystem.disk.slow",
            LogEvent::CfgSystem { .. } => "cfg.system",
            LogEvent::CfgShelf { .. } => "cfg.shelf",
            LogEvent::CfgRaidGroup { .. } => "cfg.raidgroup",
            LogEvent::CfgDiskInstall { .. } => "cfg.disk.install",
            LogEvent::CfgDiskRemove { .. } => "cfg.disk.remove",
        }
    }

    /// The line severity.
    pub fn severity(&self) -> Severity {
        match self {
            LogEvent::FciDeviceTimeout { .. }
            | LogEvent::ScsiCmdAborted { .. }
            | LogEvent::ScsiSelectionTimeout { .. }
            | LogEvent::ScsiNoMorePaths { .. }
            | LogEvent::ScsiProtocolViolation { .. }
            | LogEvent::RaidDiskFailed { .. }
            | LogEvent::RaidProtocolError { .. } => Severity::Error,
            LogEvent::DiskMediumError { .. }
            | LogEvent::ScsiSlowResponse { .. }
            | LogEvent::RaidDiskSlow { .. } => Severity::Warning,
            _ => Severity::Info,
        }
    }

    /// Renders the human-readable message after `]: `.
    pub fn message(&self) -> String {
        let mut out = String::new();
        self.write_message(&mut out)
            .expect("writing to a String never fails");
        out
    }

    /// Writes the message directly into a [`fmt::Write`] sink — the
    /// allocation-free path behind [`LogEvent::message`] and the corpus
    /// renderer. Byte-for-byte identical to [`LogEvent::message`].
    ///
    /// # Errors
    ///
    /// Propagates errors from the sink (infallible for `String`).
    pub fn write_message<W: fmt::Write>(&self, out: &mut W) -> fmt::Result {
        match self {
            LogEvent::FciDeviceTimeout { device } => write!(
                out,
                "Adapter {} encountered a device timeout on device {device}",
                device.adapter
            ),
            LogEvent::FciAdapterReset { adapter } => {
                write!(out, "Resetting Fibre Channel adapter {adapter}.")
            }
            LogEvent::ScsiCmdAborted { device } => {
                write!(out, "Device {device}: Command aborted by host adapter:")
            }
            LogEvent::ScsiSelectionTimeout { device } => write!(
                out,
                "Device {device}: Adapter/target error: Targeted device did not respond \
                 to requested I/O. I/O will be retried."
            ),
            LogEvent::ScsiNoMorePaths { device } => {
                write!(
                    out,
                    "Device {device}: No more paths to device. All retries have failed."
                )
            }
            LogEvent::ScsiPathFailover { device } => write!(
                out,
                "Device {device}: Primary path failed. I/O rerouted through redundant path."
            ),
            LogEvent::DiskMediumError { device, sector } => write!(
                out,
                "Device {device}: Medium error detected on sector {sector}. Sector remapped."
            ),
            LogEvent::ScsiProtocolViolation { device } => write!(
                out,
                "Device {device}: Protocol violation in command response. \
                 Driver or firmware incompatibility suspected."
            ),
            LogEvent::ScsiSlowResponse { device, latency_ms } => write!(
                out,
                "Device {device}: I/O completion exceeded service threshold ({latency_ms} ms)."
            ),
            LogEvent::RaidDiskMissing { device, serial } => {
                write!(out, "File system Disk {device} S/N [{serial}] is missing.")
            }
            LogEvent::RaidDiskFailed { device, serial } => {
                write!(out, "File system Disk {device} S/N [{serial}] has failed.")
            }
            LogEvent::RaidProtocolError { device, serial } => write!(
                out,
                "File system Disk {device} S/N [{serial}] is not responding correctly \
                 to I/O requests."
            ),
            LogEvent::RaidDiskSlow { device, serial } => write!(
                out,
                "File system Disk {device} S/N [{serial}] cannot serve I/O requests \
                 in a timely manner."
            ),
            LogEvent::CfgSystem {
                class,
                disk_model,
                shelf_model,
                paths,
                layout,
            } => write!(
                out,
                "class={} disk_model={} shelf_model={} paths={} layout={}",
                class.tag(),
                disk_model,
                shelf_model.letter(),
                paths.paths(),
                layout.label()
            ),
            LogEvent::CfgShelf {
                shelf,
                model,
                fc_loop,
                adapter,
                position,
                bays,
            } => write!(
                out,
                "shelf={} model={} loop={} adapter={} position={} bays={}",
                shelf.0,
                model.letter(),
                fc_loop.0,
                adapter,
                position,
                bays
            ),
            LogEvent::CfgRaidGroup {
                rg,
                raid_type,
                slots,
            } => {
                write!(out, "rg={} type={} slots=", rg.0, raid_type.label())?;
                for (i, s) in slots.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    write!(out, "{}:{}", s.shelf.0, s.bay)?;
                }
                Ok(())
            }
            LogEvent::CfgDiskInstall {
                serial,
                model,
                slot,
                device,
            } => write!(
                out,
                "serial={} model={} shelf={} bay={} device={}",
                serial, model, slot.shelf.0, slot.bay, device
            ),
            LogEvent::CfgDiskRemove { serial, reason } => {
                write!(out, "serial={serial} reason={reason}")
            }
        }
    }

    /// Appends the message after `]: ` directly to a `String`,
    /// byte-for-byte identical to [`LogEvent::write_message`] but via
    /// literal pushes and direct digit writes instead of the `fmt`
    /// machinery — the corpus renderer's hot path ([`crate::LogBook::to_text`]).
    /// Equivalence with `write_message` is pinned by a unit test below
    /// and fuzzed in `tests/parser_equivalence.rs`.
    pub fn push_message(&self, out: &mut String) {
        match self {
            LogEvent::FciDeviceTimeout { device } => {
                out.push_str("Adapter ");
                push_decimal(out, device.adapter as u64);
                out.push_str(" encountered a device timeout on device ");
                push_device(out, device);
            }
            LogEvent::FciAdapterReset { adapter } => {
                out.push_str("Resetting Fibre Channel adapter ");
                push_decimal(out, *adapter as u64);
                out.push('.');
            }
            LogEvent::ScsiCmdAborted { device } => {
                out.push_str("Device ");
                push_device(out, device);
                out.push_str(": Command aborted by host adapter:");
            }
            LogEvent::ScsiSelectionTimeout { device } => {
                out.push_str("Device ");
                push_device(out, device);
                out.push_str(
                    ": Adapter/target error: Targeted device did not respond \
                     to requested I/O. I/O will be retried.",
                );
            }
            LogEvent::ScsiNoMorePaths { device } => {
                out.push_str("Device ");
                push_device(out, device);
                out.push_str(": No more paths to device. All retries have failed.");
            }
            LogEvent::ScsiPathFailover { device } => {
                out.push_str("Device ");
                push_device(out, device);
                out.push_str(": Primary path failed. I/O rerouted through redundant path.");
            }
            LogEvent::DiskMediumError { device, sector } => {
                out.push_str("Device ");
                push_device(out, device);
                out.push_str(": Medium error detected on sector ");
                push_decimal(out, *sector);
                out.push_str(". Sector remapped.");
            }
            LogEvent::ScsiProtocolViolation { device } => {
                out.push_str("Device ");
                push_device(out, device);
                out.push_str(
                    ": Protocol violation in command response. \
                     Driver or firmware incompatibility suspected.",
                );
            }
            LogEvent::ScsiSlowResponse { device, latency_ms } => {
                out.push_str("Device ");
                push_device(out, device);
                out.push_str(": I/O completion exceeded service threshold (");
                push_decimal(out, *latency_ms as u64);
                out.push_str(" ms).");
            }
            LogEvent::RaidDiskMissing { device, serial } => {
                push_raid_prefix(out, device, serial);
                out.push_str(" is missing.");
            }
            LogEvent::RaidDiskFailed { device, serial } => {
                push_raid_prefix(out, device, serial);
                out.push_str(" has failed.");
            }
            LogEvent::RaidProtocolError { device, serial } => {
                push_raid_prefix(out, device, serial);
                out.push_str(" is not responding correctly to I/O requests.");
            }
            LogEvent::RaidDiskSlow { device, serial } => {
                push_raid_prefix(out, device, serial);
                out.push_str(" cannot serve I/O requests in a timely manner.");
            }
            LogEvent::CfgSystem {
                class,
                disk_model,
                shelf_model,
                paths,
                layout,
            } => {
                out.push_str("class=");
                out.push_str(class.tag());
                out.push_str(" disk_model=");
                push_disk_model(out, disk_model);
                out.push_str(" shelf_model=");
                out.push(shelf_model.letter());
                out.push_str(" paths=");
                push_decimal(out, paths.paths() as u64);
                out.push_str(" layout=");
                out.push_str(layout.label());
            }
            LogEvent::CfgShelf {
                shelf,
                model,
                fc_loop,
                adapter,
                position,
                bays,
            } => {
                out.push_str("shelf=");
                push_decimal(out, shelf.0 as u64);
                out.push_str(" model=");
                out.push(model.letter());
                out.push_str(" loop=");
                push_decimal(out, fc_loop.0 as u64);
                out.push_str(" adapter=");
                push_decimal(out, *adapter as u64);
                out.push_str(" position=");
                push_decimal(out, *position as u64);
                out.push_str(" bays=");
                push_decimal(out, *bays as u64);
            }
            LogEvent::CfgRaidGroup {
                rg,
                raid_type,
                slots,
            } => {
                out.push_str("rg=");
                push_decimal(out, rg.0 as u64);
                out.push_str(" type=");
                out.push_str(raid_type.label());
                out.push_str(" slots=");
                for (i, s) in slots.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_decimal(out, s.shelf.0 as u64);
                    out.push(':');
                    push_decimal(out, s.bay as u64);
                }
            }
            LogEvent::CfgDiskInstall {
                serial,
                model,
                slot,
                device,
            } => {
                out.push_str("serial=");
                out.push_str(serial);
                out.push_str(" model=");
                push_disk_model(out, model);
                out.push_str(" shelf=");
                push_decimal(out, slot.shelf.0 as u64);
                out.push_str(" bay=");
                push_decimal(out, slot.bay as u64);
                out.push_str(" device=");
                push_device(out, device);
            }
            LogEvent::CfgDiskRemove { serial, reason } => {
                out.push_str("serial=");
                out.push_str(serial);
                out.push_str(" reason=");
                out.push_str(reason);
            }
        }
    }

    /// Heap bytes this event holds beyond its inline enum footprint —
    /// the variable part of [`LogLine::resident_bytes`].
    fn heap_bytes(&self) -> usize {
        match self {
            LogEvent::RaidDiskMissing { serial, .. }
            | LogEvent::RaidDiskFailed { serial, .. }
            | LogEvent::RaidProtocolError { serial, .. }
            | LogEvent::RaidDiskSlow { serial, .. } => serial.len(),
            LogEvent::CfgRaidGroup { slots, .. } => slots.len() * std::mem::size_of::<SlotAddr>(),
            LogEvent::CfgDiskInstall { serial, .. } => serial.len(),
            LogEvent::CfgDiskRemove { serial, reason } => serial.len() + reason.len(),
            _ => 0,
        }
    }

    /// Parses a message back into an event, given the subsystem tag.
    ///
    /// Returns `None` when the tag is unknown or the message does not match
    /// the tag's layout.
    pub fn parse(tag: &str, message: &str) -> Option<LogEvent> {
        fn device_after(msg: &str, prefix: &str) -> Option<DeviceAddr> {
            let rest = msg.strip_prefix(prefix)?;
            let end = rest.find([':', ' '])?;
            rest[..end].parse().ok()
        }
        fn device_and_serial(msg: &str) -> Option<(DeviceAddr, String)> {
            let rest = msg.strip_prefix("File system Disk ")?;
            let sp = rest.find(' ')?;
            let device: DeviceAddr = rest[..sp].parse().ok()?;
            let open = rest.find('[')?;
            let close = rest.find(']')?;
            if close <= open + 1 {
                return None;
            }
            Some((device, rest[open + 1..close].to_owned()))
        }
        fn kv(msg: &str) -> std::collections::HashMap<&str, &str> {
            msg.split_whitespace()
                .filter_map(|t| t.split_once('='))
                .collect()
        }

        match tag {
            "fci.device.timeout" => {
                let idx = message.rfind(" on device ")?;
                let device: DeviceAddr = message[idx + 11..].trim().parse().ok()?;
                Some(LogEvent::FciDeviceTimeout { device })
            }
            "fci.adapter.reset" => {
                let rest = message.strip_prefix("Resetting Fibre Channel adapter ")?;
                let adapter: u8 = rest.trim_end_matches('.').parse().ok()?;
                Some(LogEvent::FciAdapterReset { adapter })
            }
            "scsi.cmd.abortedByHost" => Some(LogEvent::ScsiCmdAborted {
                device: device_after(message, "Device ")?,
            }),
            "scsi.cmd.selectionTimeout" => Some(LogEvent::ScsiSelectionTimeout {
                device: device_after(message, "Device ")?,
            }),
            "scsi.cmd.noMorePaths" => Some(LogEvent::ScsiNoMorePaths {
                device: device_after(message, "Device ")?,
            }),
            "scsi.path.failover" => Some(LogEvent::ScsiPathFailover {
                device: device_after(message, "Device ")?,
            }),
            "disk.ioMediumError" => {
                let device = device_after(message, "Device ")?;
                let idx = message.find("sector ")?;
                let rest = &message[idx + 7..];
                let end = rest.find('.')?;
                let sector: u64 = rest[..end].parse().ok()?;
                Some(LogEvent::DiskMediumError { device, sector })
            }
            "scsi.cmd.protocolViolation" => Some(LogEvent::ScsiProtocolViolation {
                device: device_after(message, "Device ")?,
            }),
            "scsi.cmd.slowResponse" => {
                let device = device_after(message, "Device ")?;
                let open = message.find('(')?;
                let end = message.find(" ms)")?;
                let latency_ms: u32 = message[open + 1..end].parse().ok()?;
                Some(LogEvent::ScsiSlowResponse { device, latency_ms })
            }
            "raid.config.filesystem.disk.missing" => {
                let (device, serial) = device_and_serial(message)?;
                Some(LogEvent::RaidDiskMissing { device, serial })
            }
            "raid.config.filesystem.disk.failed" => {
                let (device, serial) = device_and_serial(message)?;
                Some(LogEvent::RaidDiskFailed { device, serial })
            }
            "raid.config.filesystem.disk.protocolError" => {
                let (device, serial) = device_and_serial(message)?;
                Some(LogEvent::RaidProtocolError { device, serial })
            }
            "raid.config.filesystem.disk.slow" => {
                let (device, serial) = device_and_serial(message)?;
                Some(LogEvent::RaidDiskSlow { device, serial })
            }
            "cfg.system" => {
                let kv = kv(message);
                Some(LogEvent::CfgSystem {
                    class: SystemClass::from_tag(kv.get("class")?)?,
                    disk_model: DiskModelId::parse(kv.get("disk_model")?)?,
                    shelf_model: ShelfModel::from_letter(kv.get("shelf_model")?.chars().next()?)?,
                    paths: match *kv.get("paths")? {
                        "1" => PathConfig::SinglePath,
                        "2" => PathConfig::DualPath,
                        _ => return None,
                    },
                    layout: match *kv.get("layout")? {
                        "span-shelves" => LayoutPolicy::SpanShelves,
                        "same-shelf" => LayoutPolicy::SameShelf,
                        _ => return None,
                    },
                })
            }
            "cfg.shelf" => {
                let kv = kv(message);
                Some(LogEvent::CfgShelf {
                    shelf: ShelfId(kv.get("shelf")?.parse().ok()?),
                    model: ShelfModel::from_letter(kv.get("model")?.chars().next()?)?,
                    fc_loop: LoopId(kv.get("loop")?.parse().ok()?),
                    adapter: kv.get("adapter")?.parse().ok()?,
                    position: kv.get("position")?.parse().ok()?,
                    bays: kv.get("bays")?.parse().ok()?,
                })
            }
            "cfg.raidgroup" => {
                let kv = kv(message);
                let slots = kv
                    .get("slots")?
                    .split(',')
                    .map(|pair| {
                        let (shelf, bay) = pair.split_once(':')?;
                        Some(SlotAddr {
                            shelf: ShelfId(shelf.parse().ok()?),
                            bay: bay.parse().ok()?,
                        })
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(LogEvent::CfgRaidGroup {
                    rg: RaidGroupId(kv.get("rg")?.parse().ok()?),
                    raid_type: match *kv.get("type")? {
                        "RAID4" => RaidType::Raid4,
                        "RAID6" => RaidType::Raid6,
                        _ => return None,
                    },
                    slots,
                })
            }
            "cfg.disk.install" => {
                let kv = kv(message);
                Some(LogEvent::CfgDiskInstall {
                    serial: (*kv.get("serial")?).to_owned(),
                    model: DiskModelId::parse(kv.get("model")?)?,
                    slot: SlotAddr {
                        shelf: ShelfId(kv.get("shelf")?.parse().ok()?),
                        bay: kv.get("bay")?.parse().ok()?,
                    },
                    device: kv.get("device")?.parse().ok()?,
                })
            }
            "cfg.disk.remove" => {
                let kv = kv(message);
                Some(LogEvent::CfgDiskRemove {
                    serial: (*kv.get("serial")?).to_owned(),
                    reason: (*kv.get("reason")?).to_owned(),
                })
            }
            _ => None,
        }
    }
}

/// Appends `v`'s decimal digits without going through `fmt`.
fn push_decimal(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII"));
}

/// Appends `adapter.target`, matching [`DeviceAddr`]'s `Display`.
fn push_device(out: &mut String, device: &DeviceAddr) {
    push_decimal(out, device.adapter as u64);
    out.push('.');
    push_decimal(out, device.target as u64);
}

/// Appends `family-capacity`, matching [`DiskModelId`]'s `Display`.
fn push_disk_model(out: &mut String, model: &DiskModelId) {
    out.push(model.family.0);
    out.push('-');
    push_decimal(out, model.capacity_point as u64);
}

/// Appends the shared `File system Disk <device> S/N [<serial>]` prefix
/// of the RAID-layer messages.
fn push_raid_prefix(out: &mut String, device: &DeviceAddr, serial: &str) {
    out.push_str("File system Disk ");
    push_device(out, device);
    out.push_str(" S/N [");
    out.push_str(serial);
    out.push(']');
}

/// One complete log line: host, timestamp, event.
#[derive(Debug, Clone, PartialEq)]
pub struct LogLine {
    /// The storage system that emitted the line.
    pub host: SystemId,
    /// When the line was emitted.
    pub at: SimTime,
    /// The typed event.
    pub event: LogEvent,
}

impl LogLine {
    /// Creates a line.
    pub fn new(host: SystemId, at: SimTime, event: LogEvent) -> Self {
        LogLine { host, at, event }
    }

    /// In-memory footprint of this line: its inline size plus the heap its
    /// event owns. This is what a worker actually holds resident when the
    /// streaming pipeline carries parsed lines instead of rendered text —
    /// the unit of [`crate::LogBook::resident_bytes`].
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<LogLine>() + self.event.heap_bytes()
    }

    /// Appends the rendered line to `out`, byte-for-byte identical to
    /// this type's `Display` but via direct pushes — the corpus
    /// renderer's hot path ([`crate::LogBook::to_text`]). `Display`
    /// stays the oracle; a unit test pins the equivalence.
    pub fn render_into(&self, out: &mut String) {
        out.push_str("sys-");
        push_decimal(out, self.host.0 as u64);
        out.push(' ');
        self.at.civil().push_into(out);
        out.push_str(" [");
        out.push_str(self.event.tag());
        out.push(':');
        out.push_str(self.event.severity().tag());
        out.push_str("]: ");
        self.event.push_message(out);
    }

    /// Parses one rendered line.
    ///
    /// Returns `None` for malformed lines (the classifier skips them, as
    /// real log pipelines must).
    pub fn parse(line: &str) -> Option<LogLine> {
        let line = line.trim_end();
        let (host_tok, rest) = line.split_once(' ')?;
        let host = SystemId(host_tok.strip_prefix("sys-")?.parse().ok()?);
        // Timestamp: "Sun Jul 23 05:43:36 PDT 2006" = 6 whitespace-separated
        // tokens, but the day-of-month may be space-padded.
        let rest = rest.trim_start();
        let bracket = rest.find('[')?;
        let ts_text = rest[..bracket].trim();
        let at = ssfa_model::CivilDateTime::parse_log_timestamp(ts_text)?.to_sim_time()?;
        let rest = &rest[bracket + 1..];
        let close = rest.find("]: ")?;
        let (tag, severity_tag) = rest[..close].rsplit_once(':')?;
        let severity = Severity::from_tag(severity_tag)?;
        let message = &rest[close + 3..];
        let event = LogEvent::parse(tag, message)?;
        if event.severity() != severity {
            return None;
        }
        Some(LogLine { host, at, event })
    }
}

impl fmt::Display for LogLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sys-{} {} [{}:{}]: ",
            self.host.0,
            self.at.civil(),
            self.event.tag(),
            self.event.severity(),
        )?;
        self.event.write_message(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssfa_model::DiskInstanceId;

    fn roundtrip(event: LogEvent) {
        let line = LogLine::new(SystemId(42), SimTime::from_secs(79_876_543), event);
        let text = line.to_string();
        let parsed = LogLine::parse(&text).unwrap_or_else(|| panic!("failed to parse: {text}"));
        assert_eq!(parsed, line, "round-trip mismatch for: {text}");
    }

    #[test]
    fn figure_3_interconnect_cascade_lines_round_trip() {
        let d = DeviceAddr::new(8, 24);
        roundtrip(LogEvent::FciDeviceTimeout { device: d });
        roundtrip(LogEvent::FciAdapterReset { adapter: 8 });
        roundtrip(LogEvent::ScsiCmdAborted { device: d });
        roundtrip(LogEvent::ScsiSelectionTimeout { device: d });
        roundtrip(LogEvent::ScsiNoMorePaths { device: d });
        roundtrip(LogEvent::RaidDiskMissing {
            device: d,
            serial: DiskInstanceId(12345).serial(),
        });
    }

    #[test]
    fn all_other_events_round_trip() {
        let d = DeviceAddr::new(9, 31);
        let serial = DiskInstanceId(7).serial();
        roundtrip(LogEvent::ScsiPathFailover { device: d });
        roundtrip(LogEvent::DiskMediumError {
            device: d,
            sector: 123_456_789,
        });
        roundtrip(LogEvent::ScsiProtocolViolation { device: d });
        roundtrip(LogEvent::ScsiSlowResponse {
            device: d,
            latency_ms: 30_000,
        });
        roundtrip(LogEvent::RaidDiskFailed {
            device: d,
            serial: serial.clone(),
        });
        roundtrip(LogEvent::RaidProtocolError {
            device: d,
            serial: serial.clone(),
        });
        roundtrip(LogEvent::RaidDiskSlow { device: d, serial });
    }

    #[test]
    fn cfg_records_round_trip() {
        roundtrip(LogEvent::CfgSystem {
            class: SystemClass::MidRange,
            disk_model: DiskModelId::new('D', 2),
            shelf_model: ShelfModel::B,
            paths: PathConfig::DualPath,
            layout: LayoutPolicy::SpanShelves,
        });
        roundtrip(LogEvent::CfgShelf {
            shelf: ShelfId(1234),
            model: ShelfModel::C,
            fc_loop: LoopId(88),
            adapter: 9,
            position: 2,
            bays: 13,
        });
        roundtrip(LogEvent::CfgRaidGroup {
            rg: RaidGroupId(55),
            raid_type: RaidType::Raid6,
            slots: vec![
                SlotAddr {
                    shelf: ShelfId(1),
                    bay: 0,
                },
                SlotAddr {
                    shelf: ShelfId(2),
                    bay: 0,
                },
                SlotAddr {
                    shelf: ShelfId(3),
                    bay: 1,
                },
            ],
        });
        roundtrip(LogEvent::CfgDiskInstall {
            serial: DiskInstanceId(31337).serial(),
            model: DiskModelId::new('H', 2),
            slot: SlotAddr {
                shelf: ShelfId(9),
                bay: 13,
            },
            device: DeviceAddr::new(8, 45),
        });
        roundtrip(LogEvent::CfgDiskRemove {
            serial: DiskInstanceId(31337).serial(),
            reason: "failed".to_owned(),
        });
    }

    #[test]
    fn render_into_matches_display_for_every_event_kind() {
        let d = DeviceAddr::new(8, 24);
        let serial = DiskInstanceId(31337).serial();
        let events = vec![
            LogEvent::FciDeviceTimeout { device: d },
            LogEvent::FciAdapterReset { adapter: 8 },
            LogEvent::ScsiCmdAborted { device: d },
            LogEvent::ScsiSelectionTimeout { device: d },
            LogEvent::ScsiNoMorePaths { device: d },
            LogEvent::ScsiPathFailover { device: d },
            LogEvent::DiskMediumError {
                device: d,
                sector: 123_456_789,
            },
            LogEvent::ScsiProtocolViolation { device: d },
            LogEvent::ScsiSlowResponse {
                device: d,
                latency_ms: 30_000,
            },
            LogEvent::RaidDiskMissing {
                device: d,
                serial: serial.clone(),
            },
            LogEvent::RaidDiskFailed {
                device: d,
                serial: serial.clone(),
            },
            LogEvent::RaidProtocolError {
                device: d,
                serial: serial.clone(),
            },
            LogEvent::RaidDiskSlow {
                device: d,
                serial: serial.clone(),
            },
            LogEvent::CfgSystem {
                class: SystemClass::MidRange,
                disk_model: DiskModelId::new('D', 2),
                shelf_model: ShelfModel::B,
                paths: PathConfig::SinglePath,
                layout: LayoutPolicy::SameShelf,
            },
            LogEvent::CfgShelf {
                shelf: ShelfId(1234),
                model: ShelfModel::C,
                fc_loop: LoopId(88),
                adapter: 9,
                position: 2,
                bays: 13,
            },
            LogEvent::CfgRaidGroup {
                rg: RaidGroupId(55),
                raid_type: RaidType::Raid6,
                slots: vec![
                    SlotAddr {
                        shelf: ShelfId(1),
                        bay: 0,
                    },
                    SlotAddr {
                        shelf: ShelfId(2),
                        bay: 7,
                    },
                ],
            },
            LogEvent::CfgRaidGroup {
                rg: RaidGroupId(0),
                raid_type: RaidType::Raid4,
                slots: Vec::new(),
            },
            LogEvent::CfgDiskInstall {
                serial: serial.clone(),
                model: DiskModelId::new('H', 2),
                slot: SlotAddr {
                    shelf: ShelfId(9),
                    bay: 13,
                },
                device: DeviceAddr::new(8, 45),
            },
            LogEvent::CfgDiskRemove {
                serial,
                reason: "study_end".to_owned(),
            },
        ];
        let mut out = String::new();
        for event in events {
            let line = LogLine::new(SystemId(42), SimTime::from_secs(79_876_543), event);
            out.clear();
            line.render_into(&mut out);
            assert_eq!(out, line.to_string());
        }
        // Single-digit day exercises the timestamp's space padding.
        let line = LogLine::new(
            SystemId(0),
            SimTime::from_secs(3600),
            LogEvent::FciAdapterReset { adapter: 0 },
        );
        out.clear();
        line.render_into(&mut out);
        assert_eq!(out, line.to_string());
    }

    #[test]
    fn rendered_line_matches_paper_layout() {
        // The paper's Figure 3 example.
        let at = ssfa_model::CivilDateTime {
            year: 2006,
            month: 7,
            day: 23,
            hour: 5,
            minute: 43,
            second: 36,
            weekday: 0,
        }
        .to_sim_time()
        .unwrap();
        let line = LogLine::new(
            SystemId(7),
            at,
            LogEvent::FciDeviceTimeout {
                device: DeviceAddr::new(8, 24),
            },
        );
        assert_eq!(
            line.to_string(),
            "sys-7 Sun Jul 23 05:43:36 PDT 2006 [fci.device.timeout:error]: \
             Adapter 8 encountered a device timeout on device 8.24"
        );
    }

    #[test]
    fn malformed_lines_parse_to_none() {
        assert!(LogLine::parse("").is_none());
        assert!(LogLine::parse("garbage line").is_none());
        assert!(LogLine::parse("sys-x Sun Jul 23 05:43:36 PDT 2006 [a:info]: b").is_none());
        assert!(
            LogLine::parse("sys-1 Sun Jul 23 05:43:36 PDT 2006 [unknown.tag:error]: whatever")
                .is_none()
        );
        // Severity mismatch is rejected.
        assert!(LogLine::parse(
            "sys-1 Sun Jul 23 05:43:36 PDT 2006 [fci.device.timeout:info]: \
             Adapter 8 encountered a device timeout on device 8.24"
        )
        .is_none());
        // Truncated payload.
        assert!(LogLine::parse(
            "sys-1 Sun Jul 23 05:43:36 PDT 2006 [raid.config.filesystem.disk.missing:info]: \
             File system Disk 8.24 S/N ["
        )
        .is_none());
    }

    #[test]
    fn raid_events_carry_classifiable_tags() {
        let d = DeviceAddr::new(1, 2);
        let s = "3EL00000001".to_owned();
        assert_eq!(
            LogEvent::RaidDiskMissing {
                device: d,
                serial: s.clone()
            }
            .tag(),
            "raid.config.filesystem.disk.missing"
        );
        assert!(LogEvent::RaidDiskFailed {
            device: d,
            serial: s.clone()
        }
        .tag()
        .starts_with("raid."));
        assert!(LogEvent::RaidProtocolError {
            device: d,
            serial: s.clone()
        }
        .tag()
        .starts_with("raid."));
        assert!(LogEvent::RaidDiskSlow {
            device: d,
            serial: s
        }
        .tag()
        .starts_with("raid."));
    }
}
