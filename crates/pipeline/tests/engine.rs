//! Engine seam tests driven through custom [`Source`] implementations and
//! the [`Sink`] stage — the extension points the trait seams exist for.

use ssfa_logs::{ChunkPlan, Strictness};
use ssfa_model::{FleetConfig, SystemClass, SystemId};
use ssfa_pipeline::{ChunkPolicy, JsonSummarySink, Pipeline, ShardData, Source, TextReportSink};

/// A source with nothing to yield: the engine must short-circuit without
/// planning chunks, spawning workers, or touching `load`.
struct EmptySource;

impl Source for EmptySource {
    fn shard_count(&self) -> usize {
        0
    }

    fn plan_chunks(&self, _policy: ChunkPolicy) -> ChunkPlan {
        ChunkPlan::whole(0)
    }

    fn load(&self, shard: usize) -> ShardData<'_> {
        unreachable!("empty source asked to load shard {shard}")
    }

    fn system_ids(&self, shard: usize) -> Vec<SystemId> {
        unreachable!("empty source asked for systems of shard {shard}")
    }
}

/// The smallest legal pipeline: one class floored to one system.
fn tiny_pipeline() -> Pipeline {
    Pipeline::new()
        .seed(3)
        .config(
            FleetConfig::paper()
                .only_classes(&[SystemClass::LowEnd])
                .scaled(1e-9),
        )
        .threads(2)
}

#[test]
fn empty_source_yields_a_vacuously_complete_run() {
    for pipeline in [Pipeline::new(), Pipeline::new().lenient().text_transport()] {
        let (study, stats, health) = pipeline.run_source(&EmptySource).unwrap();
        assert!(study.input().failures.is_empty());
        assert!(study.input().topology.systems.is_empty());
        assert_eq!(stats.shards, 0);
        assert_eq!(stats.chunks, 0);
        assert_eq!(stats.total_bytes, 0);
        assert_eq!(health.shards_total, 0);
        assert_eq!(health.coverage(), 1.0, "empty run is vacuously complete");
        assert!(health.is_clean());
    }
}

#[test]
fn empty_source_reports_the_configured_strictness() {
    let (_, _, strict) = Pipeline::new().run_source(&EmptySource).unwrap();
    assert_eq!(strict.strictness, Strictness::Strict);
    let (_, _, lenient) = Pipeline::new().lenient().run_source(&EmptySource).unwrap();
    assert_eq!(lenient.strictness, Strictness::Lenient);
}

#[test]
fn sinks_receive_the_same_run_the_caller_gets_back() {
    let pipeline = tiny_pipeline();
    let mut sink = TextReportSink::new(Vec::new());
    let (study, health) = pipeline.run_to_sink(&mut sink).unwrap();
    let text = String::from_utf8(sink.into_inner()).unwrap();
    assert!(
        text.contains(&format!("{health}").lines().next().unwrap().to_owned()),
        "sink text must carry the health audit:\n{text}"
    );
    assert_eq!(
        text.lines().count(),
        study.table1().len() + format!("{health}").lines().count(),
        "one line per Table 1 row plus the audit"
    );

    let mut json = JsonSummarySink::new(Vec::new());
    pipeline.run_to_sink(&mut json).unwrap();
    let text = String::from_utf8(json.into_inner()).unwrap();
    assert!(text.contains("\"schema\": \"ssfa-run-summary/v1\""));
    assert!(text.contains("\"shards_total\": 1"));
    assert!(text.contains("\"coverage\": 1.000000"));
}

#[test]
fn failing_sink_surfaces_as_a_sink_error() {
    /// A writer that always refuses.
    struct Refuse;
    impl std::io::Write for Refuse {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let err = tiny_pipeline()
        .run_to_sink(&mut TextReportSink::new(Refuse))
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("sink") && msg.contains("disk full"),
        "unexpected error rendering: {msg}"
    );
}
