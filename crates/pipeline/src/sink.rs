//! The `Sink` stage: where a finished run's artifacts go.
//!
//! Sinks consume the reduced [`Study`] plus the run's [`RunHealth`]
//! audit and write a report — text for humans, hand-rolled JSON for
//! machines (the workspace is offline; there is deliberately no serde).
//! Drive them with [`crate::Pipeline::run_to_sink`], or call
//! [`Sink::consume`] yourself on any study you already hold.

use std::io::Write;

use ssfa_core::Study;

use crate::health::RunHealth;

/// Writes a finished run somewhere.
pub trait Sink {
    /// Consumes one run's results.
    ///
    /// # Errors
    ///
    /// Returns the underlying writer's I/O error, which
    /// [`crate::Pipeline::run_to_sink`] surfaces as
    /// [`crate::PipelineError::Sink`].
    fn consume(&mut self, study: &Study, health: &RunHealth) -> std::io::Result<()>;
}

/// Human-readable report sink: the paper's Table 1 rows (one `Debug` row
/// per line, the same rendering the golden snapshots pin) followed by the
/// run-health audit.
#[derive(Debug)]
pub struct TextReportSink<W: Write> {
    out: W,
}

impl<W: Write> TextReportSink<W> {
    /// A text report writing to `out`.
    pub fn new(out: W) -> TextReportSink<W> {
        TextReportSink { out }
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> Sink for TextReportSink<W> {
    fn consume(&mut self, study: &Study, health: &RunHealth) -> std::io::Result<()> {
        for row in study.table1() {
            writeln!(self.out, "{row:?}")?;
        }
        writeln!(self.out, "{health}")?;
        Ok(())
    }
}

/// Machine-readable summary sink: one small JSON object with the run's
/// headline counts and health counters (hand-rolled, schema
/// `ssfa-run-summary/v1`, matching the bench harness's offline-JSON
/// idiom).
#[derive(Debug)]
pub struct JsonSummarySink<W: Write> {
    out: W,
}

impl<W: Write> JsonSummarySink<W> {
    /// A JSON summary writing to `out`.
    pub fn new(out: W) -> JsonSummarySink<W> {
        JsonSummarySink { out }
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> Sink for JsonSummarySink<W> {
    fn consume(&mut self, study: &Study, health: &RunHealth) -> std::io::Result<()> {
        let out = &mut self.out;
        writeln!(out, "{{")?;
        writeln!(out, "  \"schema\": \"ssfa-run-summary/v1\",")?;
        writeln!(
            out,
            "  \"systems\": {},",
            study.input().topology.systems.len()
        )?;
        writeln!(out, "  \"lifetimes\": {},", study.input().lifetimes.len())?;
        writeln!(out, "  \"failures\": {},", study.input().failures.len())?;
        writeln!(
            out,
            "  \"disk_years\": {:.3},",
            study.input().total_disk_years()
        )?;
        writeln!(out, "  \"strictness\": \"{:?}\",", health.strictness)?;
        writeln!(out, "  \"shards_total\": {},", health.shards_total)?;
        writeln!(out, "  \"shards_processed\": {},", health.shards_processed)?;
        writeln!(out, "  \"shards_dropped\": {},", health.shards_dropped)?;
        writeln!(out, "  \"chunks_total\": {},", health.chunks_total)?;
        writeln!(
            out,
            "  \"chunks_quarantined\": {},",
            health.chunks_quarantined()
        )?;
        writeln!(out, "  \"coverage\": {:.6},", health.coverage())?;
        writeln!(out, "  \"lines_seen\": {},", health.lines_seen)?;
        writeln!(out, "  \"lines_skipped\": {}", health.lines_skipped_total())?;
        writeln!(out, "}}")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssfa_core::StudyFold;

    fn empty_run() -> (Study, RunHealth) {
        (StudyFold::new().finish(), RunHealth::default())
    }

    #[test]
    fn text_sink_writes_health_even_for_empty_runs() {
        let (study, health) = empty_run();
        let mut sink = TextReportSink::new(Vec::new());
        sink.consume(&study, &health).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("run health"), "missing health audit: {text}");
        assert!(text.contains("100.00% coverage"));
    }

    #[test]
    fn json_sink_emits_balanced_braces_and_counts() {
        let (study, health) = empty_run();
        let mut sink = JsonSummarySink::new(Vec::new());
        sink.consume(&study, &health).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.starts_with("{\n") && text.ends_with("}\n"), "{text}");
        assert!(text.contains("\"schema\": \"ssfa-run-summary/v1\""));
        assert!(text.contains("\"coverage\": 1.000000"));
        assert!(text.contains("\"failures\": 0"));
    }
}
