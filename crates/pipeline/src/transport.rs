//! The `Transport` stage: what representation a shard travels in between
//! the [`crate::Source`] and the classifier.
//!
//! This unifies what used to be a `text_transport()` special case and an
//! inline fault-injection branch into one seam with three shipped
//! implementations. Transports see one shard at a time and drop it after
//! feeding, which is what keeps peak corpus residency at one shard.
//!
//! Shards arrive as [`ShardData`] — already-parsed lines from the
//! simulator sources, corpus text (possibly borrowed straight from an
//! mmap) from the disk-backed ones. [`ParsedLines`] feeds each
//! representation natively, so a text shard goes mapped bytes →
//! borrowed-slice parser → classifier with no intermediate allocation per
//! line; [`TextRoundTrip`] forces the text representation to exercise the
//! full serialize/re-parse round trip.

use ssfa_logs::{Classifier, FaultInjector, FaultLedger, FaultSpec, LogError, ShardFate};

use crate::source::ShardData;

/// What conveying one shard produced, for the run's stream statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Corpus bytes the shard occupied in this transport's representation
    /// (rendered text bytes for text-shaped deliveries, in-memory parsed
    /// line bytes for parsed ones).
    pub bytes: usize,
    /// The shard never reached the classifier (fault injection dropped
    /// the whole upload). `bytes` is zero.
    pub dropped: bool,
}

/// Moves one shard from the source into a chunk's classifier.
///
/// Implementations must be [`Sync`]: worker threads convey shards of
/// different chunks concurrently. `shard` and `attempt` identify the
/// delivery for deterministic fault keying; `ledger` records any faults
/// landed on the way.
pub trait Transport: Sync {
    /// Feeds `data` into `classifier`, consuming the shard.
    ///
    /// # Errors
    ///
    /// Returns the classifier's [`LogError`] — under
    /// [`ssfa_logs::Strictness::Strict`] the first bad line, under
    /// [`ssfa_logs::Strictness::Lenient`] only I/O-grade failures.
    fn convey(
        &self,
        shard: usize,
        attempt: u32,
        data: ShardData<'_>,
        classifier: &mut Classifier,
        ledger: &mut FaultLedger,
    ) -> Result<Delivery, LogError>;
}

/// The default transport: feeds each shard in the representation it
/// arrived in. Parsed shards hand [`ssfa_logs::LogLine`]s straight to the
/// classifier — the same representation the monolithic oracle consumes;
/// text shards stream through the classifier's byte-oriented parser,
/// which borrows every message slice from the shard buffer instead of
/// allocating owned lines.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParsedLines;

impl Transport for ParsedLines {
    fn convey(
        &self,
        _shard: usize,
        _attempt: u32,
        data: ShardData<'_>,
        classifier: &mut Classifier,
        _ledger: &mut FaultLedger,
    ) -> Result<Delivery, LogError> {
        let bytes = match data {
            ShardData::Parsed(book) => {
                let bytes = book.resident_bytes();
                classifier.feed_book(&book)?;
                bytes
            }
            ShardData::Text(text) => {
                classifier.feed_bytes(text.as_bytes())?;
                // Per-shard-file EOF: a truncated tail must not glue onto
                // the next shard's first line.
                classifier.flush_tail()?;
                text.len()
            }
        };
        Ok(Delivery {
            bytes,
            dropped: false,
        })
    }
}

/// Serializes every shard to corpus text and re-parses it — the full
/// on-disk round trip production corpora arrive as. Slower than
/// [`ParsedLines`] for simulator shards (which must render first), and
/// kept differentially tested for exactly that reason.
#[derive(Debug, Clone, Copy, Default)]
pub struct TextRoundTrip;

impl Transport for TextRoundTrip {
    fn convey(
        &self,
        _shard: usize,
        _attempt: u32,
        data: ShardData<'_>,
        classifier: &mut Classifier,
        _ledger: &mut FaultLedger,
    ) -> Result<Delivery, LogError> {
        let text = data.into_text();
        classifier.feed_bytes(text.as_bytes())?;
        // Restore per-shard-file EOF semantics: a truncated tail must not
        // glue onto the next shard's first line.
        classifier.flush_tail()?;
        Ok(Delivery {
            bytes: text.len(),
            dropped: false,
        })
    }
}

/// [`TextRoundTrip`] with a deterministic, seedable [`FaultInjector`]
/// corrupting each shard's bytes on the way — the chaos-engineering
/// transport every fault-injected run uses (the injector corrupts bytes,
/// so injection implies the text representation).
///
/// Faults stay keyed by `(shard, attempt)`, not by chunk, so the landed
/// ledger is invariant under chunking and the retry path re-rolls its
/// corruption.
#[derive(Debug)]
pub struct InjectedText {
    injector: FaultInjector,
}

impl InjectedText {
    /// A fault-injecting transport for `spec`, keyed off the run `seed`.
    pub fn new(spec: FaultSpec, seed: u64) -> InjectedText {
        InjectedText {
            injector: FaultInjector::new(spec, seed),
        }
    }
}

impl Transport for InjectedText {
    fn convey(
        &self,
        shard: usize,
        attempt: u32,
        data: ShardData<'_>,
        classifier: &mut Classifier,
        ledger: &mut FaultLedger,
    ) -> Result<Delivery, LogError> {
        let text = data.into_text();
        match self.injector.corrupt_shard(shard, attempt, &text, ledger) {
            ShardFate::Processed(bytes) => {
                drop(text);
                classifier.feed_bytes(&bytes)?;
                classifier.flush_tail()?;
                Ok(Delivery {
                    bytes: bytes.len(),
                    dropped: false,
                })
            }
            ShardFate::Dropped => Ok(Delivery {
                bytes: 0,
                dropped: true,
            }),
        }
    }
}
