//! The `Transport` stage: what representation a shard travels in between
//! the [`crate::Source`] and the classifier.
//!
//! This unifies what used to be a `text_transport()` special case and an
//! inline fault-injection branch into one seam with three shipped
//! implementations. Transports see one shard at a time and drop it after
//! feeding, which is what keeps peak corpus residency at one shard.

use ssfa_logs::{Classifier, FaultInjector, FaultLedger, FaultSpec, LogBook, LogError, ShardFate};

/// What conveying one shard produced, for the run's stream statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Corpus bytes the shard occupied in this transport's representation
    /// (rendered text bytes for the text transports, in-memory parsed
    /// line bytes for [`ParsedLines`]).
    pub bytes: usize,
    /// The shard never reached the classifier (fault injection dropped
    /// the whole upload). `bytes` is zero.
    pub dropped: bool,
}

/// Moves one shard from the source into a chunk's classifier.
///
/// Implementations must be [`Sync`]: worker threads convey shards of
/// different chunks concurrently. `shard` and `attempt` identify the
/// delivery for deterministic fault keying; `ledger` records any faults
/// landed on the way.
pub trait Transport: Sync {
    /// Feeds `book` into `classifier`, consuming the shard.
    ///
    /// # Errors
    ///
    /// Returns the classifier's [`LogError`] — under
    /// [`ssfa_logs::Strictness::Strict`] the first bad line, under
    /// [`ssfa_logs::Strictness::Lenient`] only I/O-grade failures.
    fn convey(
        &self,
        shard: usize,
        attempt: u32,
        book: LogBook,
        classifier: &mut Classifier,
        ledger: &mut FaultLedger,
    ) -> Result<Delivery, LogError>;
}

/// The default transport: hands parsed [`ssfa_logs::LogLine`]s straight
/// to the classifier — the same representation the monolithic oracle
/// consumes, with no serialize/re-parse round trip.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParsedLines;

impl Transport for ParsedLines {
    fn convey(
        &self,
        _shard: usize,
        _attempt: u32,
        book: LogBook,
        classifier: &mut Classifier,
        _ledger: &mut FaultLedger,
    ) -> Result<Delivery, LogError> {
        let bytes = book.resident_bytes();
        classifier.feed_book(&book)?;
        Ok(Delivery {
            bytes,
            dropped: false,
        })
    }
}

/// Serializes every shard to corpus text and re-parses it — the full
/// on-disk round trip production corpora arrive as. Slower than
/// [`ParsedLines`], and kept differentially tested for exactly that
/// reason.
#[derive(Debug, Clone, Copy, Default)]
pub struct TextRoundTrip;

impl Transport for TextRoundTrip {
    fn convey(
        &self,
        _shard: usize,
        _attempt: u32,
        book: LogBook,
        classifier: &mut Classifier,
        _ledger: &mut FaultLedger,
    ) -> Result<Delivery, LogError> {
        let text = book.to_text();
        drop(book);
        classifier.feed_bytes(text.as_bytes())?;
        // Restore per-shard-file EOF semantics: a truncated tail must not
        // glue onto the next shard's first line.
        classifier.flush_tail()?;
        Ok(Delivery {
            bytes: text.len(),
            dropped: false,
        })
    }
}

/// [`TextRoundTrip`] with a deterministic, seedable [`FaultInjector`]
/// corrupting each shard's bytes on the way — the chaos-engineering
/// transport every fault-injected run uses (the injector corrupts bytes,
/// so injection implies the text representation).
///
/// Faults stay keyed by `(shard, attempt)`, not by chunk, so the landed
/// ledger is invariant under chunking and the retry path re-rolls its
/// corruption.
#[derive(Debug)]
pub struct InjectedText {
    injector: FaultInjector,
}

impl InjectedText {
    /// A fault-injecting transport for `spec`, keyed off the run `seed`.
    pub fn new(spec: FaultSpec, seed: u64) -> InjectedText {
        InjectedText {
            injector: FaultInjector::new(spec, seed),
        }
    }
}

impl Transport for InjectedText {
    fn convey(
        &self,
        shard: usize,
        attempt: u32,
        book: LogBook,
        classifier: &mut Classifier,
        ledger: &mut FaultLedger,
    ) -> Result<Delivery, LogError> {
        let text = book.to_text();
        drop(book);
        match self.injector.corrupt_shard(shard, attempt, &text, ledger) {
            ShardFate::Processed(bytes) => {
                classifier.feed_bytes(&bytes)?;
                classifier.flush_tail()?;
                Ok(Delivery {
                    bytes: bytes.len(),
                    dropped: false,
                })
            }
            ShardFate::Dropped => Ok(Delivery {
                bytes: 0,
                dropped: true,
            }),
        }
    }
}
