//! Chunk-planning policy: how a [`crate::Source`]'s shards batch into the
//! work units the engine's queue hands to workers.

/// How the engine batches shards into work units.
///
/// The policy is *advice* to the [`crate::Source`], which owns the actual
/// [`ssfa_logs::ChunkPlan`] (only the source knows shard sizes); results
/// are bit-identical for every policy because per-chunk partials always
/// merge in chunk (= shard) order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ChunkPolicy {
    /// Greedy byte-budget batching targeting
    /// [`ssfa_logs::DEFAULT_CHUNK_TARGET_BYTES`] of rendered text per
    /// chunk.
    #[default]
    Auto,
    /// Exactly `n` systems per chunk (the last chunk may be smaller);
    /// `usize::MAX` degenerates to one chunk spanning the whole corpus.
    Fixed(usize),
}
